#!/usr/bin/env python
"""Quickstart: compare caching architectures on one topology.

Builds the paper's Section 4 setup on the Abilene backbone — binary
access trees of depth 5, Zipf workload with the Asia-trace exponent,
5% cache budgets, LRU everywhere — runs the five representative designs
plus the no-cache baseline, and prints the three evaluation metrics.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.analysis import format_table
from repro.core import BASELINE_ARCHITECTURES


def main() -> None:
    config = ExperimentConfig(
        topology="abilene",
        num_objects=2_000,
        num_requests=200_000,
        alpha=1.04,  # best-fit exponent of the Asia CDN trace (Table 2)
        budget_fraction=0.05,
        warmup_fraction=0.2,
        seed=42,
    )
    print(f"Simulating {config.num_requests:,} requests over "
          f"{config.num_objects:,} objects on {config.topology!r} ...")
    outcome = run_experiment(config, BASELINE_ARCHITECTURES)

    print(f"\nNo-cache baseline: mean latency "
          f"{outcome.baseline.mean_latency:.2f} hops, max origin load "
          f"{outcome.baseline.max_origin_load:,.0f} requests\n")
    rows = []
    for name, improvement in outcome.improvements.items():
        result = outcome.results[name]
        rows.append([
            name,
            improvement.latency,
            improvement.congestion,
            improvement.origin_load,
            100.0 * result.cache_hit_ratio,
        ])
    print(format_table(
        ["architecture", "latency +%", "congestion +%", "origin load +%",
         "cache hit %"],
        rows,
        title="Improvement over a network with no caching",
    ))

    gap = outcome.gap("ICN-NR", "EDGE")
    print(f"\nICN-NR over EDGE: latency {gap.latency:+.2f}%, congestion "
          f"{gap.congestion:+.2f}%, origin load {gap.origin_load:+.2f}%")
    gap = outcome.gap("ICN-NR", "EDGE-Coop")
    print(f"ICN-NR over EDGE-Coop: latency {gap.latency:+.2f}%, congestion "
          f"{gap.congestion:+.2f}%, origin load {gap.origin_load:+.2f}%")
    print("\nThe paper's takeaway: the gap between a full ICN deployment "
          "and simple edge caching is small — most of the benefit comes "
          "from having *some* cache near the edge.")


if __name__ == "__main__":
    main()
