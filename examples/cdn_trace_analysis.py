#!/usr/bin/env python
"""CDN request-log analysis (the Section 2.2 measurement study).

Generates synthetic twins of the paper's three regional CDN logs,
writes them in the four-field log format, reads them back, and runs the
Figure 1 / Table 2 analysis: rank-frequency curves, log-log linearity,
and MLE Zipf fits.

Run:  python examples/cdn_trace_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import format_table, loglog_popularity
from repro.workload import (
    REGIONS,
    fit_zipf_mle,
    fit_zipf_regression,
    object_ids_by_popularity,
    rank_frequency,
    read_trace,
    synthetic_cdn_trace,
    write_trace,
)

TRACE_SCALE = 0.02  # 2% of the paper's daily volumes keeps this quick


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="idicn-cdn-"))
    rows = []
    for region, profile in REGIONS.items():
        rng = np.random.default_rng(len(region))
        records = synthetic_cdn_trace(region, rng, scale=TRACE_SCALE)
        path = workdir / f"{region}.tsv"
        write_trace(path, records)

        # Re-read the log the way an analysis pipeline would.
        loaded = list(read_trace(path))
        objects, url_to_id, _ = object_ids_by_popularity(loaded)
        counts = rank_frequency(objects)
        mle = fit_zipf_mle(counts, num_objects=len(url_to_id))
        regression = fit_zipf_regression(counts)
        local = sum(r.served_locally for r in loaded) / len(loaded)
        rows.append([
            region, len(loaded), len(url_to_id), profile.alpha, mle,
            regression.r_squared, 100.0 * local,
        ])

        curve = loglog_popularity(counts, points=8)
        pairs = "  ".join(f"{int(r)}:{int(c)}" for r, c in curve)
        print(f"Figure 1 ({region}): rank:count at log-spaced ranks")
        print(f"  {pairs}\n")

    print(format_table(
        ["region", "requests", "objects", "paper alpha", "fitted alpha",
         "log-log R^2", "served locally %"],
        rows,
        title="Table 2: best-fit Zipf parameters per region",
    ))
    print(f"\nLogs written to {workdir}")


if __name__ == "__main__":
    main()
