#!/usr/bin/env python
"""idICN end-to-end walkthrough (Figure 11).

Builds a full idICN deployment on the simulated network — name
resolution system, DNS, a content provider behind a reverse proxy, two
client administrative domains with WPAD-configured browsers — then
narrates each step of the paper's request flow, demonstrates content
verification catching a tampering proxy, and finishes with the mobility
scenario (dynamic DNS + byte-range resumption).

Run:  python examples/idicn_demo.py
"""

from repro.idicn import (
    Browser,
    DnsClient,
    MobileServer,
    ResumingDownloader,
    VerificationError,
    build_deployment,
)


def step(n, text):
    print(f"  [{n}] {text}")


def main() -> None:
    print("== Building the deployment (Figure 11) ==")
    deployment = build_deployment(num_domains=2, browsers_per_domain=1,
                                  verify_at_client=False)
    provider = deployment.providers[0]

    print("\n== Publishing (steps P1, P2) ==")
    domain = provider.publish("headlines", b"<html>today's news</html>")
    step("P1", f"origin published label 'headlines' via the reverse proxy")
    step("P2", f"registered self-certifying name: {domain}")

    print("\n== Cold-path request (steps 1-7) ==")
    ad0 = deployment.domains[0]
    browser = ad0.browsers[0]
    step(1, f"WPAD auto-config found proxy "
            f"{browser.proxy_for(f'http://{domain}/')} via the PAC file")
    response = browser.get(f"http://{domain}/")
    step(2, "browser sent the request by name to the edge proxy")
    step(3, "proxy resolved the name via the resolution system "
            f"({deployment.resolver.resolutions} resolutions so far)")
    step("4-6", "proxy fetched from the reverse proxy, which attached "
                "signed Metalink metadata")
    step(7, f"proxy verified the signature and served {response.body!r}")

    print("\n== Warm-path request ==")
    hits_before = ad0.proxy.hits
    browser.get(f"http://{domain}/")
    print(f"  proxy cache hit (hits: {hits_before} -> {ad0.proxy.hits}); "
          "only steps 1, 2, 7 were needed")

    print("\n== Cross-domain fetch ==")
    other = deployment.domains[1].browsers[0]
    response = other.get(f"http://{domain}/")
    print(f"  AD1's browser got {response.body!r} through its own proxy")

    print("\n== Tampering is detected end-to-end ==")
    import dataclasses

    key = next(iter(ad0.proxy._store))
    entry = ad0.proxy._store[key]
    ad0.proxy._store[key] = dataclasses.replace(
        entry, body=entry.body.replace(b"news", b"ads!")
    )
    paranoid_host = deployment.net.create_host("paranoid", "ad0")
    paranoid = Browser(paranoid_host, "ad0", verify_content=True)
    paranoid.configure()
    try:
        paranoid.get(f"http://{domain}/")
        print("  !! verification should have failed")
    except VerificationError as exc:
        print(f"  verifying client rejected tampered content: {exc}")

    print("\n== Freshness and revalidation ==")
    provider.reverse_proxy.max_age = 60.0
    provider.origin.store("weather", b"<html>sunny</html>")
    weather = provider.reverse_proxy.publish("weather").domain
    browser.get(f"http://{weather}/")
    deployment.net.advance(30.0)
    browser.get(f"http://{weather}/")
    print(f"  within max-age: served from cache "
          f"(revalidations: {ad0.proxy.revalidations})")
    provider.origin.store("weather", b"<html>rainy</html>")
    provider.reverse_proxy.invalidate("weather")
    provider.reverse_proxy.publish("weather")
    deployment.net.advance(120.0)
    response = browser.get(f"http://{weather}/")
    print(f"  after expiry: revalidated and got {response.body!r} "
          f"(revalidations: {ad0.proxy.revalidations})")

    print("\n== Mobility (Section 6.3) ==")
    net = deployment.net
    net.create_subnet("cafe", "10.200.0")
    server_host = net.create_host("laptop-server", "backbone")
    dns_addr = deployment.dns_server.host.address_on("backbone")
    server = MobileServer(
        net, server_host, "laptop.example",
        DnsClient(server_host, server_address=dns_addr),
        token="tok", subnet="backbone",
    )
    server.store("video", bytes(1000) * 64)
    client_host = net.create_host("viewer", "backbone")
    downloader = ResumingDownloader(
        client_host, DnsClient(client_host, server_address=dns_addr),
        chunk_size=16_384,
    )
    partial = downloader.download("laptop.example", "/video")
    new_address = server.move("cafe")
    print(f"  server moved to {new_address}; dynamic DNS updated")
    result = downloader.download("laptop.example", "/video")
    print(f"  client re-resolved and fetched {len(result.body):,} bytes "
          f"in {result.attempts} attempt(s); session cookie "
          f"{downloader.session_cookie!r} survived the move")


if __name__ == "__main__":
    main()
