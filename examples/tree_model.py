#!/usr/bin/env python
"""The Section 2.2 back-of-the-envelope tree analysis, interactive.

Why does the paper doubt pervasive caching before running a single
simulation?  Because on a distribution tree under a Zipf workload, the
*optimal static placement* already serves most cacheable requests at
the edge.  This example reproduces Figure 2, the expected-hops
walkthrough, and the budget-allocation extension.

Run:  python examples/tree_model.py [alpha ...]
"""

import sys

from repro.analysis import format_series, format_table
from repro.treeopt import (
    TreeModel,
    budget_share_per_level,
    expected_hops,
    expected_hops_edge_only,
    fraction_served_per_level,
    optimize_level_allocation,
    universal_caching_latency_gain,
)


def main() -> None:
    alphas = [float(a) for a in sys.argv[1:]] or [0.7, 1.1, 1.5]
    series = {}
    walkthrough = []
    for alpha in alphas:
        model = TreeModel(levels=6, cache_size=60, num_objects=1000,
                          alpha=alpha)
        series[f"alpha={alpha}"] = list(fraction_served_per_level(model))
        walkthrough.append([
            alpha,
            expected_hops(model),
            expected_hops_edge_only(model),
            universal_caching_latency_gain(model),
        ])

    print(format_series(
        "level (6=origin)", [1, 2, 3, 4, 5, 6], series,
        title="Figure 2: fraction of requests served per level "
              "(optimal placement, binary tree)",
    ))
    print()
    print(format_table(
        ["alpha", "E[hops], all caches", "E[hops], edge only",
         "universal caching gain %"],
        walkthrough,
        title="Section 2.2 walkthrough: what do the interior caches buy?",
    ))

    model = TreeModel(levels=6, cache_size=0, num_objects=1000, alpha=1.1)
    allocation = optimize_level_allocation(model, total_budget=16_000)
    shares = budget_share_per_level(model, allocation)
    print()
    print(format_table(
        ["level (1=leaves)", "per-node slots", "budget share %"],
        [
            [level, allocation.sizes[level - 1], shares[level - 1] * 100]
            for level in range(1, 6)
        ],
        title="Free the budget split, and the optimizer pushes it to "
              "the leaves:",
    ))


if __name__ == "__main__":
    main()
