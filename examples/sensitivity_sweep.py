#!/usr/bin/env python
"""Sensitivity sweep: when does full ICN beat edge caching, and by how
much? (the Section 5 analysis, scaled for a quick interactive run)

Sweeps the two parameters the paper identifies as mattering most — the
Zipf exponent and the spatial popularity skew — and prints the
ICN-NR-over-EDGE gap per metric.

Run:  python examples/sensitivity_sweep.py [topology]
"""

import sys

from repro.analysis import format_series, sweep_gap
from repro.core import EDGE, ICN_NR, ExperimentConfig


def main() -> None:
    topology = sys.argv[1] if len(sys.argv) > 1 else "geant"

    def make_config(**overrides):
        params = dict(
            topology=topology,
            num_objects=1_000,
            num_requests=120_000,
            warmup_fraction=0.2,
            seed=7,
        )
        params.update(overrides)
        return ExperimentConfig(**params)

    print(f"Sweeping Zipf alpha on {topology!r} (Figure 8a) ...")
    alpha_sweep = sweep_gap(
        "alpha", (0.4, 0.8, 1.2, 1.6),
        lambda a: make_config(alpha=a), ICN_NR, EDGE,
    )
    print(format_series(
        "alpha", alpha_sweep.values, alpha_sweep.gaps,
        title="ICN-NR gain over EDGE (%) vs Zipf alpha",
    ))

    print(f"\nSweeping spatial skew on {topology!r} (Figure 8c) ...")
    skew_sweep = sweep_gap(
        "skew", (0.0, 0.5, 1.0),
        lambda s: make_config(spatial_skew=s), ICN_NR, EDGE,
    )
    print(format_series(
        "spatial skew", skew_sweep.values, skew_sweep.gaps,
        title="ICN-NR gain over EDGE (%) vs spatial skew",
    ))

    print(
        "\nReading the shape: higher alpha concentrates requests on a "
        "small head that edge caches already capture (gap shrinks); "
        "spatial skew moves popular objects around the network, which "
        "only nearest-replica routing can chase (gap grows)."
    )


if __name__ == "__main__":
    main()
