#!/usr/bin/env python
"""Ad hoc content sharing: the Alice-and-Bob airplane scenario
(Section 6.2).

No DHCP, no DNS, no infrastructure: Alice and Bob's machines self-assign
link-local addresses (with ARP-style conflict probing), Alice's ad hoc
proxy publishes the domains in her browser cache over mDNS, and Bob's
browser falls back to mDNS resolution to fetch the CNN headlines out of
Alice's cache.

Run:  python examples/adhoc_sharing.py
"""

import numpy as np

from repro.idicn import (
    AdHocCacheProxy,
    Browser,
    DnsClient,
    SimNet,
    join_adhoc_network,
)


def main() -> None:
    rng = np.random.default_rng(2013)
    net = SimNet()
    net.create_subnet("cabin", "link-local", routed=False)

    print("== Boarding: link-local auto-configuration ==")
    alice_host = join_adhoc_network(net, "alice", "cabin", rng)
    bob_host = join_adhoc_network(net, "bob", "cabin", rng)
    print(f"  alice claimed {alice_host.address_on('cabin')}")
    print(f"  bob   claimed {bob_host.address_on('cabin')}")

    print("\n== Alice's browser cache (filled before boarding) ==")
    alice = Browser(alice_host, "cabin")
    pages = {
        "http://cnn.example/headlines": b"<html>CNN headlines</html>",
        "http://cnn.example/world": b"<html>CNN world</html>",
        "http://weather.example/today": b"<html>sunny</html>",
    }
    for url, body in pages.items():
        alice._cache.insert(url)
        domain = url.split("//")[1].split("/")[0]
        alice._store[url] = (domain, body, None)
    proxy = AdHocCacheProxy(alice, "cabin")
    print(f"  published over mDNS: {', '.join(proxy.refresh())}")

    print("\n== Bob fetches with mDNS fallback resolution ==")
    bob = Browser(bob_host, "cabin",
                  dns=DnsClient(bob_host, mdns_subnet="cabin"))
    for url in ("http://cnn.example/headlines",
                "http://weather.example/today",
                "http://cnn.example/sports",
                "http://bbc.example/news"):
        response = bob.get(url)
        outcome = (
            response.body.decode() if response.ok
            else f"unavailable (status {response.status})"
        )
        print(f"  GET {url:38s} -> {outcome}")

    print(f"\nAlice's ad hoc proxy served {proxy.requests_served} requests "
          "without any network infrastructure.")


if __name__ == "__main__":
    main()
