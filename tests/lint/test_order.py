"""O4xx order-stability rules over the engine/fastpath hot modules."""

from __future__ import annotations

from .conftest import rule_ids


class TestSetIteration:
    def test_set_literal_iteration_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def drain():
                    total = 0
                    for item in {1, 2, 3}:
                        total += item
                    return total
                """
            }
        )
        assert rule_ids(report) == ["O401"]

    def test_cross_module_set_attribute_flagged(self, lint_tree):
        # engine.py assigns a frozenset into `self._failed`; the fast
        # engine iterating `sim._failed` is flagged even though the
        # set-typed assignment lives in the other module.
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                class Simulator:
                    def __init__(self, down):
                        self._failed = frozenset(down)
                """,
                "src/repro/core/fastpath.py": """\
                def replay(sim):
                    out = []
                    for node in sim._failed:
                        out.append(node)
                    return out
                """,
            }
        )
        assert rule_ids(report) == ["O401"]
        (diag,) = report.diagnostics
        assert "fastpath" in diag.path

    def test_local_alias_of_set_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def union(a, b):
                    merged = set(a) | set(b)
                    return [x for x in merged]
                """
            }
        )
        assert rule_ids(report) == ["O401"]

    def test_sorted_iteration_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def drain(items):
                    pool = set(items)
                    total = 0
                    for item in sorted(pool):
                        total += item
                    return total
                """
            }
        )
        assert rule_ids(report) == []

    def test_set_iteration_outside_hot_modules_allowed(self, lint_tree):
        # Order stability is an engine-hot-path contract; a workload
        # helper may walk a set (as long as results don't depend on it).
        report = lint_tree(
            {
                "src/repro/workload/helper.py": """\
                def count(items):
                    return sum(1 for _ in set(items))
                """
            }
        )
        assert rule_ids(report) == []


class TestPopitem:
    def test_popitem_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def evict(table):
                    return table.popitem()
                """
            }
        )
        assert rule_ids(report) == ["O402"]

    def test_pop_with_explicit_key_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def evict(table, key):
                    return table.pop(key)
                """
            }
        )
        assert rule_ids(report) == []
