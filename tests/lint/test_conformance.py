"""C3xx cache-conformance rules against a synthetic cache package."""

from __future__ import annotations

from .conftest import CACHE_PACKAGE, rule_ids


def _package(**overrides: str) -> dict[str, str]:
    files = dict(CACHE_PACKAGE)
    files.update(overrides)
    return files


class TestCacheInterface:
    def test_clean_package_passes(self, lint_tree):
        report = lint_tree(_package())
        assert rule_ids(report) == []
        assert report.exit_code() == 0

    def test_missing_abstract_method_flagged(self, lint_tree):
        report = lint_tree(
            _package(
                **{
                    "src/repro/cache/lru.py": """\
                    from .base import Cache


                    class LRUCache(Cache):
                        def lookup(self, key):
                            return False
                    """
                }
            )
        )
        assert rule_ids(report) == ["C301"]
        (diag,) = report.diagnostics
        assert "LRUCache" in diag.message
        assert "insert" in diag.message

    def test_inheritance_through_intermediate_subclass(self, lint_tree):
        # `TinyLFU(BudgetCache)` implements nothing itself but inherits
        # the full interface from an intermediate Cache subclass; the
        # linter must credit inherited methods, not demand re-definition.
        report = lint_tree(
            _package(
                **{
                    "src/repro/cache/budget.py": """\
                    from .base import Cache


                    class BudgetCache(Cache):
                        def lookup(self, key):
                            return False

                        def insert(self, key, size):
                            return None
                    """,
                    "src/repro/cache/lfu.py": """\
                    from .budget import BudgetCache


                    class TinyLFU(BudgetCache):
                        pass
                    """,
                }
            )
        )
        assert rule_ids(report) == []

    def test_unrelated_class_ignored(self, lint_tree):
        report = lint_tree(
            _package(
                **{
                    "src/repro/cache/stats.py": """\
                    class HitCounter:
                        def bump(self):
                            return None
                    """
                }
            )
        )
        assert rule_ids(report) == []


class TestRegistryDrift:
    def test_reference_policy_without_fast_twin(self, lint_tree):
        report = lint_tree(
            _package(
                **{
                    "src/repro/cache/__init__.py": """\
                    from .lru import LRUCache

                    POLICIES = {"lru": LRUCache, "arc": LRUCache}
                    """
                }
            )
        )
        assert rule_ids(report) == ["C302"]
        (diag,) = report.diagnostics
        assert "arc" in diag.message
        assert "no fast struct" in diag.message

    def test_fast_policy_without_reference_twin(self, lint_tree):
        report = lint_tree(
            _package(
                **{
                    "src/repro/cache/fast.py": CACHE_PACKAGE[
                        "src/repro/cache/fast.py"
                    ].replace(
                        '_FAST_POLICIES = {"lru": FastLRU}',
                        '_FAST_POLICIES = {"lru": FastLRU, "mru": FastLRU}',
                    )
                }
            )
        )
        assert rule_ids(report) == ["C302"]
        (diag,) = report.diagnostics
        assert "mru" in diag.message
        assert "no reference twin" in diag.message


class TestFastStructInterface:
    def test_incomplete_struct_flagged(self, lint_tree):
        report = lint_tree(
            _package(
                **{
                    "src/repro/cache/fast.py": """\
                    class FastLRU:
                        def lookup(self, key):
                            return False

                        def insert(self, key, size):
                            return None


                    class FastInfinite:
                        def lookup(self, key):
                            return True

                        def insert(self, key, size):
                            return None

                        def __contains__(self, key):
                            return True

                        def __len__(self):
                            return 0


                    _FAST_POLICIES = {"lru": FastLRU}
                    """
                }
            )
        )
        assert rule_ids(report) == ["C303"]
        (diag,) = report.diagnostics
        assert "FastLRU" in diag.message
        assert "__contains__" in diag.message and "__len__" in diag.message

    def test_registered_but_undefined_struct_flagged(self, lint_tree):
        report = lint_tree(
            _package(
                **{
                    "src/repro/cache/fast.py": """\
                    class FastLRU:
                        def lookup(self, key):
                            return False

                        def insert(self, key, size):
                            return None

                        def __contains__(self, key):
                            return False

                        def __len__(self):
                            return 0


                    class FastInfinite(FastLRU):
                        def lookup(self, key):
                            return True

                        def insert(self, key, size):
                            return None

                        def __contains__(self, key):
                            return True

                        def __len__(self):
                            return 0


                    _FAST_POLICIES = {"lru": FastLRU, "ghost": FastGhost}
                    """
                }
            )
        )
        assert "C303" in rule_ids(report)
        messages = " ".join(d.message for d in report.diagnostics)
        assert "FastGhost" in messages and "not defined" in messages
