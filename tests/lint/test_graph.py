"""Whole-program model: module graph, symbol resolution, call graph."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.graph import CallGraph, ModuleGraph


def build_graph(modules: dict[str, str]) -> ModuleGraph:
    """ModuleGraph from ``{dotted_name: source}`` (dedented)."""
    parsed = {
        name: (f"{name.replace('.', '/')}.py", ast.parse(textwrap.dedent(src)))
        for name, src in modules.items()
    }
    return ModuleGraph(parsed)


def edges(callgraph: CallGraph) -> set[tuple[str, str]]:
    """Every resolved (caller key, callee key) pair."""
    return {
        (site.caller.key, site.callee.key)
        for sites in callgraph.callees.values()
        for site in sites
    }


class TestSymbolResolution:
    def test_aliased_import_resolves_to_target(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                from repro.core.b import helper as h

                def go():
                    return h()
                """,
                "repro.core.b": """\
                def helper():
                    return 1
                """,
            }
        )
        assert (
            graph.resolve_name("repro.core.a", "h") == "repro.core.b.helper"
        )
        callgraph = CallGraph(graph)
        assert ("repro.core.a:go", "repro.core.b:helper") in edges(callgraph)

    def test_relative_import_resolves_against_package(self):
        graph = build_graph(
            {
                "repro.idicn.faults": "from .simnet import SimNet\n",
                "repro.idicn.simnet": "class SimNet:\n    pass\n",
            }
        )
        assert (
            graph.resolve_name("repro.idicn.faults", "SimNet")
            == "repro.idicn.simnet.SimNet"
        )
        found = graph.class_at("repro.idicn.simnet.SimNet")
        assert found is not None and found[0] == "repro.idicn.simnet"

    def test_reexport_chases_package_init(self):
        graph = build_graph(
            {
                "repro.cache": "from .lru import LRUCache\n",
                "repro.cache.lru": """\
                class LRUCache:
                    def __init__(self, budget):
                        self.budget = budget
                """,
                "repro.core.user": """\
                from repro.cache import LRUCache

                def build():
                    return LRUCache(4)
                """,
            }
        )
        init = graph.function_at("repro.cache.LRUCache.__init__")
        assert init is not None
        assert init.module == "repro.cache.lru"
        callgraph = CallGraph(graph)
        assert (
            "repro.core.user:build",
            "repro.cache.lru:LRUCache.__init__",
        ) in edges(callgraph)

    def test_constant_value_through_imports(self):
        graph = build_graph(
            {
                "repro.core.a": 'SEED = 7\nNAMES = frozenset({"x", "y"})\n',
                "repro.core.b": "from repro.core.a import SEED, NAMES\n",
            }
        )
        assert graph.constant_value("repro.core.b", "SEED") == 7
        assert graph.constant_value("repro.core.b", "NAMES") == frozenset(
            {"x", "y"}
        )


class TestCallGraph:
    def test_cycle_resolves_and_closure_terminates(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                from repro.core.b import pong

                def ping(n):
                    return pong(n - 1)
                """,
                "repro.core.b": """\
                from repro.core.a import ping

                def pong(n):
                    if n > 0:
                        return ping(n)
                    return 0
                """,
            }
        )
        callgraph = CallGraph(graph)
        found = edges(callgraph)
        assert ("repro.core.a:ping", "repro.core.b:pong") in found
        assert ("repro.core.b:pong", "repro.core.a:ping") in found
        ping = graph.functions["repro.core.a:ping"]
        closure = {f.key for f in callgraph.reachable_from([ping])}
        assert closure == {"repro.core.a:ping", "repro.core.b:pong"}

    def test_self_method_and_inferred_local_type(self):
        graph = build_graph(
            {
                "repro.core.engine": """\
                class Simulator:
                    def __init__(self, seed):
                        self.seed = seed

                    def run(self):
                        return self._step()

                    def _step(self):
                        return self.seed
                """,
                "repro.core.driver": """\
                from repro.core.engine import Simulator

                def drive(seed):
                    sim = Simulator(seed)
                    return sim.run()
                """,
            }
        )
        found = edges(CallGraph(graph))
        assert (
            "repro.core.engine:Simulator.run",
            "repro.core.engine:Simulator._step",
        ) in found
        assert (
            "repro.core.driver:drive",
            "repro.core.engine:Simulator.run",
        ) in found
        assert (
            "repro.core.driver:drive",
            "repro.core.engine:Simulator.__init__",
        ) in found

    def test_partial_binding_preserves_bound_args(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                import functools

                def work(seed, scale):
                    return seed * scale

                def launch():
                    bound = functools.partial(work, 9)
                    return bound(2)
                """,
            }
        )
        callgraph = CallGraph(graph)
        sites = callgraph.callers.get("repro.core.a:work", [])
        assert len(sites) == 1
        (site,) = sites
        assert site.caller.key == "repro.core.a:launch"
        assert len(site.bound_args) == 1
        assert isinstance(site.bound_args[0], ast.Constant)
        assert site.bound_args[0].value == 9

    def test_unresolved_call_recorded_as_external(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                import os

                def here():
                    return os.getpid()
                """,
            }
        )
        callgraph = CallGraph(graph)
        externals = callgraph.external_calls.get("repro.core.a:here", [])
        assert [name for name, _ in externals] == ["os.getpid"]
