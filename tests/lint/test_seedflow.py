"""Seed-flow rules S701-S703: generator seeds must keep their lineage."""

from __future__ import annotations

from .conftest import rule_ids


class TestAmbientSeed:
    def test_wall_clock_seed_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/workload/gen.py": """\
                import time

                import numpy as np


                def make():
                    seed = int(time.time())
                    return np.random.default_rng(seed)
                """
            }
        )
        ids = rule_ids(report)
        assert "S701" in ids
        assert report.exit_code() == 1
        (diag,) = [d for d in report.diagnostics if d.rule.id == "S701"]
        assert "time.time" in diag.message

    def test_os_entropy_through_helper_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/workload/gen.py": """\
                import os

                import numpy as np


                def entropy():
                    return int.from_bytes(os.urandom(8), "little")


                def make():
                    return np.random.default_rng(entropy())
                """
            }
        )
        assert "S701" in rule_ids(report)

    def test_seed_sequence_lineage_is_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/workload/gen.py": """\
                import numpy as np


                def make(seed_sequence):
                    child = seed_sequence.spawn(1)[0]
                    return np.random.default_rng(child)
                """
            }
        )
        assert "S701" not in rule_ids(report)
        assert "S702" not in rule_ids(report)


class TestLiteralReseed:
    def test_literal_deep_in_seeded_chain_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/run.py": """\
                import numpy as np


                def run_experiment(data, rng):
                    return _inner(data)


                def _inner(data):
                    gen = np.random.default_rng(42)
                    return gen.random()
                """
            }
        )
        ids = rule_ids(report)
        assert "S702" in ids
        assert report.exit_code() == 1
        (diag,) = [d for d in report.diagnostics if d.rule.id == "S702"]
        assert "run_experiment" in diag.message

    def test_named_module_constant_is_exempt(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/run.py": """\
                import numpy as np

                _PINNED_SEED = 0xC0FFEE


                def run_experiment(data, rng):
                    return _inner(data)


                def _inner(data):
                    gen = np.random.default_rng(_PINNED_SEED)
                    return gen.random()
                """
            }
        )
        assert "S702" not in rule_ids(report)

    def test_no_seeded_caller_means_no_finding(self, lint_tree):
        # An isolated literal seed with no rng-carrying caller anywhere
        # is a pinned entry point, not a chain-splitting re-seed.
        report = lint_tree(
            {
                "src/repro/core/run.py": """\
                import numpy as np


                def demo(data):
                    gen = np.random.default_rng(42)
                    return gen.random()
                """
            }
        )
        assert "S702" not in rule_ids(report)

    def test_threaded_seed_param_stays_d104_territory(self, lint_tree):
        # The enclosing function accepts a seed itself: the intra-function
        # family (D104) owns that case, S702 must not double-report.
        report = lint_tree(
            {
                "src/repro/core/run.py": """\
                import numpy as np


                def run_experiment(data, rng):
                    return _inner(data, 3)


                def _inner(data, seed):
                    gen = np.random.default_rng(seed)
                    return gen.random()
                """
            }
        )
        assert "S702" not in rule_ids(report)


class TestModuleScopeGenerator:
    def test_module_scope_generator_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/cache/policy.py": """\
                import numpy as np

                _RNG = np.random.default_rng(0)
                """
            }
        )
        ids = rule_ids(report)
        assert "S703" in ids
        assert report.exit_code() == 1

    def test_class_attribute_generator_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/node.py": """\
                import numpy as np


                class Node:
                    rng = np.random.default_rng(7)
                """
            }
        )
        assert "S703" in rule_ids(report)

    def test_function_scope_construction_is_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/cache/policy.py": """\
                import numpy as np


                def build(seed):
                    return np.random.default_rng(seed)
                """
            }
        )
        assert "S703" not in rule_ids(report)

    def test_out_of_scope_package_is_ignored(self, lint_tree):
        # The family is scoped to core/cache/workload/idicn; obs helpers
        # may build generators at module scope without S703.
        report = lint_tree(
            {
                "src/repro/obs/demo.py": """\
                import numpy as np

                _RNG = np.random.default_rng(0)
                """
            }
        )
        assert "S703" not in rule_ids(report)
