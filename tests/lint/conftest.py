"""Shared fixtures for the repro.lint test suite.

Lint rules are package-scoped (determinism runs only inside
``repro.core``/``repro.cache``/... and parity/order anchor on specific
modules), so fixtures are written as miniature source trees under
``tmp_path/src/repro/...`` — the runner maps them to the same dotted
module names as the real package.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import Report, lint_paths


def write_tree(root: Path, files: dict[str, str]) -> Path:
    """Write ``{relative_path: source}`` under ``root`` (dedented)."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def rule_ids(report: Report) -> list[str]:
    """The rule ids of the surviving findings, in report order."""
    return [d.rule.id for d in report.diagnostics]


@pytest.fixture
def lint_tree(tmp_path):
    """Write a fixture tree and lint its ``src/`` directory."""

    def run(files: dict[str, str], **kwargs) -> Report:
        write_tree(tmp_path, files)
        return lint_paths([tmp_path / "src"], **kwargs)

    return run


#: A minimal engine/fastpath/metrics trio that is parity-clean: every
#: Simulator knob taints a stored attribute the fast engine reads, and
#: every SimulationResult field is produced by from_counters.
PARITY_TRIO: dict[str, str] = {
    "src/repro/core/engine.py": """\
        class Simulator:
            def __init__(self, topology, budgets, policy="lru",
                         engine="reference"):
                self.topology = topology
                self.budgets = dict(budgets)
                self.policy = policy
                caches = {}
                for node in topology:
                    caches[node] = (policy, self.budgets[node])
                self.caches = caches
        """,
    "src/repro/core/fastpath.py": """\
        class FastEngine:
            def __init__(self, sim):
                self._sim = sim
                self._order = list(sim.topology)
                self._caches = dict(sim.caches)
                self._policy = sim.policy

            def run(self):
                return self._sim.budgets
        """,
    "src/repro/core/metrics.py": """\
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class SimulationResult:
            requests: int
            hits: int
            hit_rate: float

            @classmethod
            def from_counters(cls, requests, hits):
                return cls(
                    requests=requests,
                    hits=hits,
                    hit_rate=hits / max(requests, 1),
                )
        """,
}


#: A minimal, conformance-clean cache package: one policy registered in
#: both POLICIES and _FAST_POLICIES, full interfaces on each side.
CACHE_PACKAGE: dict[str, str] = {
    "src/repro/cache/base.py": """\
        import abc


        class Cache(abc.ABC):
            @abc.abstractmethod
            def lookup(self, key):
                ...

            @abc.abstractmethod
            def insert(self, key, size):
                ...
        """,
    "src/repro/cache/lru.py": """\
        from .base import Cache


        class LRUCache(Cache):
            def lookup(self, key):
                return False

            def insert(self, key, size):
                return None
        """,
    "src/repro/cache/fast.py": """\
        class FastLRU:
            def lookup(self, key):
                return False

            def insert(self, key, size):
                return None

            def __contains__(self, key):
                return False

            def __len__(self):
                return 0


        class FastInfinite:
            def lookup(self, key):
                return True

            def insert(self, key, size):
                return None

            def __contains__(self, key):
                return True

            def __len__(self):
                return 0


        _FAST_POLICIES = {"lru": FastLRU}
        """,
    "src/repro/cache/__init__.py": """\
        from .lru import LRUCache

        POLICIES = {"lru": LRUCache}
        """,
}
