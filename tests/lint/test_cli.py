"""CLI surface: output formats, rule selection, and exit codes."""

from __future__ import annotations

import json

from repro.lint import ALL_RULES, RULES_BY_ID, main

from .conftest import write_tree


def _write_d101(tmp_path):
    return write_tree(
        tmp_path, {"src/repro/core/mod.py": "import random\n"}
    )


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        _write_d101(tmp_path)
        code = main([str(tmp_path / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == 1
        assert set(payload) == {"version", "summary", "diagnostics"}
        assert payload["summary"] == {
            "files": 1,
            "errors": 1,
            "warnings": 0,
            "suppressed": 0,
        }
        (diag,) = payload["diagnostics"]
        assert set(diag) == {
            "rule", "name", "severity", "path", "line", "col", "message",
        }
        assert diag["rule"] == "D101"
        assert diag["name"] == "stdlib-random-import"
        assert diag["severity"] == "error"
        assert diag["line"] == 1
        assert diag["path"].endswith("mod.py")

    def test_clean_run_has_empty_diagnostics(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/ok.py": "X = 1\n"})
        code = main([str(tmp_path / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["diagnostics"] == []
        assert payload["summary"]["files"] == 1


class TestTextOutput:
    def test_row_format_and_summary_line(self, tmp_path, capsys):
        _write_d101(tmp_path)
        code = main([str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert code == 1
        row, summary = out.strip().splitlines()
        assert ":1:0: D101 [error]" in row
        assert summary == "1 file(s) checked: 1 error(s), 0 warning(s), 0 suppressed"


class TestRuleSelection:
    def test_select_limits_to_listed_rules(self, tmp_path, capsys):
        _write_d101(tmp_path)
        assert main([str(tmp_path / "src"), "--select", "O401"]) == 0
        assert main([str(tmp_path / "src"), "--select", "D101"]) == 1

    def test_ignore_removes_rules(self, tmp_path, capsys):
        _write_d101(tmp_path)
        assert main([str(tmp_path / "src"), "--ignore", "D101"]) == 0

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        _write_d101(tmp_path)
        assert main([str(tmp_path / "src"), "--select", "D999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_select_is_case_insensitive(self, tmp_path, capsys):
        _write_d101(tmp_path)
        assert main([str(tmp_path / "src"), "--select", "d101"]) == 1


class TestStrictMode:
    def test_warnings_fail_only_under_strict(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "src/repro/core/mod.py": (
                    "import time\n\n\ndef wait():\n    time.sleep(1)\n"
                )
            },
        )
        assert main([str(tmp_path / "src")]) == 0
        assert main([str(tmp_path / "src"), "--strict"]) == 1


class TestGithubOutput:
    def test_error_annotation_shape(self, tmp_path, capsys):
        _write_d101(tmp_path)
        code = main([str(tmp_path / "src"), "--format", "github"])
        out = capsys.readouterr().out
        assert code == 1
        annotation, summary = out.strip().splitlines()
        assert annotation.startswith("::error file=")
        assert "line=1" in annotation
        assert "col=1" in annotation  # annotation columns are 1-based
        assert "title=D101" in annotation
        _, properties, message = annotation.split("::")
        assert properties.startswith("error ")
        assert message  # the finding text rides after the second `::`
        assert summary.endswith("1 error(s), 0 warning(s), 0 suppressed")

    def test_warning_level_and_message_escaping(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "src/repro/core/mod.py": (
                    "import time\n\n\ndef wait():\n    time.sleep(1)\n"
                )
            },
        )
        main([str(tmp_path / "src"), "--format", "github"])
        out = capsys.readouterr().out
        assert "::warning file=" in out
        assert "%0A" not in out.splitlines()[0].split("::")[0]

    def test_clean_run_emits_summary_only(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/ok.py": "X = 1\n"})
        code = main([str(tmp_path / "src"), "--format", "github"])
        out = capsys.readouterr().out.strip()
        assert code == 0
        assert "::" not in out


class TestUnparseableFiles:
    def test_null_byte_file_is_structured_error_not_crash(
        self, tmp_path, capsys
    ):
        target = tmp_path / "src" / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_bytes(b"x = 1\x00\n")
        code = main([str(tmp_path / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        (diag,) = payload["diagnostics"]
        assert diag["rule"] == "E999"
        # Null bytes raise SyntaxError on 3.11+, ValueError before; the
        # runner turns both into one structured E999 row.
        assert "null bytes" in diag["message"]
        assert diag["path"].endswith("bad.py")

    def test_syntax_error_is_reported_with_line(self, tmp_path, capsys):
        write_tree(
            tmp_path, {"src/repro/core/bad.py": "def broken(:\n    pass\n"}
        )
        code = main([str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert code == 1
        assert "E999" in out
        assert "syntax error" in out


class TestListRules:
    def test_catalogue_is_complete(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out
            assert rule.name in out

    def test_catalogue_ids_are_unique_and_indexed(self):
        assert len(RULES_BY_ID) == len(ALL_RULES)
        assert all(RULES_BY_ID[r.id] is r for r in ALL_RULES)
