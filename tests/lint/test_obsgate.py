"""O501 observability-gating rule over the engine hot modules."""

from __future__ import annotations

from .conftest import rule_ids


class TestUngatedFlagged:
    def test_ungated_counter_update_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def run(requests, rec_serves):
                    for i in requests:
                        rec_serves[i] += 1
                """
            }
        )
        assert rule_ids(report) == ["O501"]

    def test_ungated_trace_call_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def run(requests, trace_emit):
                    for i in requests:
                        trace_emit(i)
                """
            }
        )
        assert rule_ids(report) == ["O501"]

    def test_ungated_observer_method_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def run(requests, observer):
                    for i in requests:
                        observer.on_request(i)
                """
            }
        )
        assert rule_ids(report) == ["O501"]

    def test_unrelated_guard_does_not_gate(self, lint_tree):
        # An `if` must test a *sink* name to count as the gate.
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def run(requests, rec_serves, measured):
                    for i in requests:
                        if measured:
                            rec_serves[i] += 1
                """
            }
        )
        assert rule_ids(report) == ["O501"]

    def test_while_loop_also_covered(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def drain(queue, rec_evicts):
                    while queue:
                        queue.pop()
                        rec_evicts[0] += 1
                """
            }
        )
        assert rule_ids(report) == ["O501"]


class TestGatedAllowed:
    def test_bool_gate_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def run(requests, rec_serves, observing):
                    for i in requests:
                        if observing:
                            rec_serves[i] += 1
                """
            }
        )
        assert rule_ids(report) == []

    def test_is_not_none_gate_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def run(requests, rec):
                    for i in requests:
                        if rec is not None:
                            rec.serves[i] += 1
                """
            }
        )
        assert rule_ids(report) == []

    def test_sampler_call_in_gate_test_allowed(self, lint_tree):
        # The gate's own test may read the sink (`trace_wants(i)`): that
        # is the one permitted per-iteration cost.
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def run(requests, trace_wants, trace_emit):
                    for i in requests:
                        if trace_wants is not None and trace_wants(i):
                            trace_emit(i)
                """
            }
        )
        assert rule_ids(report) == []

    def test_outer_gate_covers_inner_loop(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def run(requests, rec_evicts, observing):
                    for i in requests:
                        if observing:
                            while rec_evicts[i] > 0:
                                rec_evicts[i] -= 1
                """
            }
        )
        assert rule_ids(report) == []

    def test_outside_loop_allowed(self, lint_tree):
        # Straight-line setup/teardown costs one branch per run, not
        # one per request; only loop bodies are in scope.
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def run(requests, observer):
                    rec = observer.start_run()
                    total = 0
                    for i in requests:
                        total += i
                    observer.finish_run(rec, total)
                    return total
                """
            }
        )
        assert rule_ids(report) == []

    def test_non_sink_names_ignored(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def run(requests, record_table):
                    for i in requests:
                        record_table[i] += 1
                """
            }
        )
        assert rule_ids(report) == []

    def test_other_modules_out_of_scope(self, lint_tree):
        # O501 is an engine hot-loop contract; repro.obs itself (and
        # everything else) may call its own sinks freely.
        report = lint_tree(
            {
                "src/repro/obs/sink.py": """\
                def flush(rec_serves, items):
                    for i in items:
                        rec_serves[i] += 1
                """
            }
        )
        assert rule_ids(report) == []

    def test_inline_suppression_honored(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/engine.py": """\
                def run(requests, trace_emit):
                    for i in requests:
                        trace_emit(i)  # lint: disable=O501 -- traced build
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 1
