"""Data-flow primitives: forward taint and backward origin resolution."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.dataflow import OriginResolver, constructor_taint
from repro.lint.graph import CallGraph, ModuleGraph

from .test_graph import build_graph


def resolver_for(graph: ModuleGraph) -> OriginResolver:
    return OriginResolver(graph, CallGraph(graph))


def origins_of_name(graph, function_key, name):
    """Origins of the first Load of ``name`` inside the function."""
    resolver = resolver_for(graph)
    function = graph.functions[function_key]
    for node in ast.walk(function.node):
        if isinstance(node, ast.Name) and node.id == name:
            return resolver.origins(function, node)
    raise AssertionError(f"no read of {name!r} in {function_key}")


class TestConstructorTaint:
    def test_seed_param_taints_attr_through_local_chain(self):
        tree = ast.parse(
            textwrap.dedent(
                """\
                def __init__(self, seed, size):
                    base = seed + 1
                    derived = base * 2
                    self.rng_state = derived
                    self.size = size
                """
            )
        )
        init = tree.body[0]
        taint = constructor_taint(init, {"seed", "size"})
        assert taint["rng_state"] == {"seed"}
        assert taint["size"] == {"size"}

    def test_loop_target_inherits_iterable_taint(self):
        tree = ast.parse(
            textwrap.dedent(
                """\
                def __init__(self, budgets):
                    for b in budgets:
                        self.total = b
                """
            )
        )
        taint = constructor_taint(tree.body[0], {"budgets"})
        assert taint["total"] == {"budgets"}


class TestOriginResolver:
    def test_param_default_used_when_no_caller(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                def make(seed=7):
                    return seed
                """,
            }
        )
        found = origins_of_name(graph, "repro.core.a:make", "seed")
        assert {(o.kind, o.value) for o in found if o.kind == "literal"} == {
            ("literal", 7)
        }
        # With no call site, the parameter leaf is kept too (the value
        # could come from anywhere).
        assert any(o.kind == "param" for o in found)

    def test_call_site_argument_beats_default(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                def make(seed=7):
                    return seed

                def outer():
                    return make(123)
                """,
            }
        )
        found = origins_of_name(graph, "repro.core.a:make", "seed")
        assert {o.value for o in found if o.kind == "literal"} == {123}

    def test_partial_bound_argument_reaches_parameter(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                import functools

                def work(seed, scale):
                    return seed * scale

                def launch():
                    bound = functools.partial(work, 99)
                    return bound(2)
                """,
            }
        )
        seed = origins_of_name(graph, "repro.core.a:work", "seed")
        assert {o.value for o in seed if o.kind == "literal"} == {99}
        scale = origins_of_name(graph, "repro.core.a:work", "scale")
        assert {o.value for o in scale if o.kind == "literal"} == {2}

    def test_keyword_only_param_binds_by_keyword_and_default(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                def make(*, seed=5):
                    return seed

                def explicit():
                    return make(seed=11)
                """,
            }
        )
        found = origins_of_name(graph, "repro.core.a:make", "seed")
        assert {o.value for o in found if o.kind == "literal"} == {11}

    def test_keyword_only_default_when_not_passed(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                def make(*, seed=5):
                    return seed

                def implicit():
                    return make()
                """,
            }
        )
        found = origins_of_name(graph, "repro.core.a:make", "seed")
        assert {o.value for o in found if o.kind == "literal"} == {5}

    def test_interprocedural_chain_through_local_and_call(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                SEED = 41

                def derive():
                    return SEED + 1

                def middle(seed):
                    return seed

                def top():
                    value = derive()
                    return middle(value)
                """,
            }
        )
        found = origins_of_name(graph, "repro.core.a:middle", "seed")
        assert ("module-const", 41) in {
            (o.kind, o.value) for o in found
        }

    def test_self_attribute_chases_into_init(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                class Box:
                    def __init__(self, seed):
                        self.seed = seed

                    def draw(self):
                        return self.seed
                """,
            }
        )
        resolver = resolver_for(graph)
        draw = graph.functions["repro.core.a:Box.draw"]
        ret = draw.node.body[0]
        found = resolver.origins(draw, ret.value)
        assert any(o.kind == "param" and o.detail.endswith(":seed") for o in found)

    def test_unresolved_external_call_is_a_call_leaf(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                import time

                def stamp():
                    now = time.time()
                    return now
                """,
            }
        )
        found = origins_of_name(graph, "repro.core.a:stamp", "now")
        assert {o.detail for o in found if o.kind == "call"} == {"time.time"}

    def test_callers_with_param_walks_transitively(self):
        graph = build_graph(
            {
                "repro.core.a": """\
                def leaf():
                    return 1

                def mid():
                    return leaf()

                def root(data, rng):
                    return mid()
                """,
            }
        )
        resolver = resolver_for(graph)
        leaf = graph.functions["repro.core.a:leaf"]
        caller = resolver.callers_with_param(leaf, frozenset({"rng"}))
        assert caller is not None and caller.key == "repro.core.a:root"
        assert (
            resolver.callers_with_param(leaf, frozenset({"absent"})) is None
        )
