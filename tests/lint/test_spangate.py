"""O502 span/progress-gating rule over the sweep and scheduler loops."""

from __future__ import annotations

from .conftest import rule_ids


class TestUngatedFlagged:
    def test_ungated_span_call_in_sweep_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run(points, spans):
                    for point in points:
                        spans.observe(point)
                """
            }
        )
        assert rule_ids(report) == ["O502"]

    def test_ungated_progress_update_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run(points, progress):
                    for point in points:
                        progress.update(done=1)
                """
            }
        )
        assert rule_ids(report) == ["O502"]

    def test_ungated_tracker_in_simnet_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/simnet.py": """\
                def drain(heap, tracker):
                    while heap:
                        heap.pop()
                        tracker.observe("pending", len(heap))
                """
            }
        )
        assert rule_ids(report) == ["O502"]

    def test_o501_vocabulary_also_covered(self, lint_tree):
        # O502 is a superset vocabulary: the observer names O501 knows
        # are hot in the sweep loops too.
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run(points, observer):
                    for point in points:
                        observer.on_point(point)
                """
            }
        )
        assert rule_ids(report) == ["O502"]

    def test_unrelated_guard_does_not_gate(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run(points, spans, verbose):
                    for point in points:
                        if verbose:
                            spans.observe(point)
                """
            }
        )
        assert rule_ids(report) == ["O502"]


class TestGatedAllowed:
    def test_is_not_none_gate_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run(points, spans):
                    for point in points:
                        if spans is not None:
                            spans.observe(point)
                """
            }
        )
        assert rule_ids(report) == []

    def test_outer_gate_covers_inner_loop(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/simnet.py": """\
                def drain(batches, span):
                    for heap in batches:
                        if span is not None:
                            while heap:
                                heap.pop()
                                span.observe("pending", len(heap))
                """
            }
        )
        # The inner loop sits under the sink guard: one branch per
        # batch, not one per event.
        assert rule_ids(report) == []

    def test_outside_loop_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run(points, progress):
                    progress.start(total=len(points))
                    total = 0
                    for point in points:
                        total += 1
                    progress.finish()
                    return total
                """
            }
        )
        assert rule_ids(report) == []

    def test_engine_modules_not_double_flagged(self, lint_tree):
        # O502 anchors on sweep/simnet only; the engine loops stay
        # O501 territory (span names are not in O501's vocabulary).
        report = lint_tree(
            {
                "src/repro/core/fastpath.py": """\
                def run(requests, progress):
                    for i in requests:
                        progress.update(done=i)
                """
            }
        )
        assert rule_ids(report) == []

    def test_other_modules_out_of_scope(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/obs/progress.py": """\
                def render(counters, reporter):
                    for name in counters:
                        reporter.update(name)
                """
            }
        )
        assert rule_ids(report) == []

    def test_inline_suppression_honored(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run(points, spans):
                    for point in points:
                        spans.observe(point)  # lint: disable=O502 -- traced
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 1
