"""P2xx engine-parity rules against a synthetic engine/fastpath/metrics trio."""

from __future__ import annotations

from .conftest import PARITY_TRIO, rule_ids


def _trio(**overrides: str) -> dict[str, str]:
    files = dict(PARITY_TRIO)
    files.update(overrides)
    return files


class TestKnobParity:
    def test_clean_trio_passes(self, lint_tree):
        report = lint_tree(_trio())
        assert rule_ids(report) == []
        assert report.exit_code() == 0

    def test_never_stored_knob_flagged(self, lint_tree):
        report = lint_tree(
            _trio(
                **{
                    "src/repro/core/engine.py": """\
                    class Simulator:
                        def __init__(self, topology, mystery=0):
                            self.topology = topology
                    """,
                    "src/repro/core/fastpath.py": """\
                    class FastEngine:
                        def __init__(self, sim):
                            self._order = list(sim.topology)
                    """,
                }
            )
        )
        assert rule_ids(report) == ["P201"]
        (diag,) = report.diagnostics
        assert "mystery" in diag.message
        assert "never stored" in diag.message

    def test_stored_but_unread_knob_flagged(self, lint_tree):
        report = lint_tree(
            _trio(
                **{
                    "src/repro/core/engine.py": """\
                    class Simulator:
                        def __init__(self, topology, quirk=0):
                            self.topology = topology
                            self.quirk = quirk
                    """,
                    "src/repro/core/fastpath.py": """\
                    class FastEngine:
                        def __init__(self, sim):
                            self._order = list(sim.topology)
                    """,
                }
            )
        )
        assert rule_ids(report) == ["P201"]
        (diag,) = report.diagnostics
        assert "quirk" in diag.message
        assert "never read by the fast engine" in diag.message

    def test_indirect_taint_through_locals_consumed(self, lint_tree):
        # `budgets` flows through a local dict into `self.caches`, which
        # the fast engine reads — the knob counts as consumed even
        # though `sim.budgets` itself is never touched.
        report = lint_tree(
            _trio(
                **{
                    "src/repro/core/engine.py": """\
                    class Simulator:
                        def __init__(self, topology, budgets):
                            self.topology = topology
                            caches = {}
                            for node in topology:
                                caches[node] = budgets[node] * 2
                            self.caches = caches
                    """,
                    "src/repro/core/fastpath.py": """\
                    class FastEngine:
                        def __init__(self, sim):
                            self._order = list(sim.topology)
                            self._caches = dict(sim.caches)
                    """,
                }
            )
        )
        assert rule_ids(report) == []

    def test_engine_dispatch_knob_exempt(self, lint_tree):
        # The `engine` parameter selects between engines; by
        # construction the fast engine never reads it back.
        report = lint_tree(
            _trio(
                **{
                    "src/repro/core/engine.py": """\
                    class Simulator:
                        def __init__(self, topology, engine="reference"):
                            self.topology = topology
                    """,
                    "src/repro/core/fastpath.py": """\
                    class FastEngine:
                        def __init__(self, sim):
                            self._order = list(sim.topology)
                    """,
                }
            )
        )
        assert rule_ids(report) == []

    def test_parity_skipped_without_all_anchors(self, lint_tree):
        # Without fastpath/metrics there is no trio to compare; the
        # determinism family still runs on the lone engine module.
        files = {"src/repro/core/engine.py": PARITY_TRIO["src/repro/core/engine.py"]}
        report = lint_tree(files)
        assert rule_ids(report) == []


class TestResultFieldParity:
    def test_unwired_field_flagged(self, lint_tree):
        report = lint_tree(
            _trio(
                **{
                    "src/repro/core/metrics.py": """\
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class SimulationResult:
                        requests: int
                        evictions: int = 0

                        @classmethod
                        def from_counters(cls, requests):
                            return cls(requests=requests)
                    """
                }
            )
        )
        assert rule_ids(report) == ["P202"]
        (diag,) = report.diagnostics
        assert "evictions" in diag.message

    def test_positional_factory_args_count(self, lint_tree):
        # from_counters may fill fields positionally; declaration order
        # maps them back to field names.
        report = lint_tree(
            _trio(
                **{
                    "src/repro/core/metrics.py": """\
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class SimulationResult:
                        requests: int
                        hits: int

                        @classmethod
                        def from_counters(cls, requests, hits):
                            return cls(requests, hits)
                    """
                }
            )
        )
        assert rule_ids(report) == []

    def test_missing_factory_flagged(self, lint_tree):
        report = lint_tree(
            _trio(
                **{
                    "src/repro/core/metrics.py": """\
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class SimulationResult:
                        requests: int
                    """
                }
            )
        )
        assert rule_ids(report) == ["P202"]
        (diag,) = report.diagnostics
        assert "from_counters" in diag.message
