"""Metrics-contract rules M901-M903: the registry schema stays mergeable."""

from __future__ import annotations

from .conftest import rule_ids


class TestUnregisteredFamily:
    def test_observed_but_never_registered_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/plane.py": """\
                def record(registry):
                    registry.counter("repro_widget_total").inc()
                """
            }
        )
        ids = rule_ids(report)
        assert "M901" in ids
        assert report.exit_code() == 1
        (diag,) = [d for d in report.diagnostics if d.rule.id == "M901"]
        assert "repro_widget_total" in diag.message

    def test_register_at_observe_with_help_is_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/plane.py": """\
                def record(registry):
                    registry.counter(
                        "repro_widget_total", help="widgets seen"
                    ).inc()
                """
            }
        )
        assert "M901" not in rule_ids(report)

    def test_registration_in_another_module_is_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/plane.py": """\
                def record(registry):
                    registry.counter("repro_widget_total").inc()
                """,
                "src/repro/obs/families.py": """\
                def preregister(registry):
                    registry.counter("repro_widget_total", help="widgets")
                """,
            }
        )
        assert "M901" not in rule_ids(report)

    def test_inc_shortcut_counts_as_observation(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/plane.py": """\
                def record(registry):
                    registry.inc("repro_widget_total")
                """
            }
        )
        assert "M901" in rule_ids(report)


class TestLabelDrift:
    def test_differing_label_names_are_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/plane.py": """\
                def register(registry):
                    registry.counter(
                        "repro_widget_total", help="widgets", kind="a"
                    ).inc()


                def observe(registry):
                    registry.counter("repro_widget_total", phase="b").inc()
                """
            }
        )
        ids = rule_ids(report)
        assert "M902" in ids
        (diag,) = [d for d in report.diagnostics if d.rule.id == "M902"]
        assert "{phase}" in diag.message and "{kind}" in diag.message

    def test_consistent_labels_are_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/plane.py": """\
                def register(registry):
                    registry.counter(
                        "repro_widget_total", help="widgets", kind="a"
                    ).inc()


                def observe(registry):
                    registry.counter("repro_widget_total", kind="b").inc()
                """
            }
        )
        assert "M902" not in rule_ids(report)

    def test_dynamic_label_splat_is_skipped(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/plane.py": """\
                def register(registry):
                    registry.counter(
                        "repro_widget_total", help="widgets", kind="a"
                    ).inc()


                def observe(registry, labels):
                    registry.counter("repro_widget_total", **labels).inc()
                """
            }
        )
        assert "M902" not in rule_ids(report)


class TestSemanticsContract:
    def test_wallclock_value_outside_allowlist_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                WALLCLOCK_METRICS = frozenset({"repro_phase_seconds"})
                """,
                "src/repro/obs/timing.py": """\
                import time


                def record(registry):
                    elapsed = time.perf_counter()
                    registry.gauge(
                        "repro_elapsed_seconds", help="elapsed"
                    ).set(elapsed)
                """,
            }
        )
        ids = rule_ids(report)
        assert "M903" in ids
        (diag,) = [d for d in report.diagnostics if d.rule.id == "M903"]
        assert "repro_elapsed_seconds" in diag.message
        assert "WALLCLOCK_METRICS" in diag.message

    def test_allowlisted_wallclock_family_is_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                WALLCLOCK_METRICS = frozenset({"repro_phase_seconds"})
                """,
                "src/repro/obs/timing.py": """\
                import time


                def record(registry):
                    elapsed = time.perf_counter()
                    registry.gauge(
                        "repro_phase_seconds", help="elapsed"
                    ).set(elapsed)
                """,
            }
        )
        assert "M903" not in rule_ids(report)

    def test_inline_schema_literal_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/exporter.py": """\
                def header():
                    return {"schema": "repro.obs/registry/v1"}
                """
            }
        )
        ids = rule_ids(report)
        assert "M903" in ids
        (diag,) = [d for d in report.diagnostics if d.rule.id == "M903"]
        assert "repro.obs/registry/v1" in diag.message

    def test_schema_constant_in_obs_module_is_exempt(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/obs/constants.py": """\
                SCHEMA_VERSION = "repro.obs/registry/v1"
                """
            }
        )
        assert "M903" not in rule_ids(report)
