"""D1xx determinism rules: pass and fail fixtures for each rule."""

from __future__ import annotations

from .conftest import rule_ids


class TestStdlibRandomImport:
    def test_import_random_flagged(self, lint_tree):
        report = lint_tree(
            {"src/repro/workload/zipf.py": "import random\n"}
        )
        assert rule_ids(report) == ["D101"]
        assert report.exit_code() == 1

    def test_from_random_import_flagged(self, lint_tree):
        report = lint_tree(
            {"src/repro/core/util.py": "from random import choice\n"}
        )
        assert rule_ids(report) == ["D101"]

    def test_secrets_flagged(self, lint_tree):
        report = lint_tree(
            {"src/repro/idicn/token.py": "import secrets\n"}
        )
        assert rule_ids(report) == ["D101"]

    def test_outside_simulation_packages_allowed(self, lint_tree):
        # Analysis/tooling modules are not bound by the determinism
        # contract; only the packages feeding simulation results are.
        report = lint_tree(
            {"src/repro/analysis/plots.py": "import random\n"}
        )
        assert rule_ids(report) == []
        assert report.exit_code() == 0

    def test_numpy_import_allowed(self, lint_tree):
        report = lint_tree(
            {"src/repro/core/ok.py": "import numpy as np\n"}
        )
        assert rule_ids(report) == []


class TestWallClock:
    def test_time_time_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        assert rule_ids(report) == ["D102"]

    def test_from_import_alias_resolved(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/topology/gen.py": """\
                from time import time

                def stamp():
                    return time()
                """
            }
        )
        assert rule_ids(report) == ["D102"]

    def test_datetime_now_and_urandom_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/entropy.py": """\
                import os
                from datetime import datetime

                def draw():
                    return datetime.now(), os.urandom(8)
                """
            }
        )
        assert rule_ids(report) == ["D102", "D102"]

    def test_simulated_clock_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sim.py": """\
                def advance(clock):
                    return clock.now()
                """
            }
        )
        assert rule_ids(report) == []


class TestNumpyGlobalRng:
    def test_unseeded_default_rng_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/workload/gen.py": """\
                import numpy as np

                def make():
                    return np.random.default_rng()
                """
            }
        )
        assert rule_ids(report) == ["D103"]

    def test_seeded_default_rng_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/workload/gen.py": """\
                import numpy as np

                def make(config):
                    return np.random.default_rng(config.seed)
                """
            }
        )
        assert rule_ids(report) == []

    def test_legacy_global_state_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/legacy.py": """\
                import numpy as np

                def draw():
                    np.random.seed(1)
                    return np.random.randint(10)
                """
            }
        )
        assert rule_ids(report) == ["D103", "D103"]

    def test_seed_sequence_and_bit_generators_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/streams.py": """\
                import numpy as np

                def spawn(base):
                    seq = np.random.SeedSequence(base)
                    return np.random.Generator(np.random.PCG64(seq))
                """
            }
        )
        assert rule_ids(report) == []


class TestShadowedRngParam:
    def test_rng_param_with_own_generator_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/cache/warm.py": """\
                import numpy as np

                def warm(cache, rng):
                    extra = np.random.default_rng(7)
                    return extra.random()
                """
            }
        )
        assert rule_ids(report) == ["D104"]

    def test_seed_param_feeding_generator_allowed(self, lint_tree):
        # Constructing the stream *from* the injected seed is the
        # endorsed pattern, not a split stream.
        report = lint_tree(
            {
                "src/repro/cache/warm.py": """\
                import numpy as np

                def warm(cache, seed):
                    rng = np.random.default_rng(seed)
                    return rng.random()
                """
            }
        )
        assert rule_ids(report) == []

    def test_seed_param_ignored_by_generator_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/cache/warm.py": """\
                import numpy as np

                def warm(cache, seed):
                    rng = np.random.default_rng(0)
                    return rng.random()
                """
            }
        )
        assert rule_ids(report) == ["D104"]

    def test_rng_param_drawn_from_allowed(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/idicn/jitter.py": """\
                def jitter(base, rng):
                    return base * rng.random()
                """
            }
        )
        assert rule_ids(report) == []


class TestSchedulingClockWarning:
    def test_monotonic_is_warning_not_error(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/deadline.py": """\
                import time

                def expired(deadline):
                    return time.monotonic() > deadline
                """
            }
        )
        assert rule_ids(report) == ["D105"]
        assert report.errors == 0
        assert report.warnings == 1
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1


class TestSyntaxError:
    def test_unparseable_file_is_e999(self, lint_tree):
        report = lint_tree(
            {"src/repro/core/broken.py": "def broken(:\n"}
        )
        assert rule_ids(report) == ["E999"]
        assert report.exit_code() == 1
