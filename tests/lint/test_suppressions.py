"""Inline suppression handling: line-scoped, file-wide, and `all`."""

from __future__ import annotations

from repro.lint.suppressions import SuppressionIndex

from .conftest import rule_ids


class TestLineSuppressions:
    def test_suppresses_on_its_line_only(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=D101
                import secrets
                """
            }
        )
        assert rule_ids(report) == ["D101"]
        assert report.suppressed == 1
        (diag,) = report.diagnostics
        assert diag.line == 2

    def test_comma_list_and_lowercase_ids(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=d101, O401
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 1

    def test_other_rule_id_does_not_suppress(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=D102
                """
            }
        )
        assert rule_ids(report) == ["D101"]
        assert report.suppressed == 0


class TestFileSuppressions:
    def test_file_wide_suppresses_everywhere(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                # lint: disable-file=D105
                import time


                def wait(deadline):
                    time.sleep(0.1)
                    return time.monotonic() > deadline
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 2

    def test_file_wide_scopes_to_one_file(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/a.py": "# lint: disable-file=D101\nimport random\n",
                "src/repro/core/b.py": "import random\n",
            }
        )
        assert rule_ids(report) == ["D101"]
        assert report.suppressed == 1
        (diag,) = report.diagnostics
        assert diag.path.endswith("b.py")

    def test_all_wildcard(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                # lint: disable-file=all
                import random
                import secrets
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 2
        assert report.exit_code() == 0


class TestSuppressionIndex:
    def test_line_and_file_scopes(self):
        index = SuppressionIndex.from_source(
            "# lint: disable-file=D105\n"
            "x = 1  # lint: disable=O401,O402\n"
        )
        assert index.is_suppressed("D105", 99)
        assert index.is_suppressed("o401", 2)
        assert index.is_suppressed("O402", 2)
        assert not index.is_suppressed("O401", 3)
        assert not index.is_suppressed("D101", 2)

    def test_plain_comment_is_not_a_suppression(self):
        index = SuppressionIndex.from_source(
            "# we should lint: disable nothing here\n"
        )
        assert not index.is_suppressed("D101", 1)

    def test_docstring_mention_is_not_a_suppression(self):
        # Prose that *quotes* the syntax (rule docs, this very module's
        # docstring) must not register as an entry.
        index = SuppressionIndex.from_source(
            '"""Use ``# lint: disable=D101`` to silence imports."""\n'
            "x = 1\n"
        )
        assert index.entries == []

    def test_unparseable_source_falls_back_to_line_scan(self):
        index = SuppressionIndex.from_source(
            "def broken(:\n" "x = 1  # lint: disable=D101\n"
        )
        assert index.is_suppressed("D101", 2)


class TestSuppressionHygiene:
    def test_unknown_rule_id_is_e998_error(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=D999
                """
            }
        )
        ids = rule_ids(report)
        assert "E998" in ids
        assert "D101" in ids  # the typo'd suppression silenced nothing
        (diag,) = [d for d in report.diagnostics if d.rule.id == "E998"]
        assert "D999" in diag.message
        assert report.exit_code() == 1

    def test_unused_suppression_is_e997_under_strict_only(self, lint_tree):
        files = {
            "src/repro/core/mod.py": """\
            X = 1  # lint: disable=D101
            """
        }
        assert rule_ids(lint_tree(files)) == []
        report = lint_tree(files, strict=True)
        assert rule_ids(report) == ["E997"]
        (diag,) = report.diagnostics
        assert "D101" in diag.message
        assert report.exit_code(strict=True) == 1

    def test_used_suppression_is_not_reported_under_strict(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=D101
                """
            },
            strict=True,
        )
        assert rule_ids(report) == []
        assert report.suppressed == 1

    def test_file_wide_unused_suppression_names_its_scope(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                # lint: disable-file=D105
                X = 1
                """
            },
            strict=True,
        )
        (diag,) = report.diagnostics
        assert diag.rule.id == "E997"
        assert "file-wide" in diag.message

    def test_deselected_rule_suppression_is_not_unused(self, lint_tree):
        # Under --select the suppressed family never ran, so the entry
        # is irrelevant rather than stale.
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                X = 1  # lint: disable=D101
                """
            },
            select=["O401"],
            strict=True,
        )
        assert rule_ids(report) == []
