"""Inline suppression handling: line-scoped, file-wide, and `all`."""

from __future__ import annotations

from repro.lint.suppressions import SuppressionIndex

from .conftest import rule_ids


class TestLineSuppressions:
    def test_suppresses_on_its_line_only(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=D101
                import secrets
                """
            }
        )
        assert rule_ids(report) == ["D101"]
        assert report.suppressed == 1
        (diag,) = report.diagnostics
        assert diag.line == 2

    def test_comma_list_and_lowercase_ids(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=d101, O401
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 1

    def test_other_rule_id_does_not_suppress(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                import random  # lint: disable=D102
                """
            }
        )
        assert rule_ids(report) == ["D101"]
        assert report.suppressed == 0


class TestFileSuppressions:
    def test_file_wide_suppresses_everywhere(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                # lint: disable-file=D105
                import time


                def wait(deadline):
                    time.sleep(0.1)
                    return time.monotonic() > deadline
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 2

    def test_file_wide_scopes_to_one_file(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/a.py": "# lint: disable-file=D101\nimport random\n",
                "src/repro/core/b.py": "import random\n",
            }
        )
        assert rule_ids(report) == ["D101"]
        assert report.suppressed == 1
        (diag,) = report.diagnostics
        assert diag.path.endswith("b.py")

    def test_all_wildcard(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/mod.py": """\
                # lint: disable-file=all
                import random
                import secrets
                """
            }
        )
        assert rule_ids(report) == []
        assert report.suppressed == 2
        assert report.exit_code() == 0


class TestSuppressionIndex:
    def test_line_and_file_scopes(self):
        index = SuppressionIndex.from_source(
            "# lint: disable-file=D105\n"
            "x = 1  # lint: disable=O401,O402\n"
        )
        assert index.is_suppressed("D105", 99)
        assert index.is_suppressed("o401", 2)
        assert index.is_suppressed("O402", 2)
        assert not index.is_suppressed("O401", 3)
        assert not index.is_suppressed("D101", 2)

    def test_plain_comment_is_not_a_suppression(self):
        index = SuppressionIndex.from_source(
            "# we should lint: disable nothing here\n"
        )
        assert not index.is_suppressed("D101", 1)
