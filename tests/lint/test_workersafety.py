"""Worker-safety rules W801-W803: what the sweep may hand to workers."""

from __future__ import annotations

import ast
from pathlib import Path

from .conftest import rule_ids


class TestWorkerNotToplevel:
    def test_lambda_submit_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run_sweep(configs, pool):
                    futures = [pool.submit(lambda c: c, c) for c in configs]
                    return [f.result() for f in futures]
                """
            }
        )
        ids = rule_ids(report)
        assert "W801" in ids
        assert report.exit_code() == 1

    def test_nested_function_submit_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def run_sweep(configs, pool):
                    def worker(c):
                        return c

                    return [pool.submit(worker, c) for c in configs]
                """
            }
        )
        assert "W801" in rule_ids(report)

    def test_toplevel_function_submit_is_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def _work(c):
                    return c


                def run_sweep(configs, pool):
                    return [pool.submit(_work, c) for c in configs]
                """
            }
        )
        assert "W801" not in rule_ids(report)


class TestWorkerGlobalWrite:
    def test_mutator_call_on_module_global_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                RESULTS = []


                def _work(c):
                    RESULTS.append(c)
                    return c


                def run_sweep(configs, pool):
                    return [pool.submit(_work, c) for c in configs]
                """
            }
        )
        ids = rule_ids(report)
        assert "W802" in ids
        assert report.exit_code() == 1
        (diag,) = [d for d in report.diagnostics if d.rule.id == "W802"]
        assert "RESULTS" in diag.message

    def test_global_declaration_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                COUNT = 0


                def _work(c):
                    global COUNT
                    COUNT += 1
                    return c


                def run_sweep(configs, pool):
                    return [pool.submit(_work, c) for c in configs]
                """
            }
        )
        assert "W802" in rule_ids(report)

    def test_write_reached_through_helper_module_is_flagged(self, lint_tree):
        # The write sits one call away, in a different module: only the
        # cross-module closure sees it.
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                from repro.core.state import record


                def _work(c):
                    record(c)
                    return c


                def run_sweep(configs, pool):
                    return [pool.submit(_work, c) for c in configs]
                """,
                "src/repro/core/state.py": """\
                SEEN = {}


                def record(c):
                    SEEN[c] = True
                """,
            }
        )
        ids = rule_ids(report)
        assert "W802" in ids
        (diag,) = [d for d in report.diagnostics if d.rule.id == "W802"]
        assert diag.path.endswith("state.py")

    def test_local_mutation_is_clean(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                def _work(c):
                    out = []
                    out.append(c)
                    return out


                def run_sweep(configs, pool):
                    return [pool.submit(_work, c) for c in configs]
                """
            }
        )
        assert "W802" not in rule_ids(report)


class TestWorkerCapturedHandle:
    def test_module_level_handle_capture_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                _LOG = open("sweep.log", "a")


                def _work(c):
                    _LOG.write(str(c))
                    return c


                def run_sweep(configs, pool):
                    return [pool.submit(_work, c) for c in configs]
                """
            }
        )
        ids = rule_ids(report)
        assert "W803" in ids
        assert report.exit_code() == 1

    def test_lock_parameter_default_is_flagged(self, lint_tree):
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                import threading


                def _work(c, lock=threading.Lock()):
                    with lock:
                        return c


                def run_sweep(configs, pool):
                    return [pool.submit(_work, c) for c in configs]
                """
            }
        )
        assert "W803" in rule_ids(report)

    def test_unreachable_function_is_not_checked(self, lint_tree):
        # The hazard exists but nothing dispatches it to a worker.
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                _LOG = open("sweep.log", "a")


                def _unrelated(c):
                    _LOG.write(str(c))


                def run_sweep(configs):
                    return list(configs)
                """
            }
        )
        assert "W803" not in rule_ids(report)

    def test_stream_shard_path_is_inside_the_audited_closure(self):
        """The real repo's PoP-shard dispatch is worker-audited.

        ``_run_point`` (the ``runner=`` default, hence a dispatch root)
        routes sharded points through ``run_streamed_experiment`` and
        the chunked stream producers — all of which execute inside
        worker processes, so W802/W803 must actually *see* them.  This
        pins the call-graph resolution: if a refactor breaks the edge
        (say, by dispatching through an unresolvable indirection), the
        shard path silently falls out of the audit.
        """
        import repro
        from repro.lint.graph import CallGraph, ModuleGraph
        from repro.lint.workersafety import SWEEP_MODULE, _dispatch_sites

        src = Path(repro.__file__).resolve().parent
        program = {}
        for path in sorted(src.rglob("*.py")):
            parts = path.relative_to(src.parent).with_suffix("").parts
            if parts[-1] == "__init__":
                parts = parts[:-1]
            program[".".join(parts)] = (
                str(path),
                ast.parse(path.read_text(encoding="utf-8")),
            )
        graph = ModuleGraph(program)
        callgraph = CallGraph(graph)
        roots = [
            function
            for function, _, _ in _dispatch_sites(
                graph, graph.modules[SWEEP_MODULE]
            )
            if function is not None
        ]
        assert any(f.qualname == "_run_point" for f in roots)
        reachable = {f.key for f in callgraph.reachable_from(roots)}
        for expected in (
            "repro.core.experiment:run_streamed_experiment",
            "repro.core.experiment:build_streaming_workload",
            "repro.workload.stream:pop_shard",
            "repro.workload.stream:stream_workload",
        ):
            assert expected in reachable

    def test_runner_param_default_is_a_dispatch_root(self, lint_tree):
        # The declared `runner=` default is dispatched even without a
        # literal submit call in view.
        report = lint_tree(
            {
                "src/repro/core/sweep.py": """\
                RESULTS = []


                def _run_point(c):
                    RESULTS.append(c)
                    return c


                def run_sweep(configs, runner=_run_point):
                    return [runner(c) for c in configs]
                """
            }
        )
        assert "W802" in rule_ids(report)
