"""Meta-tests: the linter's verdict on this repository itself.

The acceptance contract for the lint subsystem is two-sided: the shipped
tree must lint clean, and the regressions the linter exists to catch —
re-importing stdlib ``random`` into the engine, adding a Simulator knob
the fast engine ignores — must flip the exit code to non-zero.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths

from .conftest import rule_ids

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


@pytest.fixture
def repo_copy(tmp_path):
    """A scratch copy of the real ``src/repro`` tree, safe to mutate."""
    target = tmp_path / "src" / "repro"
    shutil.copytree(SRC / "repro", target)
    return target


def test_shipped_tree_lints_clean():
    report = lint_paths([SRC])
    assert rule_ids(report) == []
    assert report.exit_code() == 0
    assert report.files_checked > 50
    # The justified orchestration suppressions (core/sweep.py) are
    # counted, proving the suppression path is exercised on real code.
    assert report.suppressed > 0


def test_shipped_tree_lints_clean_under_strict():
    # Strict adds suppression hygiene (E997): every inline suppression
    # in the shipped tree must still be earning its keep.
    report = lint_paths([SRC], strict=True)
    assert rule_ids(report) == []
    assert report.exit_code(strict=True) == 0


def test_module_entry_point_exits_clean_on_repo():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout


def test_reintroducing_stdlib_random_fails_the_lint(repo_copy):
    engine = repo_copy / "core" / "engine.py"
    engine.write_text(
        engine.read_text(encoding="utf-8").replace(
            "import numpy as np", "import numpy as np\nimport random", 1
        ),
        encoding="utf-8",
    )
    report = lint_paths([repo_copy])
    assert "D101" in rule_ids(report)
    assert report.exit_code() == 1


def test_unconsumed_simulator_knob_fails_the_lint(repo_copy):
    engine = repo_copy / "core" / "engine.py"
    source = engine.read_text(encoding="utf-8")
    marker = 'engine: str = "reference",'
    assert marker in source, "Simulator dispatch knob moved; update test"
    engine.write_text(
        source.replace(
            marker, marker + "\n        mystery_knob: int = 0,", 1
        ),
        encoding="utf-8",
    )
    report = lint_paths([repo_copy])
    ids = rule_ids(report)
    assert "P201" in ids
    assert any(
        "mystery_knob" in d.message for d in report.diagnostics
    )
    assert report.exit_code() == 1


def test_unwired_result_field_fails_the_lint(repo_copy):
    metrics = repo_copy / "core" / "metrics.py"
    source = metrics.read_text(encoding="utf-8")
    marker = "class SimulationResult:"
    assert marker in source
    # Insert a new dataclass field that from_counters never produces.
    lines = source.splitlines(keepends=True)
    for index, line in enumerate(lines):
        if marker in line:
            docstring_end = index + 1
            lines.insert(docstring_end, "    phantom_field: int = 0\n")
            break
    metrics.write_text("".join(lines), encoding="utf-8")
    report = lint_paths([repo_copy])
    assert "P202" in rule_ids(report)
    assert report.exit_code() == 1


def test_literal_reseed_deep_in_seeded_chain_fails_the_lint(repo_copy):
    # A helper that quietly re-seeds from a literal while its caller
    # threads an rng: invisible per-file (no rng param in the helper),
    # caught only by the interprocedural seed-flow family.
    injected = repo_copy / "core" / "_meta_seed.py"
    injected.write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def outer(data, rng):\n"
        "    return _inner(data)\n"
        "\n"
        "\n"
        "def _inner(data):\n"
        "    gen = np.random.default_rng(42)\n"
        "    return gen.random()\n",
        encoding="utf-8",
    )
    report = lint_paths([repo_copy])
    assert "S702" in rule_ids(report)
    assert report.exit_code() == 1


def test_worker_mutating_module_global_fails_the_lint(repo_copy):
    sweep = repo_copy / "core" / "sweep.py"
    source = sweep.read_text(encoding="utf-8")
    sweep.write_text(
        source
        + "\n\n"
        + "_META_SHARED = []\n"
        + "\n"
        + "\n"
        + "def _meta_unsafe_worker(item):\n"
        + "    _META_SHARED.append(item)\n"
        + "    return item\n"
        + "\n"
        + "\n"
        + "def _meta_dispatch(pool, items):\n"
        + "    return [pool.submit(_meta_unsafe_worker, i) for i in items]\n",
        encoding="utf-8",
    )
    report = lint_paths([repo_copy])
    ids = rule_ids(report)
    assert "W802" in ids
    assert any(
        "_META_SHARED" in d.message
        for d in report.diagnostics
        if d.rule.id == "W802"
    )
    assert report.exit_code() == 1


def test_unregistered_metric_family_fails_the_lint(repo_copy):
    injected = repo_copy / "core" / "_meta_metrics.py"
    injected.write_text(
        "def observe(registry):\n"
        '    registry.counter("repro_meta_phantom_total").inc()\n',
        encoding="utf-8",
    )
    report = lint_paths([repo_copy])
    assert "M901" in rule_ids(report)
    assert report.exit_code() == 1


def test_dropping_a_fast_policy_fails_the_lint(repo_copy):
    fast = repo_copy / "cache" / "fast.py"
    source = fast.read_text(encoding="utf-8")
    assert '"lru"' in source
    fast.write_text(
        source.replace('"lru": FastLRU,', "", 1), encoding="utf-8"
    )
    report = lint_paths([repo_copy])
    assert "C302" in rule_ids(report)
    assert report.exit_code() == 1
