"""R601: unbounded waits inside ``repro.idicn``."""

from __future__ import annotations

from .conftest import rule_ids


class TestUnboundedQueues:
    def test_deque_without_maxlen_flagged(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/backlog.py": """\
                from collections import deque

                PENDING = deque()
                """,
        }, select=["R601"])
        assert rule_ids(report) == ["R601"]
        assert "maxlen" in report.diagnostics[0].message

    def test_deque_with_maxlen_passes(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/backlog.py": """\
                from collections import deque

                PENDING = deque(maxlen=128)
                ALSO_OK = deque([], 128)
                """,
        }, select=["R601"])
        assert rule_ids(report) == []

    def test_stdlib_queue_without_maxsize_flagged(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/backlog.py": """\
                import queue

                INBOX = queue.Queue()
                PRIORITIES = queue.PriorityQueue(16)
                """,
        }, select=["R601"])
        assert rule_ids(report) == ["R601"]
        assert report.diagnostics[0].line == 3

    def test_aliased_import_resolved(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/backlog.py": """\
                from collections import deque as dq

                PENDING = dq()
                """,
        }, select=["R601"])
        assert rule_ids(report) == ["R601"]


class TestForeverLoops:
    def test_while_true_without_exit_flagged(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/pump.py": """\
                def drain(q):
                    while True:
                        q.step()
                """,
        }, select=["R601"])
        assert rule_ids(report) == ["R601"]

    def test_while_one_is_forever_too(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/pump.py": """\
                def drain(q):
                    while 1:
                        q.step()
                """,
        }, select=["R601"])
        assert rule_ids(report) == ["R601"]

    def test_break_return_raise_pass(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/pump.py": """\
                def a(q):
                    while True:
                        if q.empty():
                            break
                        q.step()


                def b(q):
                    while True:
                        if q.empty():
                            return q
                        q.step()


                def c(q):
                    while True:
                        if q.stuck():
                            raise TimeoutError
                        q.step()
                """,
        }, select=["R601"])
        assert rule_ids(report) == []

    def test_break_in_nested_loop_does_not_count(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/pump.py": """\
                def drain(q):
                    while True:
                        for item in q:
                            if item is None:
                                break
                """,
        }, select=["R601"])
        assert rule_ids(report) == ["R601"]

    def test_return_in_nested_function_does_not_count(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/pump.py": """\
                def drain(q):
                    while True:
                        def helper():
                            return 1
                        helper()
                """,
        }, select=["R601"])
        assert rule_ids(report) == ["R601"]

    def test_bounded_while_condition_passes(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/pump.py": """\
                def drain(q, budget):
                    while budget > 0:
                        q.step()
                        budget -= 1
                """,
        }, select=["R601"])
        assert rule_ids(report) == []


class TestScope:
    def test_outside_idicn_is_ignored(self, lint_tree):
        report = lint_tree({
            "src/repro/workload/backlog.py": """\
                from collections import deque

                PENDING = deque()
                """,
            "src/tools/backlog.py": """\
                from collections import deque

                PENDING = deque()
                """,
        }, select=["R601"])
        assert rule_ids(report) == []

    def test_inline_suppression_applies(self, lint_tree):
        report = lint_tree({
            "src/repro/idicn/backlog.py": """\
                from collections import deque

                PENDING = deque()  # lint: disable=R601
                """,
        }, select=["R601"])
        assert rule_ids(report) == []
        assert report.suppressed == 1
