"""Tests for the cross-level budget allocator."""

import pytest

from repro.treeopt import (
    TreeModel,
    budget_share_per_level,
    expected_hops,
    optimize_level_allocation,
)


def model(alpha=1.1, num_objects=500):
    return TreeModel(levels=6, cache_size=0, num_objects=num_objects,
                     alpha=alpha)


class TestAllocator:
    def test_budget_respected(self):
        m = model()
        allocation = optimize_level_allocation(m, total_budget=500)
        used = sum(
            allocation.sizes[level - 1] * m.nodes_at_level(level)
            for level in range(1, 6)
        )
        assert used == allocation.budget_used <= 500

    def test_zero_budget(self):
        allocation = optimize_level_allocation(model(), total_budget=0)
        assert allocation.sizes == (0,) * 5
        assert allocation.expected_hops == pytest.approx(6.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            optimize_level_allocation(model(), total_budget=-1)

    def test_allocation_reduces_expected_hops(self):
        m = model()
        allocation = optimize_level_allocation(m, total_budget=800)
        assert allocation.expected_hops < 6.0

    def test_beats_or_matches_equal_split(self):
        m = model()
        total = 32 * 10 + 16 * 10 + 8 * 10 + 4 * 10 + 2 * 10
        allocation = optimize_level_allocation(m, total_budget=total)
        equal = TreeModel(levels=6, cache_size=10, num_objects=500,
                          alpha=1.1)
        assert allocation.expected_hops <= expected_hops(equal) + 1e-9


class TestPaperClaim:
    def test_majority_of_budget_goes_to_the_leaves(self):
        """Section 2.2: 'the optimal solution under a Zipf workload
        involves assigning a majority of the total caching budget to the
        leaves of the tree.'"""
        m = model(alpha=1.1)
        allocation = optimize_level_allocation(m, total_budget=8000)
        shares = budget_share_per_level(m, allocation)
        assert shares[0] > 0.5

    def test_leaves_get_a_plurality_even_with_tight_budgets(self):
        m = model(alpha=1.1)
        allocation = optimize_level_allocation(m, total_budget=2000)
        shares = budget_share_per_level(m, allocation)
        assert shares[0] == shares.max()

    def test_shares_sum_to_one(self):
        m = model()
        allocation = optimize_level_allocation(m, total_budget=1000)
        shares = budget_share_per_level(m, allocation)
        assert shares.sum() == pytest.approx(1.0)
