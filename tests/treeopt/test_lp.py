"""Tests for the LP cross-check of the tree model."""

import pytest

from repro.treeopt import TreeModel, expected_hops, lp_expected_hops


class TestLpAgreesWithGreedy:
    @pytest.mark.parametrize("alpha", [0.5, 0.7, 1.1, 1.5])
    def test_matches_symmetric_greedy(self, alpha):
        model = TreeModel(levels=6, cache_size=20, num_objects=300,
                          alpha=alpha)
        assert lp_expected_hops(model) == pytest.approx(
            expected_hops(model), abs=1e-6
        )

    def test_zero_cache(self):
        model = TreeModel(levels=4, cache_size=0, num_objects=50, alpha=1.0)
        assert lp_expected_hops(model) == pytest.approx(4.0, abs=1e-6)

    def test_everything_fits_at_the_edge(self):
        model = TreeModel(levels=4, cache_size=50, num_objects=50, alpha=1.0)
        assert lp_expected_hops(model) == pytest.approx(1.0, abs=1e-6)

    def test_small_instance_by_hand(self):
        # 2 levels (leaf + origin), cache 1, 2 objects, uniform: the top
        # object is served at the leaf, the other at the origin.
        model = TreeModel(levels=2, cache_size=1, num_objects=2, alpha=0.0)
        assert lp_expected_hops(model) == pytest.approx(1.5, abs=1e-6)
