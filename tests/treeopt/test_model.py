"""Tests for the Section 2.2 tree-placement model."""

import numpy as np
import pytest

from repro.treeopt import (
    TreeModel,
    expected_hops,
    expected_hops_edge_only,
    fraction_served_per_level,
    optimal_levels,
    universal_caching_latency_gain,
)


def model(**kwargs):
    defaults = dict(levels=6, cache_size=50, num_objects=1000, alpha=0.7)
    defaults.update(kwargs)
    return TreeModel(**defaults)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            model(levels=1)
        with pytest.raises(ValueError):
            model(cache_size=-1)
        with pytest.raises(ValueError):
            model(num_objects=0)
        with pytest.raises(ValueError):
            model(arity=1)

    def test_nodes_at_level(self):
        m = model()
        assert m.nodes_at_level(1) == 32  # leaves of a 6-level binary tree
        assert m.nodes_at_level(6) == 1  # the origin
        with pytest.raises(ValueError):
            m.nodes_at_level(0)


class TestOptimalPlacement:
    def test_greedy_layering(self):
        m = model(cache_size=10, num_objects=100)
        levels = optimal_levels(m)
        assert (levels[:10] == 1).all()
        assert (levels[10:20] == 2).all()
        assert (levels[50:] == 6).all()

    def test_zero_cache_serves_everything_at_origin(self):
        levels = optimal_levels(model(cache_size=0))
        assert (levels == 6).all()

    def test_large_cache_serves_everything_at_edge(self):
        levels = optimal_levels(model(cache_size=2000))
        assert (levels == 1).all()

    def test_fractions_sum_to_one(self):
        fractions = fraction_served_per_level(model())
        assert fractions.sum() == pytest.approx(1.0)
        assert len(fractions) == 6

    def test_higher_alpha_serves_more_at_edge(self):
        low = fraction_served_per_level(model(alpha=0.7))[0]
        high = fraction_served_per_level(model(alpha=1.5))[0]
        assert high > low


class TestPaperNumbers:
    """The alpha = 0.7 walkthrough of Section 2.2."""

    def test_figure2_shape(self):
        # With a cache sized so the edge serves ~40% of requests, the
        # intermediate levels each add only a few percent.
        m = model(alpha=0.7, cache_size=60, num_objects=1000)
        fractions = fraction_served_per_level(m)
        assert fractions[0] == pytest.approx(0.4, abs=0.1)
        assert all(fractions[i] < 0.15 for i in range(1, 5))

    def test_intermediate_levels_add_little_latency(self):
        m = model(alpha=0.7, cache_size=60, num_objects=1000)
        gain = universal_caching_latency_gain(m)
        # The paper computes roughly 25% for its configuration.
        assert 10.0 < gain < 35.0

    def test_edge_only_is_an_upper_bound(self):
        for alpha in (0.7, 1.1, 1.5):
            m = model(alpha=alpha)
            assert expected_hops_edge_only(m) >= expected_hops(m)

    def test_expected_hops_bounds(self):
        m = model()
        assert 1.0 <= expected_hops(m) <= 6.0
