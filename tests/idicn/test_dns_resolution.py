"""Tests for DNS (with dynamic updates) and the name resolution system."""

import dataclasses

import pytest

from repro.idicn import (
    DnsClient,
    DnsServer,
    NameResolutionSystem,
    ResolutionClient,
    SimNet,
    generate_keypair,
    make_name,
    make_registration,
    principal_of,
)
from repro.idicn.resolution import RESOLVER_PORT

KEY = generate_keypair(bits=256, seed=8)
OTHER = generate_keypair(bits=256, seed=9)


@pytest.fixture
def net():
    network = SimNet()
    network.create_subnet("lan", "10.0.0")
    return network


@pytest.fixture
def dns(net):
    return DnsServer(net.create_host("dns", "lan"))


@pytest.fixture
def resolver(net):
    return NameResolutionSystem(net.create_host("nrs", "lan"))


class TestDns:
    def test_query(self, net, dns):
        dns.add_record("www.example", "10.0.0.42")
        client = DnsClient(net.create_host("c", "lan"),
                           server_address=dns.host.address)
        assert client.resolve("www.example") == "10.0.0.42"
        assert client.resolve("nope.example") is None
        assert dns.queries == 2

    def test_names_case_insensitive(self, net, dns):
        dns.add_record("WWW.Example", "10.0.0.42")
        assert dns.lookup("www.example") == "10.0.0.42"

    def test_dynamic_update(self, net, dns):
        dns.add_record("mobile.example", "10.0.0.5", token="secret")
        client = DnsClient(net.create_host("c", "lan"),
                           server_address=dns.host.address)
        assert client.update("mobile.example", "10.0.0.9", "secret")
        assert client.resolve("mobile.example") == "10.0.0.9"

    def test_update_with_wrong_token_refused(self, net, dns):
        dns.add_record("mobile.example", "10.0.0.5", token="secret")
        client = DnsClient(net.create_host("c", "lan"),
                           server_address=dns.host.address)
        assert not client.update("mobile.example", "10.0.0.9", "wrong")
        assert client.resolve("mobile.example") == "10.0.0.5"

    def test_update_claims_unowned_name(self, net, dns):
        client = DnsClient(net.create_host("c", "lan"),
                           server_address=dns.host.address)
        assert client.update("new.example", "10.0.0.7", "tok")
        assert client.resolve("new.example") == "10.0.0.7"
        # And the token is now required.
        assert not client.update("new.example", "10.0.0.8", "other")

    def test_unconfigured_client(self, net):
        client = DnsClient(net.create_host("c", "lan"))
        assert client.resolve("x") is None
        assert not client.update("x", "10.0.0.1", "t")

    def test_unreachable_server(self, net, dns):
        client = DnsClient(net.create_host("c", "lan"),
                           server_address=dns.host.address)
        net.set_online(dns.host, False)
        assert client.resolve("x") is None


class TestResolutionSystem:
    def test_register_and_resolve(self, net, resolver):
        host = net.create_host("pub", "lan")
        client = ResolutionClient(host, resolver.host.address)
        name = make_name("doc", KEY.public)
        assert client.register(name, ("http://10.0.0.9/doc",), KEY)
        assert client.resolve(name) == ("http://10.0.0.9/doc",)
        assert resolver.registrations == 1

    def test_registration_requires_matching_key(self, net, resolver):
        host = net.create_host("attacker", "lan")
        client = ResolutionClient(host, resolver.host.address)
        name = make_name("doc", KEY.public)  # P binds to KEY...
        assert not client.register(name, ("http://evil/doc",), OTHER)
        assert resolver.rejected == 1
        assert client.resolve(name) == ()

    def test_registration_signature_checked(self, net, resolver):
        host = net.create_host("pub", "lan")
        name = make_name("doc", KEY.public)
        request = make_registration(name.flat, ("http://a/x",), KEY)
        tampered = dataclasses.replace(
            request, locations=("http://evil/x",)
        )
        assert host.call(resolver.host.address, RESOLVER_PORT, tampered) is False

    def test_principal_fallback(self, net, resolver):
        host = net.create_host("pub", "lan")
        client = ResolutionClient(host, resolver.host.address)
        assert client.register_principal(KEY, ("http://10.0.0.9/any",))
        unregistered = make_name("unseen", KEY.public)
        assert client.resolve(unregistered) == ("http://10.0.0.9/any",)

    def test_exact_match_beats_fallback(self, net, resolver):
        host = net.create_host("pub", "lan")
        client = ResolutionClient(host, resolver.host.address)
        name = make_name("doc", KEY.public)
        client.register_principal(KEY, ("http://fallback/",))
        client.register(name, ("http://exact/doc",), KEY)
        assert client.resolve(name) == ("http://exact/doc",)

    def test_delegation_followed(self, net, resolver):
        # A second, finer-grained resolver holds the exact entry; the
        # first resolver's P entry delegates to it.
        fine = NameResolutionSystem(net.create_host("nrs2", "lan"))
        host = net.create_host("pub", "lan")
        coarse_client = ResolutionClient(host, resolver.host.address)
        fine_client = ResolutionClient(host, fine.host.address)
        name = make_name("doc", KEY.public)
        assert fine_client.register(name, ("http://10.0.0.77/doc",), KEY)
        assert coarse_client.register_principal(
            KEY, (f"resolver:{fine.host.address}",)
        )
        assert coarse_client.resolve(name) == ("http://10.0.0.77/doc",)

    def test_unresolvable_name(self, net, resolver):
        host = net.create_host("c", "lan")
        client = ResolutionClient(host, resolver.host.address)
        assert client.resolve(make_name("ghost", KEY.public)) == ()

    def test_bare_principal_of(self):
        assert len(principal_of(KEY.public)) == 40
