"""Tests for WPAD discovery and the PAC mini-DSL."""

import pytest

from repro.idicn import (
    DnsClient,
    DnsServer,
    PacFile,
    PacRule,
    SimNet,
    autodiscover,
    discover_pac_url,
    fetch_pac,
    proxy_address,
)
from repro.idicn.http import ok
from repro.idicn.simnet import HTTP_PORT
from repro.idicn.wpad import DHCP_PAC_OPTION

PAC_TEXT = """
# corporate PAC
dnsDomainIs .idicn.org => PROXY 10.0.0.2:80
shExpMatch http://*.video.example/* => PROXY 10.0.0.3:80
isInNet 10.0.0.0/24 => DIRECT
default => PROXY 10.0.0.2:80
"""


class TestPacParsing:
    def test_parse_counts_rules(self):
        pac = PacFile.parse(PAC_TEXT)
        assert len(pac.rules) == 4

    def test_serialize_roundtrip(self):
        pac = PacFile.parse(PAC_TEXT)
        assert PacFile.parse(pac.serialize()) == pac

    def test_missing_arrow_rejected(self):
        with pytest.raises(ValueError):
            PacFile.parse("dnsDomainIs .x PROXY y")

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError):
            PacFile.parse("isResolvable x => DIRECT")


class TestFindProxyForUrl:
    @pytest.fixture
    def pac(self):
        return PacFile.parse(PAC_TEXT)

    def test_domain_suffix_match(self, pac):
        decision = pac.find_proxy_for_url(
            "http://a.bbbb.idicn.org/x", "a.bbbb.idicn.org"
        )
        assert decision == "PROXY 10.0.0.2:80"

    def test_shell_glob_match(self, pac):
        decision = pac.find_proxy_for_url(
            "http://cdn.video.example/movie", "cdn.video.example"
        )
        assert decision == "PROXY 10.0.0.3:80"

    def test_ip_literal_match(self, pac):
        assert pac.find_proxy_for_url("http://10.0.0.9/x", "10.0.0.9") == "DIRECT"

    def test_default_rule(self, pac):
        decision = pac.find_proxy_for_url("http://other.example/", "other.example")
        assert decision == "PROXY 10.0.0.2:80"

    def test_no_default_falls_back_to_direct(self):
        pac = PacFile(rules=(PacRule("dnsDomainIs", ".x", "PROXY p"),))
        assert pac.find_proxy_for_url("http://y/", "y") == "DIRECT"

    def test_first_match_wins(self):
        pac = PacFile(
            rules=(
                PacRule("default", "", "PROXY first"),
                PacRule("default", "", "PROXY second"),
            )
        )
        assert pac.find_proxy_for_url("http://x/", "x") == "PROXY first"


class TestDecisionParsing:
    def test_direct_is_none(self):
        assert proxy_address("DIRECT") is None

    def test_proxy_with_port(self):
        assert proxy_address("PROXY 10.0.0.2:80") == "10.0.0.2"

    def test_fallback_list_takes_first(self):
        assert proxy_address("PROXY 10.0.0.2:80; PROXY 10.0.0.3:80") == "10.0.0.2"

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            proxy_address("SOCKS 10.0.0.2")


class TestDiscovery:
    @pytest.fixture
    def net(self):
        network = SimNet()
        network.create_subnet("lan", "10.0.0")
        return network

    def _pac_server(self, net, body=PAC_TEXT):
        server = net.create_host("pac", "lan")
        server.bind(HTTP_PORT, lambda h, s, r: ok(body.encode()))
        return server

    def test_dhcp_option_wins(self, net):
        server = self._pac_server(net)
        net.subnets["lan"].dhcp_options[DHCP_PAC_OPTION] = (
            f"http://{server.address}/wpad.dat"
        )
        client = net.create_host("c", "lan")
        url = discover_pac_url(client, "lan")
        assert url == f"http://{server.address}/wpad.dat"
        pac = fetch_pac(client, url)
        assert pac is not None and len(pac.rules) == 4

    def test_dns_fallback(self, net):
        server = self._pac_server(net)
        dns = DnsServer(net.create_host("dns", "lan"))
        dns.add_record("wpad", server.address)
        client = net.create_host("c", "lan")
        dns_client = DnsClient(client, server_address=dns.host.address)
        url = discover_pac_url(client, "lan", dns_client)
        assert url == f"http://{server.address}/wpad.dat"

    def test_no_discovery_path_returns_none(self, net):
        client = net.create_host("c", "lan")
        assert discover_pac_url(client, "lan") is None
        assert autodiscover(client, "lan") is None

    def test_fetch_handles_unreachable_server(self, net):
        client = net.create_host("c", "lan")
        assert fetch_pac(client, "http://10.0.0.99/wpad.dat") is None

    def test_fetch_handles_malformed_pac(self, net):
        self_destruct = self._pac_server(net, body="garbage => => =>")
        client = net.create_host("c", "lan")
        assert fetch_pac(client, f"http://{self_destruct.address}/x") is None

    def test_full_autodiscover(self, net):
        server = self._pac_server(net)
        net.subnets["lan"].dhcp_options[DHCP_PAC_OPTION] = (
            f"http://{server.address}/wpad.dat"
        )
        client = net.create_host("c", "lan")
        pac = autodiscover(client, "lan")
        assert pac.find_proxy_for_url("http://z/", "z") == "PROXY 10.0.0.2:80"
