"""Tests for the flash-crowd scenario driver and the chaos smoke CLI."""

import json

import pytest

from repro.idicn import (
    AdmissionControl,
    FlashCrowdScenario,
    LinkSpec,
    OverloadPolicy,
    run_flash_crowd,
)
from repro.idicn import chaos
from repro.obs import MetricsRegistry

#: Small but busy: enough overlap for coalescing, quick enough for CI.
SMALL = FlashCrowdScenario(
    num_requests=400,
    duration=20.0,
    intensity=20.0,
    max_age=0.5,
    overload=OverloadPolicy(
        queue_capacity=256,
        service_time=0.005,
        admission=AdmissionControl(stale_depth=6, shed_depth=40,
                                   retry_after=5.0),
        link=LinkSpec(latency=0.002, bandwidth=1_000_000),
        rp_cache_capacity=16,
    ),
)


class TestScenarioValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            FlashCrowdScenario(num_domains=0)
        with pytest.raises(ValueError):
            FlashCrowdScenario(shed_retries=-1)
        with pytest.raises(ValueError):
            FlashCrowdScenario(content_bytes=0)


class TestRunFlashCrowd:
    def test_every_request_classified_exactly_once(self):
        result = run_flash_crowd(SMALL)
        assert result.completed == result.num_requests == 400
        assert len(result.latencies) == 400
        assert result.ok > 0
        assert result.events_run >= 400

    def test_two_runs_are_byte_identical(self):
        registries = []
        results = []
        for _ in range(2):
            registry = MetricsRegistry()
            results.append(run_flash_crowd(SMALL, registry=registry))
            registries.append(registry)
        assert registries[0].to_json() == registries[1].to_json()
        assert results[0].to_dict() == results[1].to_dict()
        assert results[0].latencies == results[1].latencies

    def test_registry_does_not_change_outcomes(self):
        bare = run_flash_crowd(SMALL)
        observed = run_flash_crowd(SMALL, registry=MetricsRegistry())
        assert bare.to_dict() == observed.to_dict()

    def test_different_seeds_differ(self):
        a = run_flash_crowd(SMALL)
        b = run_flash_crowd(SMALL, seed=99)
        assert a.to_dict() != b.to_dict()

    def test_coalescing_reduces_upstream_load(self):
        on = run_flash_crowd(SMALL)
        off = run_flash_crowd(
            FlashCrowdScenario(
                **{**SMALL.__dict__,
                   "overload": OverloadPolicy(
                       coalesce=False,
                       queue_capacity=256,
                       service_time=0.005,
                       admission=AdmissionControl(
                           stale_depth=6, shed_depth=40, retry_after=5.0
                       ),
                       link=LinkSpec(latency=0.002, bandwidth=1_000_000),
                       rp_cache_capacity=16,
                   )}
            )
        )
        assert on.coalesced > 0
        assert off.coalesced == 0
        assert on.upstream_requests < off.upstream_requests

    def test_direct_mode_bears_the_crowd_at_the_provider(self):
        edge = run_flash_crowd(SMALL)
        direct = run_flash_crowd(
            FlashCrowdScenario(**{**SMALL.__dict__, "direct": True})
        )
        # Without edge proxies, every served request reaches the
        # reverse proxy.
        assert direct.upstream_requests > edge.upstream_requests
        assert direct.proxy_hits == 0 and direct.proxy_misses == 0

    def test_faults_compose_with_overload(self):
        result = run_flash_crowd(
            FlashCrowdScenario(**{**SMALL.__dict__, "error_rate": 0.2})
        )
        assert result.injected_faults > 0
        assert result.completed == result.num_requests
        # Failures during the burst exercise the failover stale rung
        # and/or negative coalescing, not just hard failures.
        assert result.stale_failover + result.negative_coalesced > 0

    def test_shed_retries_displace_load(self):
        harsh = OverloadPolicy(
            queue_capacity=256,
            service_time=0.02,
            admission=AdmissionControl(stale_depth=2, shed_depth=6,
                                       retry_after=5.0),
            link=LinkSpec(latency=0.002, bandwidth=1_000_000),
            rp_cache_capacity=16,
        )
        none = run_flash_crowd(
            FlashCrowdScenario(**{**SMALL.__dict__, "shed_retries": 0,
                                  "overload": harsh})
        )
        some = run_flash_crowd(
            FlashCrowdScenario(**{**SMALL.__dict__, "shed_retries": 2,
                                  "overload": harsh})
        )
        assert none.shed > 0
        # Honouring Retry-After converts final sheds into retries.
        assert some.retried > 0
        assert some.shed <= none.shed


class TestChaosSmoke:
    def test_invariant_checker_catches_violations(self):
        good = run_flash_crowd(SMALL)
        problems = chaos.check_invariants(good)
        # The small scenario has no faults, so that invariant fires;
        # accounting must hold regardless.
        assert any("fault" in p for p in problems)
        assert not any("classified" in p for p in problems)

    def test_cli_runs_green_and_writes_artifacts(self, tmp_path, capsys):
        exit_code = chaos.main(["--out", str(tmp_path)])
        assert exit_code == 0
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["schema"] == "chaos_smoke/v1"
        assert summary["problems"] == []
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics  # the registry snapshot is non-empty
        out = capsys.readouterr().out
        assert "invariants" in out
