"""Failure-injection tests: the deployment under partial outages.

idICN's deployability story depends on graceful degradation: an AD's
proxy keeps serving cached content when the backbone is unreachable,
clients fall back across mirrors, and nothing crashes when a component
goes dark mid-flight.
"""

import pytest

from repro.idicn import (
    Browser,
    HostDownError,
    build_deployment,
)


@pytest.fixture
def deployment():
    d = build_deployment(num_domains=1, browsers_per_domain=1)
    d.providers[0].publish("page", b"the content")
    return d


def _domain_of(deployment):
    return deployment.providers[0].reverse_proxy.published["page"].domain


class TestResolverOutage:
    def test_cold_fetch_fails_cleanly(self, deployment):
        deployment.net.set_online(deployment.resolver.host, False)
        browser = deployment.domains[0].browsers[0]
        response = browser.get(f"http://{_domain_of(deployment)}/")
        assert response.status == 502

    def test_warm_content_survives_resolver_outage(self, deployment):
        browser = deployment.domains[0].browsers[0]
        url = f"http://{_domain_of(deployment)}/"
        assert browser.get(url).ok  # warm the proxy
        deployment.net.set_online(deployment.resolver.host, False)
        response = browser.get(url)
        assert response.ok and response.body == b"the content"

    def test_recovery_after_heal(self, deployment):
        deployment.net.set_online(deployment.resolver.host, False)
        browser = deployment.domains[0].browsers[0]
        url = f"http://{_domain_of(deployment)}/"
        assert browser.get(url).status == 502
        deployment.net.set_online(deployment.resolver.host, True)
        assert browser.get(url).ok


class TestReverseProxyOutage:
    def test_cold_fetch_502(self, deployment):
        reverse = deployment.providers[0].reverse_proxy
        deployment.net.set_online(reverse.host, False)
        browser = deployment.domains[0].browsers[0]
        assert browser.get(f"http://{_domain_of(deployment)}/").status == 502

    def test_origin_outage_invisible_when_reverse_proxy_cached(
        self, deployment
    ):
        origin = deployment.providers[0].origin
        deployment.net.set_online(origin.host, False)
        browser = deployment.domains[0].browsers[0]
        # The reverse proxy cached the content at publish time.
        assert browser.get(f"http://{_domain_of(deployment)}/").ok


class TestProxyOutage:
    def test_browser_reports_unreachable_proxy(self, deployment):
        proxy = deployment.domains[0].proxy
        deployment.net.set_online(proxy.host, False)
        browser = deployment.domains[0].browsers[0]
        response = browser.get(f"http://{_domain_of(deployment)}/")
        assert response.status == 502

    def test_direct_fetch_still_works_without_pac(self, deployment):
        # A browser with no PAC talks straight to the reverse proxy's
        # registered DNS name — the paper's legacy-client path.
        net = deployment.net
        host = net.create_host("legacy-client", "backbone")
        browser = Browser(host, "backbone",
                          dns=deployment.dns_client(host))
        response = browser.get(f"http://{_domain_of(deployment)}/")
        assert response.ok


class TestPartitionSemantics:
    def test_offline_source_cannot_send(self, deployment):
        browser = deployment.domains[0].browsers[0]
        deployment.net.set_online(browser.host, False)
        with pytest.raises(HostDownError):
            browser.host.call("10.0.0.1", 80, None)
