"""Tests for the pure-Python RSA implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idicn import PublicKey, generate_keypair, sign, verify

KEY = generate_keypair(bits=256, seed=1)
OTHER = generate_keypair(bits=256, seed=2)


class TestKeygen:
    def test_deterministic_given_seed(self):
        a = generate_keypair(bits=256, seed=9)
        b = generate_keypair(bits=256, seed=9)
        assert a.public == b.public
        assert a.d == b.d

    def test_distinct_seeds_give_distinct_keys(self):
        assert KEY.public != OTHER.public

    def test_modulus_size(self):
        assert KEY.n.bit_length() >= 250

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=64)

    def test_rsa_identity_holds(self):
        # (m^d)^e == m mod n for a sample message.
        m = 123456789
        assert pow(pow(m, KEY.d, KEY.n), KEY.public.e, KEY.n) == m


class TestSerialization:
    def test_roundtrip(self):
        data = KEY.public.to_bytes()
        assert PublicKey.from_bytes(data) == KEY.public

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            PublicKey.from_bytes(b"dsa:ff:03")

    def test_fingerprint_is_stable_hex(self):
        fp = KEY.public.fingerprint()
        assert len(fp) == 64
        int(fp, 16)
        assert fp == KEY.public.fingerprint()


class TestSignVerify:
    def test_roundtrip(self):
        signature = sign(b"content", KEY)
        assert verify(b"content", signature, KEY.public)

    def test_tampered_content_rejected(self):
        signature = sign(b"content", KEY)
        assert not verify(b"Content", signature, KEY.public)

    def test_wrong_key_rejected(self):
        signature = sign(b"content", KEY)
        assert not verify(b"content", signature, OTHER.public)

    def test_garbage_signature_rejected(self):
        assert not verify(b"content", "zzz-not-hex", KEY.public)
        assert not verify(b"content", "", KEY.public)

    def test_out_of_range_signature_rejected(self):
        too_big = format(KEY.n + 5, "x")
        assert not verify(b"content", too_big, KEY.public)


@settings(max_examples=25, deadline=None)
@given(message=st.binary(max_size=256))
def test_sign_verify_property(message):
    signature = sign(message, KEY)
    assert verify(message, signature, KEY.public)
    assert not verify(message + b"x", signature, KEY.public)
