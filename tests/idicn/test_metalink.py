"""Tests for Metalink metadata generation and verification."""

import dataclasses

import pytest

from repro.idicn import (
    Metalink,
    build_metalink,
    generate_keypair,
    make_name,
    verify_metalink,
)

KEY = generate_keypair(bits=256, seed=5)
OTHER = generate_keypair(bits=256, seed=6)
NAME = make_name("report", KEY.public)
CONTENT = b"the quarterly report body"


@pytest.fixture
def metalink():
    return build_metalink(NAME, CONTENT, KEY, mirrors=("http://m1/x",
                                                       "http://m2/x"))


class TestBuild:
    def test_fields(self, metalink):
        assert metalink.name == NAME.flat
        assert metalink.size == len(CONTENT)
        assert metalink.mirrors == ("http://m1/x", "http://m2/x")

    def test_verifies(self, metalink):
        assert verify_metalink(metalink, CONTENT)


class TestXmlRoundtrip:
    def test_roundtrip_preserves_everything(self, metalink):
        parsed = Metalink.from_xml(metalink.to_xml())
        assert parsed == metalink

    def test_mirror_priorities_preserved_in_order(self, metalink):
        parsed = Metalink.from_xml(metalink.to_xml())
        assert parsed.mirrors == metalink.mirrors

    def test_malformed_xml_rejected(self):
        with pytest.raises(ValueError):
            Metalink.from_xml("<not-closed")

    def test_missing_file_element_rejected(self):
        with pytest.raises(ValueError):
            Metalink.from_xml("<metalink xmlns='urn:ietf:params:xml:ns:metalink'/>")

    def test_missing_hash_rejected(self, metalink):
        xml = metalink.to_xml().replace("hash", "hsah")
        with pytest.raises(ValueError):
            Metalink.from_xml(xml)


class TestVerification:
    def test_tampered_content_rejected(self, metalink):
        assert not verify_metalink(metalink, CONTENT + b"!")

    def test_tampered_hash_rejected(self, metalink):
        forged = dataclasses.replace(metalink, content_hash="00" * 32)
        assert not verify_metalink(forged, CONTENT)

    def test_resigned_by_other_key_rejected(self):
        # An attacker re-signs modified content with their own key; the
        # metalink self-verifies but the key no longer binds to the name
        # (checked by name_matches_key at the proxy/client).
        from repro.idicn import name_matches_key

        forged = build_metalink(NAME, b"evil content", OTHER)
        assert verify_metalink(forged, b"evil content")
        assert not name_matches_key(NAME, OTHER.public)

    def test_garbage_key_rejected(self, metalink):
        forged = dataclasses.replace(metalink, publisher_key="not a key")
        assert not verify_metalink(forged, CONTENT)

    def test_signature_covers_name(self, metalink):
        renamed = dataclasses.replace(metalink, name="other." + NAME.principal)
        assert not verify_metalink(renamed, CONTENT)
