"""Tests for the origin server, reverse proxy, and edge proxy."""

import dataclasses

import pytest

from repro.idicn import (
    EdgeProxy,
    Metalink,
    NameResolutionSystem,
    OriginServer,
    ResolutionClient,
    ReverseProxy,
    SimNet,
    generate_keypair,
    make_name,
)
from repro.idicn.http import HttpRequest, get, ok
from repro.idicn.metalink import METALINK_HEADER
from repro.idicn.simnet import HTTP_PORT

KEY = generate_keypair(bits=256, seed=10)


@pytest.fixture
def world():
    net = SimNet()
    net.create_subnet("net", "10.0.0")
    origin = OriginServer(net.create_host("origin", "net"))
    resolver = NameResolutionSystem(net.create_host("nrs", "net"))
    rp_host = net.create_host("rp", "net")
    reverse = ReverseProxy(
        rp_host,
        origin_address=origin.host.address,
        keypair=KEY,
        resolver=ResolutionClient(rp_host, resolver.host.address),
    )
    proxy_host = net.create_host("proxy", "net")
    proxy = EdgeProxy(
        proxy_host,
        resolver=ResolutionClient(proxy_host, resolver.host.address),
        capacity=8,
    )
    client = net.create_host("client", "net")
    return net, origin, resolver, reverse, proxy, client


class TestOriginServer:
    def test_serves_stored_content(self, world):
        net, origin, *_, client = world
        origin.store("page", b"content bytes")
        response = client.call(origin.host.address, HTTP_PORT,
                               get("http://origin/page"))
        assert response.ok and response.body == b"content bytes"
        assert origin.requests_served == 1
        assert origin.labels() == ("page",)

    def test_404_for_unknown_label(self, world):
        net, origin, *_, client = world
        response = client.call(origin.host.address, HTTP_PORT,
                               get("http://origin/none"))
        assert response.status == 404

    def test_405_for_post(self, world):
        net, origin, *_, client = world
        response = client.call(
            origin.host.address, HTTP_PORT,
            HttpRequest("POST", "http://origin/x"),
        )
        assert response.status == 405

    def test_range_request(self, world):
        net, origin, *_, client = world
        origin.store("blob", b"0123456789")
        response = client.call(
            origin.host.address, HTTP_PORT,
            HttpRequest("GET", "http://origin/blob",
                        headers={"range": "bytes=3-5"}),
        )
        assert response.status == 206
        assert response.body == b"345"


class TestReverseProxy:
    def test_publish_registers_and_caches(self, world):
        net, origin, resolver, reverse, proxy, client = world
        origin.store("doc", b"abc")
        name = reverse.publish("doc")
        assert name.label == "doc"
        assert resolver.registrations == 1
        assert reverse.origin_fetches == 1
        # Serving a published name does not touch the origin again.
        response = client.call(reverse.host.address, HTTP_PORT,
                               get(f"http://rp/{name.flat}"))
        assert response.ok
        assert reverse.origin_fetches == 1

    def test_publish_missing_label_raises(self, world):
        *_, reverse, proxy, client = world[1:]
        with pytest.raises(LookupError):
            world[3].publish("ghost")

    def test_response_carries_verifiable_metalink(self, world):
        net, origin, _, reverse, _, client = world
        origin.store("doc", b"abc")
        name = reverse.publish("doc")
        response = client.call(reverse.host.address, HTTP_PORT,
                               get(f"http://rp/{name.flat}"))
        metalink = Metalink.from_xml(response.header(METALINK_HEADER))
        assert metalink.name == name.flat
        assert metalink.size == 3

    def test_invalidate_forces_origin_refetch(self, world):
        net, origin, _, reverse, _, client = world
        origin.store("doc", b"v1")
        name = reverse.publish("doc")
        origin.store("doc", b"v2")
        reverse.invalidate("doc")
        response = client.call(reverse.host.address, HTTP_PORT,
                               get(f"http://rp/{name.flat}"))
        assert response.body == b"v2"
        assert reverse.origin_fetches == 2

    def test_unknown_name_is_404(self, world):
        net, _, _, reverse, _, client = world
        response = client.call(reverse.host.address, HTTP_PORT,
                               get("http://rp/ghost.aa"))
        assert response.status == 404


class TestEdgeProxy:
    def _publish(self, world, label="doc", content=b"the content"):
        net, origin, _, reverse, proxy, client = world
        origin.store(label, content)
        return reverse.publish(label)

    def test_miss_then_hit(self, world):
        net, _, _, _, proxy, client = world
        name = self._publish(world)
        url = f"http://{name.domain}/"
        first = client.call(proxy.host.address, HTTP_PORT, get(url))
        second = client.call(proxy.host.address, HTTP_PORT, get(url))
        assert first.ok and second.ok
        assert proxy.misses == 1 and proxy.hits == 1
        assert proxy.cached_objects == 1

    def test_verification_rejects_tampered_reverse_proxy(self, world):
        net, origin, resolver, reverse, proxy, client = world
        name = self._publish(world)
        # A man-in-the-middle reverse proxy serving tampered bytes.
        evil = net.create_host("evil", "net")

        def tampered(host, src, request):
            flat = request.path.lstrip("/")
            content, metalink = reverse._cache[flat]
            return ok(content + b"!", headers={
                METALINK_HEADER: metalink.to_xml()
            })

        evil.bind(HTTP_PORT, tampered)
        # Poison the resolver-side location by registering the evil host
        # first in line (same key, so registration is accepted).
        client_stub = ResolutionClient(reverse.host, resolver.host.address)
        client_stub.register(
            name, (f"http://{evil.address}/{name.flat}",), KEY
        )
        response = client.call(
            proxy.host.address, HTTP_PORT, get(f"http://{name.domain}/")
        )
        assert response.status == 502
        assert proxy.verification_failures == 1

    def test_mirror_fallback_after_primary_dies(self, world):
        net, origin, resolver, reverse, proxy, client = world
        # Mirror host serving the same signed content.
        mirror = net.create_host("mirror", "net")
        origin.store("doc", b"bytes")
        reverse.mirrors = ()
        name = reverse.publish("doc")
        content, metalink = reverse._cache[name.flat]
        with_mirror = dataclasses.replace(
            metalink, mirrors=(f"http://{mirror.address}/{name.flat}",)
        )
        reverse._cache[name.flat] = (content, with_mirror)
        mirror.bind(
            HTTP_PORT,
            lambda h, s, r: ok(content, headers={
                METALINK_HEADER: with_mirror.to_xml()
            }),
        )
        # Warm the proxy's mirror knowledge then kill the reverse proxy.
        first = client.call(proxy.host.address, HTTP_PORT,
                            get(f"http://{name.domain}/"))
        assert first.ok

    def test_unresolvable_name_is_502(self, world):
        net, *_, proxy, client = world
        fake = make_name("ghost", KEY.public)
        response = client.call(proxy.host.address, HTTP_PORT,
                               get(f"http://{fake.domain}/"))
        assert response.status == 502

    def test_legacy_domain_proxied_via_dns(self, world):
        net, origin, resolver, reverse, _, client = world
        from repro.idicn import DnsClient, DnsServer

        dns = DnsServer(net.create_host("dns", "net"))
        legacy = net.create_host("legacy", "net")
        legacy.bind(HTTP_PORT, lambda h, s, r: ok(b"legacy body"))
        dns.add_record("old.example", legacy.address)
        proxy_host = net.create_host("proxy2", "net")
        proxy = EdgeProxy(
            proxy_host,
            resolver=ResolutionClient(proxy_host, resolver.host.address),
            dns=DnsClient(proxy_host, server_address=dns.host.address),
        )
        response = client.call(proxy.host.address, HTTP_PORT,
                               get("http://old.example/index"))
        assert response.ok and response.body == b"legacy body"
        # Second request is a cache hit, no upstream fetch.
        client.call(proxy.host.address, HTTP_PORT, get("http://old.example/index"))
        assert proxy.hits == 1

    def test_legacy_unresolvable_is_502(self, world):
        net, _, resolver, _, proxy, client = world
        response = client.call(proxy.host.address, HTTP_PORT,
                               get("http://nowhere.example/"))
        assert response.status == 502

    def test_range_served_from_proxy_cache(self, world):
        net, *_, proxy, client = world
        name = self._publish(world, content=b"0123456789")
        url = f"http://{name.domain}/"
        client.call(proxy.host.address, HTTP_PORT, get(url))
        response = client.call(
            proxy.host.address, HTTP_PORT,
            HttpRequest("GET", url, headers={"range": "bytes=2-4"}),
        )
        assert response.status == 206 and response.body == b"234"

    def test_lru_eviction_bounds_proxy_storage(self, world):
        net, origin, resolver, reverse, _, client = world
        proxy_host = net.create_host("tiny-proxy", "net")
        proxy = EdgeProxy(
            proxy_host,
            resolver=ResolutionClient(proxy_host, resolver.host.address),
            capacity=2,
        )
        for i in range(4):
            origin.store(f"obj{i}", f"content {i}".encode())
            name = reverse.publish(f"obj{i}")
            client.call(proxy.host.address, HTTP_PORT,
                        get(f"http://{name.domain}/"))
        assert proxy.cached_objects == 2
        assert len(proxy._store) == 2
