"""Tests for the simulated network fabric."""

import pytest

from repro.idicn import (
    AddressInUseError,
    HostDownError,
    NoRouteError,
    NoServiceError,
    SimNet,
    SimNetError,
)


@pytest.fixture
def net():
    network = SimNet()
    network.create_subnet("lan", "10.0.0")
    return network


class TestTopology:
    def test_dhcp_addresses_are_sequential(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        assert a.address == "10.0.0.1"
        assert b.address == "10.0.0.2"

    def test_duplicate_names_rejected(self, net):
        net.create_host("a", "lan")
        with pytest.raises(ValueError):
            net.create_host("a", "lan")

    def test_duplicate_subnets_rejected(self, net):
        with pytest.raises(ValueError):
            net.create_subnet("lan", "10.9.9")

    def test_static_address_conflict(self, net):
        a = net.create_host("a")
        b = net.create_host("b")
        net.attach(a, "lan", address="10.0.0.50")
        with pytest.raises(AddressInUseError):
            net.attach(b, "lan", address="10.0.0.50")

    def test_detach_releases_address(self, net):
        a = net.create_host("a", "lan")
        address = a.address
        net.detach(a, "lan")
        assert a.addresses == {}
        b = net.create_host("b")
        net.attach(b, "lan", address=address)  # now free

    def test_multihomed_host(self, net):
        net.create_subnet("wan", "10.1.0")
        a = net.create_host("a", "lan")
        net.attach(a, "wan")
        assert a.address_on("lan") == "10.0.0.1"
        assert a.address_on("wan") == "10.1.0.1"
        with pytest.raises(SimNetError):
            _ = a.address  # ambiguous with two addresses

    def test_dhcp_options(self, net):
        net.subnets["lan"].dhcp_options["pac_url"] = "http://x/p"
        assert net.dhcp_options("lan") == {"pac_url": "http://x/p"}


class TestAddressAllocation:
    def test_dhcp_skips_statically_claimed_address(self, net):
        # Regression: DHCP used to hand out 10.0.0.1 even when a static
        # host already owned it, silently displacing the owner.
        squatter = net.create_host("squatter")
        net.attach(squatter, "lan", address="10.0.0.1")
        a = net.create_host("a", "lan")
        assert a.address == "10.0.0.2"
        assert net.subnets["lan"].hosts["10.0.0.1"] is squatter

    def test_dhcp_skips_a_run_of_claimed_addresses(self, net):
        for i in (1, 2, 3):
            host = net.create_host(f"static{i}")
            net.attach(host, "lan", address=f"10.0.0.{i}")
        a = net.create_host("a", "lan")
        assert a.address == "10.0.0.4"

    def test_each_host_keeps_its_own_address(self, net):
        squatter = net.create_host("squatter")
        net.attach(squatter, "lan", address="10.0.0.1")
        squatter.bind(80, lambda *args: "squatter")
        a = net.create_host("a", "lan")
        a.bind(80, lambda *args: "a")
        probe = net.create_host("probe", "lan")
        assert probe.call("10.0.0.1", 80, "?") == "squatter"
        assert probe.call(a.address, 80, "?") == "a"


class TestMessageCounters:
    def test_delivered_and_failed_split(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        b.bind(80, lambda host, src, payload: "ok")
        a.call(b.address, 80, "x")
        assert (net.messages_attempted, net.messages_delivered,
                net.messages_failed) == (1, 1, 0)
        with pytest.raises(NoRouteError):
            a.call("10.0.0.99", 80, "x")
        assert (net.messages_attempted, net.messages_delivered,
                net.messages_failed) == (2, 1, 1)
        net.set_online(b, False)
        with pytest.raises(HostDownError):
            a.call(b.address, 80, "x")
        assert net.messages_failed == 2

    def test_messages_sent_aliases_attempted(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        b.bind(80, lambda host, src, payload: "ok")
        a.call(b.address, 80, "x")
        with pytest.raises(NoRouteError):
            a.call("10.0.0.99", 80, "x")
        assert net.messages_sent == net.messages_attempted == 2

    def test_handler_exceptions_are_not_network_failures(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")

        def broken(host, src, payload):
            raise RuntimeError("application bug")

        b.bind(80, broken)
        with pytest.raises(RuntimeError):
            a.call(b.address, 80, "x")
        # Application errors surface to the caller, not the counters.
        assert net.messages_failed == 0 and net.messages_delivered == 0


class TestUnicast:
    def test_request_response(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        b.bind(80, lambda host, src, payload: f"echo:{payload} from {src}")
        reply = a.call(b.address, 80, "hi")
        assert reply == "echo:hi from 10.0.0.1"
        assert net.messages_sent == 1

    def test_unknown_address(self, net):
        a = net.create_host("a", "lan")
        with pytest.raises(NoRouteError):
            a.call("10.0.0.99", 80, "x")

    def test_no_service(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        with pytest.raises(NoServiceError):
            a.call(b.address, 80, "x")

    def test_offline_destination(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        b.bind(80, lambda *args: "ok")
        net.set_online(b, False)
        with pytest.raises(HostDownError):
            a.call(b.address, 80, "x")
        net.set_online(b, True)
        assert a.call(b.address, 80, "x") == "ok"

    def test_routed_subnets_reach_each_other(self, net):
        net.create_subnet("wan", "10.1.0")
        a = net.create_host("a", "lan")
        c = net.create_host("c", "wan")
        c.bind(80, lambda host, src, payload: f"from {src}")
        assert a.call(c.address, 80, "x") == "from 10.0.0.1"

    def test_link_local_not_reachable_across_subnets(self, net):
        net.create_subnet("cabin", "link", routed=False)
        a = net.create_host("a", "lan")
        c = net.create_host("c")
        net.attach(c, "cabin", address="169.254.1.1")
        c.bind(80, lambda *args: "ok")
        with pytest.raises(NoRouteError):
            a.call("169.254.1.1", 80, "x")

    def test_link_local_only_host_cannot_reach_routed(self, net):
        net.create_subnet("cabin", "link", routed=False)
        a = net.create_host("a")
        net.attach(a, "cabin", address="169.254.1.1")
        b = net.create_host("b", "lan")
        b.bind(80, lambda *args: "ok")
        with pytest.raises(NoRouteError):
            a.call(b.address, 80, "x")

    def test_unbind(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        b.bind(80, lambda *args: "ok")
        b.unbind(80)
        with pytest.raises(NoServiceError):
            a.call(b.address, 80, "x")


class TestMulticast:
    def test_collects_non_none_replies(self, net):
        a = net.create_host("a", "lan")
        for i in range(3):
            host = net.create_host(f"h{i}", "lan")
            if i < 2:
                host.bind(
                    5353,
                    lambda h, src, q, i=i: f"answer{i}" if q == "q" else None,
                )
        replies = a.multicast("lan", 5353, "q")
        assert [answer for _, answer in replies] == ["answer0", "answer1"]

    def test_sender_excluded(self, net):
        a = net.create_host("a", "lan")
        a.bind(5353, lambda *args: "self")
        assert a.multicast("lan", 5353, "q") == []

    def test_offline_hosts_skipped(self, net):
        a = net.create_host("a", "lan")
        b = net.create_host("b", "lan")
        b.bind(5353, lambda *args: "ok")
        net.set_online(b, False)
        assert a.multicast("lan", 5353, "q") == []

    def test_requires_attachment(self, net):
        net.create_subnet("wan", "10.1.0")
        a = net.create_host("a", "lan")
        with pytest.raises(NoRouteError):
            a.multicast("wan", 5353, "q")
