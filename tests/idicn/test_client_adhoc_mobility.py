"""End-to-end tests: browser, ad hoc sharing, and mobility."""

import numpy as np
import pytest

from repro.idicn import (
    AdHocCacheProxy,
    Browser,
    DnsClient,
    DnsServer,
    MobileServer,
    ResumingDownloader,
    SimNet,
    SimNetError,
    VerificationError,
    build_deployment,
    join_adhoc_network,
)
from repro.idicn.http import ok
from repro.idicn.metalink import METALINK_HEADER
from repro.idicn.simnet import HTTP_PORT


class TestBrowserViaDeployment:
    @pytest.fixture
    def deployment(self):
        return build_deployment(num_domains=1, browsers_per_domain=2)

    def test_wpad_autoconfiguration(self, deployment):
        browser = deployment.domains[0].browsers[0]
        assert browser.pac is not None
        proxy_addr = deployment.domains[0].proxy.host.address_on("ad0")
        assert browser.proxy_for("http://x.idicn.org/") == proxy_addr

    def test_fetch_published_content(self, deployment):
        domain = deployment.providers[0].publish("page", b"body bytes")
        browser = deployment.domains[0].browsers[0]
        response = browser.get(f"http://{domain}/")
        assert response.ok and response.body == b"body bytes"
        assert browser.cached(f"http://{domain}/") == b"body bytes"

    def test_proxy_cache_shared_between_browsers(self, deployment):
        domain = deployment.providers[0].publish("page", b"body")
        a, b = deployment.domains[0].browsers
        a.get(f"http://{domain}/")
        b.get(f"http://{domain}/")
        proxy = deployment.domains[0].proxy
        assert proxy.hits == 1 and proxy.misses == 1

    def test_end_host_verification_accepts_honest_chain(self):
        deployment = build_deployment(verify_at_client=True)
        domain = deployment.providers[0].publish("page", b"body")
        browser = deployment.domains[0].browsers[0]
        assert browser.get(f"http://{domain}/").ok

    def test_end_host_verification_detects_lying_proxy(self):
        deployment = build_deployment(verify_at_client=True)
        domain = deployment.providers[0].publish("page", b"body")
        browser = deployment.domains[0].browsers[0]
        proxy = deployment.domains[0].proxy
        # Corrupt the proxy's stored copy after a first fetch primes it.
        browser.get(f"http://{domain}/")
        import dataclasses

        key = next(iter(proxy._store))
        entry = proxy._store[key]
        proxy._store[key] = dataclasses.replace(entry, body=entry.body + b"!")
        fresh = deployment.net.create_host("fresh-client", "ad0")
        victim = Browser(fresh, "ad0", verify_content=True)
        victim.configure()
        with pytest.raises(VerificationError):
            victim.get(f"http://{domain}/")

    def test_cookies_roundtrip(self, deployment):
        net = deployment.net
        server = net.create_host("cookie-server", "ad0")
        seen = []

        def handler(host, src, request):
            seen.append(request.header("cookie"))
            return ok(b"x", headers={"set-cookie": "session=abc"})

        server.bind(HTTP_PORT, handler)
        browser_host = net.create_host("cookie-client", "ad0")
        browser = Browser(browser_host, "ad0")
        dns = DnsServer(net.create_host("local-dns", "ad0"))
        dns.add_record("cookie.example", server.address_on("ad0"))
        browser.dns = DnsClient(browser_host,
                                server_address=dns.host.address_on("ad0"))
        browser.get("http://cookie.example/")
        browser.get("http://cookie.example/")
        assert seen == [None, "session=abc"]


class TestAdHocSharing:
    """The Alice-and-Bob airplane walkthrough of Section 6.2."""

    @pytest.fixture
    def airplane(self, rng):
        net = SimNet()
        net.create_subnet("cabin", "link")
        alice = join_adhoc_network(net, "alice", "cabin", rng)
        bob = join_adhoc_network(net, "bob", "cabin", rng)
        return net, alice, bob

    def test_alice_shares_her_cache_with_bob(self, airplane, rng):
        net, alice_host, bob_host = airplane
        alice = Browser(alice_host, "cabin")
        # Pretend Alice fetched CNN headlines before boarding.
        alice._cache.insert("http://cnn.example/headlines")
        alice._store["http://cnn.example/headlines"] = (
            "cnn.example", b"<html>headlines</html>", None,
        )
        AdHocCacheProxy(alice, "cabin")
        # Bob resolves cnn.example over mDNS (no DNS server configured).
        bob = Browser(
            bob_host, "cabin",
            dns=DnsClient(bob_host, mdns_subnet="cabin"),
        )
        response = bob.get("http://cnn.example/headlines")
        assert response.ok
        assert response.body == b"<html>headlines</html>"

    def test_uncached_path_is_404(self, airplane):
        net, alice_host, bob_host = airplane
        alice = Browser(alice_host, "cabin")
        alice._cache.insert("http://cnn.example/headlines")
        alice._store["http://cnn.example/headlines"] = (
            "cnn.example", b"x", None,
        )
        AdHocCacheProxy(alice, "cabin")
        bob = Browser(bob_host, "cabin",
                      dns=DnsClient(bob_host, mdns_subnet="cabin"))
        assert bob.get("http://cnn.example/sports").status == 404

    def test_unpublished_domain_unresolvable(self, airplane):
        net, alice_host, bob_host = airplane
        AdHocCacheProxy(Browser(alice_host, "cabin"), "cabin")
        bob = Browser(bob_host, "cabin",
                      dns=DnsClient(bob_host, mdns_subnet="cabin"))
        assert bob.get("http://bbc.example/").status == 502

    def test_refresh_tracks_cache_contents(self, airplane):
        net, alice_host, _ = airplane
        alice = Browser(alice_host, "cabin")
        proxy = AdHocCacheProxy(alice, "cabin")
        assert proxy.refresh() == ()
        alice._cache.insert("http://a.example/1")
        alice._store["http://a.example/1"] = ("a.example", b"x", None)
        assert proxy.refresh() == ("a.example",)

    def test_requires_link_local_address(self):
        net = SimNet()
        net.create_subnet("lan", "10.0.0")
        host = net.create_host("h", "lan")
        with pytest.raises(ValueError):
            AdHocCacheProxy(Browser(host, "lan"), "lan")


class TestMobility:
    @pytest.fixture
    def world(self):
        net = SimNet()
        net.create_subnet("home", "10.0.0")
        net.create_subnet("away", "10.1.0")
        dns_host = net.create_host("dns", "home")
        net.attach(dns_host, "away")
        dns = DnsServer(dns_host)
        server_host = net.create_host("server", "home")
        server = MobileServer(
            net, server_host, "mobile.example",
            DnsClient(server_host,
                      server_address=dns_host.address_on("home")),
            token="tok", subnet="home",
        )
        client_host = net.create_host("client", "home")
        net.attach(client_host, "away")
        client_dns = DnsClient(client_host,
                               server_address=dns_host.address_on("home"))
        return net, dns, server, client_host, client_dns

    def test_download_without_movement(self, world):
        net, dns, server, client_host, client_dns = world
        server.store("file", b"A" * 5000)
        downloader = ResumingDownloader(client_host, client_dns,
                                        chunk_size=512)
        result = downloader.download("mobile.example", "/file")
        assert result.body == b"A" * 5000
        assert result.interruptions == 0

    def test_download_survives_a_move(self, world):
        net, dns, server, client_host, client_dns = world
        payload = bytes(range(256)) * 40
        server.store("file", payload)
        downloader = ResumingDownloader(client_host, client_dns,
                                        chunk_size=1024)
        # Deterministic variant: download half, move, download rest.
        from repro.idicn.http import HttpRequest

        first_half = client_host.call(
            server.host.address_on("home"), HTTP_PORT,
            HttpRequest("GET", "http://mobile.example/file",
                        headers={"range": "bytes=0-999"}),
        )
        assert first_half.status == 206
        server.move("away")
        result = downloader.download("mobile.example", "/file")
        assert result.body == payload

    def test_dynamic_dns_updated_on_move(self, world):
        net, dns, server, client_host, client_dns = world
        old = client_dns.resolve("mobile.example")
        new_address = server.move("away")
        assert client_dns.resolve("mobile.example") == new_address
        assert old != new_address

    def test_session_cookie_survives_move(self, world):
        net, dns, server, client_host, client_dns = world
        server.store("file", b"B" * 3000)
        downloader = ResumingDownloader(client_host, client_dns,
                                        chunk_size=500)
        downloader.download("mobile.example", "/file")
        session = downloader.session_cookie
        assert session is not None
        server.move("away")
        downloader.download("mobile.example", "/file")
        assert downloader.session_cookie == session
        assert server.session_requests(session) > 1

    def test_missing_path_fails(self, world):
        net, dns, server, client_host, client_dns = world
        downloader = ResumingDownloader(client_host, client_dns)
        with pytest.raises(SimNetError):
            downloader.download("mobile.example", "/ghost", max_attempts=2)

    def test_unresolvable_domain_fails(self, world):
        net, dns, server, client_host, client_dns = world
        downloader = ResumingDownloader(client_host, client_dns)
        with pytest.raises(SimNetError):
            downloader.download("ghost.example", "/x", max_attempts=2)
