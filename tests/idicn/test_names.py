"""Tests for self-certifying idICN names."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idicn import (
    FINGERPRINT_CHARS,
    IcnName,
    generate_keypair,
    is_idicn_domain,
    make_name,
    name_matches_key,
    parse_domain,
    principal_of,
)

KEY = generate_keypair(bits=256, seed=3)
OTHER = generate_keypair(bits=256, seed=4)


class TestConstruction:
    def test_make_name(self):
        name = make_name("news", KEY.public)
        assert name.label == "news"
        assert name.principal == principal_of(KEY.public)
        assert len(name.principal) == FINGERPRINT_CHARS

    def test_principal_fits_in_a_dns_label(self):
        # The paper: labels are restricted to 63 characters, so SHA-512
        # sized digests are out; our truncated SHA-256 must fit.
        assert FINGERPRINT_CHARS <= 63

    def test_domain_encoding(self):
        name = make_name("news", KEY.public)
        assert name.domain == f"news.{name.principal}.idicn.org"
        assert name.flat == f"news.{name.principal}"

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            IcnName(label="Has Spaces", principal="a" * FINGERPRINT_CHARS)
        with pytest.raises(ValueError):
            IcnName(label="", principal="a" * FINGERPRINT_CHARS)
        with pytest.raises(ValueError):
            IcnName(label="-leading", principal="a" * FINGERPRINT_CHARS)

    def test_invalid_principal_rejected(self):
        with pytest.raises(ValueError):
            IcnName(label="x", principal="zz")
        with pytest.raises(ValueError):
            IcnName(label="x", principal="G" * FINGERPRINT_CHARS)


class TestParsing:
    def test_roundtrip(self):
        name = make_name("video", KEY.public)
        assert parse_domain(name.domain) == name

    def test_legacy_domain_is_not_idicn(self):
        assert parse_domain("www.cnn.example") is None
        assert not is_idicn_domain("www.cnn.example")

    def test_wrong_suffix(self):
        assert parse_domain(f"x.{'a' * FINGERPRINT_CHARS}.idicn.net") is None

    def test_bad_principal_part(self):
        assert parse_domain("x.nothex.idicn.org") is None

    def test_case_and_trailing_dot_normalized(self):
        name = make_name("video", KEY.public)
        assert parse_domain(name.domain.upper() + ".") == name

    def test_is_idicn_domain(self):
        assert is_idicn_domain(make_name("x", KEY.public).domain)


class TestSelfCertification:
    def test_binding_holds_for_owner(self):
        name = make_name("doc", KEY.public)
        assert name_matches_key(name, KEY.public)

    def test_binding_fails_for_impostor(self):
        name = make_name("doc", KEY.public)
        assert not name_matches_key(name, OTHER.public)


@settings(max_examples=30)
@given(
    label=st.from_regex(r"[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?", fullmatch=True)
)
def test_valid_labels_roundtrip(label):
    name = make_name(label, KEY.public)
    assert parse_domain(name.domain) == name
