"""Tests for the fault-injection plane, retry policies, and failover.

The robustness layer has three contracts worth pinning down: faults are
reproducible (one seed, one byte-identical event log), retries consume
simulated time and stop at their caps, and the degradation paths — PAC
proxy failover, Metalink mirror failover, serve-stale — keep a default
deployment serving through the acceptance scenario of 20% message drops
plus a mid-run proxy crash.
"""

import pytest

from repro.idicn import (
    DroppedMessageError,
    FaultPlane,
    HostDownError,
    InjectedCallError,
    Outage,
    Retrier,
    RetryPolicy,
    SimNet,
    SimNetError,
    build_deployment,
    is_stale,
)


@pytest.fixture
def net():
    network = SimNet()
    network.create_subnet("lan", "10.0.0")
    return network


def echo_pair(net):
    a = net.create_host("a", "lan")
    b = net.create_host("b", "lan")
    b.bind(80, lambda host, src, payload: f"echo:{payload}")
    return a, b


class TestOutages:
    def test_window_is_half_open(self):
        outage = Outage(host="x", start=1.0, end=2.0)
        assert not outage.covers(0.5)
        assert outage.covers(1.0)
        assert outage.covers(1.9)
        assert not outage.covers(2.0)

    def test_scheduled_crash_and_recovery(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.schedule_outage("b", start=0.0, end=5.0)
        with pytest.raises(HostDownError):
            a.call(b.address, 80, "x")
        net.advance(5.0)  # the host comes back
        assert a.call(b.address, 80, "x") == "echo:x"

    def test_outage_not_yet_started(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.schedule_outage("b", start=10.0, end=20.0)
        assert a.call(b.address, 80, "x") == "echo:x"
        net.advance(10.0)
        with pytest.raises(HostDownError):
            a.call(b.address, 80, "x")

    def test_down_source_cannot_send(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.schedule_outage("a", start=0.0, end=1.0)
        with pytest.raises(HostDownError):
            a.call(b.address, 80, "x")

    def test_empty_window_rejected(self, net):
        plane = FaultPlane(net, seed=1)
        with pytest.raises(ValueError):
            plane.schedule_outage("b", start=2.0, end=2.0)


class TestHazards:
    def test_certain_drop(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.set_drop_rate(1.0)
        with pytest.raises(DroppedMessageError):
            a.call(b.address, 80, "x")
        assert plane.drops == 1 and plane.injected_faults == 1
        assert [e.kind for e in plane.events] == ["drop"]
        assert net.messages_failed == 1 and net.messages_delivered == 0

    def test_certain_error(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.set_error_rate(1.0)
        with pytest.raises(InjectedCallError):
            a.call(b.address, 80, "x")
        assert plane.errors == 1
        assert [e.kind for e in plane.events] == ["error"]

    def test_slow_call_advances_clock_but_succeeds(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.set_slow_rate(1.0, delay=2.5)
        assert a.call(b.address, 80, "x") == "echo:x"
        assert net.clock == 2.5
        assert plane.slow_calls == 1 and plane.injected_faults == 0

    def test_per_host_rate_overrides_global(self, net):
        a, b = echo_pair(net)
        c = net.create_host("c", "lan")
        c.bind(80, lambda host, src, payload: "ok")
        plane = FaultPlane(net, seed=1)
        plane.set_drop_rate(1.0, host="b")
        with pytest.raises(DroppedMessageError):
            a.call(b.address, 80, "x")
        assert a.call(c.address, 80, "x") == "ok"  # global rate still 0

    def test_rate_validation(self, net):
        plane = FaultPlane(net, seed=1)
        with pytest.raises(ValueError):
            plane.set_drop_rate(1.5)
        with pytest.raises(ValueError):
            plane.set_error_rate(-0.1)
        with pytest.raises(ValueError):
            plane.set_slow_rate(0.5, delay=-1.0)

    def test_healthy_plane_injects_nothing(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        for i in range(50):
            assert a.call(b.address, 80, i) == f"echo:{i}"
        assert plane.events == [] and plane.injected_faults == 0
        assert net.messages_failed == 0


def _mixed_hazard_run(seed):
    """A fixed scenario under drop/error/slow hazards; returns outcomes."""
    net = SimNet()
    net.create_subnet("lan", "10.0.0")
    a, b = echo_pair(net)
    plane = FaultPlane(net, seed=seed)
    plane.set_drop_rate(0.3)
    plane.set_error_rate(0.2)
    plane.set_slow_rate(0.1, delay=0.5)
    outcomes = []
    for i in range(200):
        try:
            a.call(b.address, 80, i)
            outcomes.append("ok")
        except SimNetError as exc:
            outcomes.append(type(exc).__name__)
    return outcomes, plane


class TestDeterminism:
    def test_same_seed_same_event_log(self):
        outcomes1, plane1 = _mixed_hazard_run(seed=7)
        outcomes2, plane2 = _mixed_hazard_run(seed=7)
        assert outcomes1 == outcomes2
        assert plane1.event_bytes() == plane2.event_bytes()
        assert plane1.signature() == plane2.signature()
        assert (plane1.drops, plane1.errors, plane1.slow_calls) == (
            plane2.drops, plane2.errors, plane2.slow_calls
        )

    def test_different_seed_different_log(self):
        _, plane1 = _mixed_hazard_run(seed=7)
        _, plane2 = _mixed_hazard_run(seed=8)
        assert plane1.signature() != plane2.signature()

    def test_events_are_sequenced(self):
        _, plane = _mixed_hazard_run(seed=7)
        assert plane.events  # the rates make silence effectively impossible
        assert [e.seq for e in plane.events] == list(range(len(plane.events)))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(budget=-1.0)

    def test_backoff_grows_exponentially_without_jitter(self):
        import numpy as np

        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert [policy.backoff_delay(i, rng) for i in range(3)] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)
        ]

    def test_jitter_stays_within_band(self):
        import numpy as np

        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        rng = np.random.default_rng(3)
        for _ in range(100):
            assert 0.75 <= policy.backoff_delay(0, rng) <= 1.25


class TestRetrier:
    def test_null_policy_is_single_attempt(self, net):
        a, _ = echo_pair(net)
        retrier = Retrier(None)
        with pytest.raises(SimNetError):
            retrier.call(a, "10.0.0.99", 80, "x")
        assert net.messages_attempted == 1
        assert retrier.retries == 0

    def test_backoff_rides_out_an_outage(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.schedule_outage("b", start=0.0, end=0.1)
        retrier = Retrier(RetryPolicy(max_attempts=3, base_delay=0.2,
                                      jitter=0.0))
        assert retrier.call(a, b.address, 80, "x") == "echo:x"
        assert retrier.retries == 1 and retrier.giveups == 0
        assert net.clock == pytest.approx(0.2)

    def test_exhausts_attempts_and_reraises(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.set_drop_rate(1.0)
        retrier = Retrier(RetryPolicy(max_attempts=3, base_delay=0.1,
                                      multiplier=2.0, jitter=0.0))
        with pytest.raises(DroppedMessageError):
            retrier.call(a, b.address, 80, "x")
        assert net.messages_attempted == 3
        assert retrier.retries == 2 and retrier.giveups == 1
        # Backoff consumed simulated time: 0.1 + 0.2.
        assert net.clock == pytest.approx(0.3)

    def test_budget_caps_backoff(self, net):
        a, b = echo_pair(net)
        plane = FaultPlane(net, seed=1)
        plane.set_drop_rate(1.0)
        retrier = Retrier(RetryPolicy(max_attempts=5, base_delay=0.5,
                                      jitter=0.0, budget=0.0))
        with pytest.raises(DroppedMessageError):
            retrier.call(a, b.address, 80, "x")
        assert net.messages_attempted == 1  # first delay blows the budget
        assert retrier.retries == 0 and retrier.giveups == 1


class TestDeploymentDegradation:
    def _deployment(self, **kwargs):
        kwargs.setdefault("retry_policy",
                          RetryPolicy(max_attempts=3, base_delay=0.01,
                                      jitter=0.0))
        d = build_deployment(**kwargs)
        d.providers[0].publish("page", b"the content")
        return d

    def _url(self, deployment):
        record = deployment.providers[0].reverse_proxy.published["page"]
        return f"http://{record.domain}/"

    def test_zero_retries_when_healthy(self):
        deployment = self._deployment(proxies_per_domain=2)
        browser = deployment.domains[0].browsers[0]
        assert browser.get(self._url(deployment)).ok
        assert browser.retries == 0 and browser.failovers == 0
        assert all(p.retries == 0 for p in deployment.domains[0].proxies)
        assert deployment.net.messages_failed == 0

    def test_pac_failover_to_backup_proxy(self):
        deployment = self._deployment(proxies_per_domain=2)
        domain = deployment.domains[0]
        deployment.net.set_online(domain.proxy.host, False)
        browser = domain.browsers[0]
        response = browser.get(self._url(deployment))
        assert response.ok and response.body == b"the content"
        assert browser.failovers == 1
        assert domain.proxies[1].misses == 1  # the backup actually served

    def test_direct_fallback_when_every_proxy_down(self):
        deployment = self._deployment(proxies_per_domain=2)
        domain = deployment.domains[0]
        for proxy in domain.proxies:
            deployment.net.set_online(proxy.host, False)
        browser = domain.browsers[0]
        # The PAC chain ends in DIRECT: resolve via DNS, fetch from the
        # reverse proxy itself.
        response = browser.get(self._url(deployment))
        assert response.ok and response.body == b"the content"
        assert browser.failovers == 2

    def test_all_candidates_down_is_502(self):
        deployment = self._deployment(proxies_per_domain=2)
        domain = deployment.domains[0]
        for proxy in domain.proxies:
            deployment.net.set_online(proxy.host, False)
        deployment.net.set_online(
            deployment.providers[0].reverse_proxy.host, False
        )
        deployment.net.set_online(deployment.dns_server.host, False)
        response = domain.browsers[0].get(self._url(deployment))
        assert response.status == 502

    def test_stale_response_carries_warning(self):
        # Cold-start a deployment whose provider sets a freshness
        # lifetime, expire the proxy copy, then cut the backbone.
        deployment = self._deployment()
        reverse = deployment.providers[0].reverse_proxy
        reverse.max_age = 60.0
        deployment.providers[0].publish("fresh", b"v1")
        record = reverse.published["fresh"]
        browser = deployment.domains[0].browsers[0]
        url = f"http://{record.domain}/"
        assert not is_stale(browser.get(url))
        deployment.net.advance(120.0)  # past max-age
        deployment.net.set_online(reverse.host, False)
        response = browser.get(url)
        assert response.ok and response.body == b"v1"
        assert is_stale(response)
        assert deployment.domains[0].proxy.stale_served == 1


class TestAcceptanceScenario:
    """ISSUE acceptance: 20% drops + a mid-run proxy crash, every GET ok."""

    def test_gets_succeed_under_drops_and_proxy_crash(self):
        deployment = build_deployment(
            proxies_per_domain=2,
            retry_policy=RetryPolicy(),  # the default policy must suffice
        )
        provider = deployment.providers[0]
        urls = [
            f"http://{provider.publish(f'obj{i}', b'payload %d' % i)}/"
            for i in range(6)
        ]
        plane = FaultPlane(deployment.net, seed=2013)
        plane.set_drop_rate(0.2)
        domain = deployment.domains[0]
        browser = domain.browsers[0]
        for url in urls[:3]:
            response = browser.get(url)
            assert response.ok, url
        # Mid-run, the primary proxy crashes for a long window.
        crash_at = deployment.net.clock
        plane.schedule_outage(domain.proxy.host.name, crash_at,
                              crash_at + 1e6)
        for url in urls[3:]:
            response = browser.get(url)
            assert response.ok, url
        # The backup proxy (or DIRECT) picked up the load.
        assert browser.failovers > 0
        # Drops really happened and were retried through.
        assert plane.drops > 0
        assert deployment.net.messages_failed > 0

    def test_acceptance_run_is_reproducible(self):
        def run():
            deployment = build_deployment(
                proxies_per_domain=2, retry_policy=RetryPolicy()
            )
            provider = deployment.providers[0]
            urls = [
                f"http://{provider.publish(f'obj{i}', b'x%d' % i)}/"
                for i in range(4)
            ]
            plane = FaultPlane(deployment.net, seed=99)
            plane.set_drop_rate(0.2)
            plane.set_slow_rate(0.1, delay=0.2)
            browser = deployment.domains[0].browsers[0]
            statuses = [browser.get(url).status for url in urls]
            return statuses, plane.signature(), (
                deployment.net.messages_attempted,
                deployment.net.messages_delivered,
                deployment.net.messages_failed,
            )

        assert run() == run()
