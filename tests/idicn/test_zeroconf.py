"""Tests for link-local addressing and mDNS."""

import numpy as np
import pytest

from repro.idicn import (
    AddressInUseError,
    DnsQuery,
    MdnsResponder,
    SimNet,
    claim_link_local_address,
    is_link_local,
    mdns_resolve,
)


@pytest.fixture
def net():
    network = SimNet()
    network.create_subnet("adhoc", "link")
    return network


class TestLinkLocal:
    def test_claims_an_address_in_range(self, net, rng):
        host = net.create_host("a")
        address = claim_link_local_address(host, "adhoc", rng)
        assert is_link_local(address)
        assert host.address_on("adhoc") == address

    def test_many_hosts_get_distinct_addresses(self, net, rng):
        addresses = set()
        for i in range(20):
            host = net.create_host(f"h{i}")
            addresses.add(claim_link_local_address(host, "adhoc", rng))
        assert len(addresses) == 20

    def test_conflict_probing_retries(self, net):
        # Two hosts with the same RNG seed draw the same candidates:
        # the second must detect the conflict and move on.
        a = net.create_host("a")
        b = net.create_host("b")
        addr_a = claim_link_local_address(a, "adhoc", np.random.default_rng(0))
        addr_b = claim_link_local_address(b, "adhoc", np.random.default_rng(0))
        assert addr_a != addr_b

    def test_exhausted_attempts_raise(self, net):
        a = net.create_host("a")
        claim_link_local_address(a, "adhoc", np.random.default_rng(1))
        b = net.create_host("b")
        with pytest.raises(AddressInUseError):
            # Same seed and only one attempt: guaranteed collision.
            claim_link_local_address(
                b, "adhoc", np.random.default_rng(1), max_attempts=1
            )

    def test_is_link_local(self):
        assert is_link_local("169.254.1.2")
        assert not is_link_local("10.0.0.1")
        assert not is_link_local("169.2540.1.2")


class TestMdns:
    def test_publish_and_resolve(self, net, rng):
        alice = net.create_host("alice")
        bob = net.create_host("bob")
        addr = claim_link_local_address(alice, "adhoc", rng)
        claim_link_local_address(bob, "adhoc", rng)
        responder = MdnsResponder(alice, "adhoc")
        responder.publish("cnn.example")
        assert mdns_resolve(bob, "adhoc", "cnn.example") == addr
        assert responder.answered == 1

    def test_unknown_name_unresolved(self, net, rng):
        alice = net.create_host("alice")
        bob = net.create_host("bob")
        claim_link_local_address(alice, "adhoc", rng)
        claim_link_local_address(bob, "adhoc", rng)
        MdnsResponder(alice, "adhoc").publish("cnn.example")
        assert mdns_resolve(bob, "adhoc", "bbc.example") is None

    def test_withdraw(self, net, rng):
        alice = net.create_host("alice")
        bob = net.create_host("bob")
        claim_link_local_address(alice, "adhoc", rng)
        claim_link_local_address(bob, "adhoc", rng)
        responder = MdnsResponder(alice, "adhoc")
        responder.publish("cnn.example")
        responder.withdraw("cnn.example")
        assert mdns_resolve(bob, "adhoc", "cnn.example") is None
        assert responder.published_names == ()

    def test_first_responder_wins_on_duplicates(self, net, rng):
        # The paper's noted limitation: only one publisher per domain
        # is visible to a querier.
        hosts = []
        for name in ("alice", "carol"):
            host = net.create_host(name)
            claim_link_local_address(host, "adhoc", rng)
            MdnsResponder(host, "adhoc").publish("cnn.example")
            hosts.append(host)
        bob = net.create_host("bob")
        claim_link_local_address(bob, "adhoc", rng)
        answer = mdns_resolve(bob, "adhoc", "cnn.example")
        assert answer in {h.address_on("adhoc") for h in hosts}

    def test_non_dns_payload_ignored(self, net, rng):
        alice = net.create_host("alice")
        bob = net.create_host("bob")
        claim_link_local_address(alice, "adhoc", rng)
        claim_link_local_address(bob, "adhoc", rng)
        MdnsResponder(alice, "adhoc").publish("x")
        replies = bob.multicast("adhoc", 5353, "not a query")
        assert replies == []

    def test_query_object(self):
        assert DnsQuery(name="x").name == "x"
