"""Tests for the event-driven layer: scheduler, links, bounded queues."""

import pytest

from repro.idicn import (
    EventScheduler,
    HostQueue,
    LinkSpec,
    QueueOverflowError,
    SimNet,
)
from repro.idicn.simnet import HTTP_PORT
from repro.obs import MetricsRegistry


@pytest.fixture
def net():
    network = SimNet()
    network.create_subnet("lan", "10.0.0")
    return network


class TestEventScheduler:
    def test_events_fire_in_time_order(self, net):
        scheduler = EventScheduler(net)
        fired = []
        scheduler.at(2.0, lambda: fired.append("late"))
        scheduler.at(1.0, lambda: fired.append("early"))
        scheduler.at(3.0, lambda: fired.append("last"))
        assert scheduler.run() == 3
        assert fired == ["early", "late", "last"]

    def test_ties_break_by_insertion_order(self, net):
        scheduler = EventScheduler(net)
        fired = []
        for label in ("a", "b", "c"):
            scheduler.at(1.0, lambda label=label: fired.append(label))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_monotonically(self, net):
        scheduler = EventScheduler(net)
        net.clock = 5.0
        seen = []
        scheduler.at(1.0, lambda: seen.append(net.clock))
        scheduler.at(9.0, lambda: seen.append(net.clock))
        scheduler.run()
        # A late-fired early event must not rewind the clock.
        assert seen == [5.0, 9.0]

    def test_after_is_relative_to_current_clock(self, net):
        scheduler = EventScheduler(net)
        net.clock = 10.0
        fired = []
        scheduler.after(2.5, lambda: fired.append(net.clock))
        scheduler.run()
        assert fired == [12.5]

    def test_actions_can_reschedule(self, net):
        scheduler = EventScheduler(net)
        fired = []

        def chain():
            fired.append(net.clock)
            if len(fired) < 3:
                scheduler.after(1.0, chain)

        scheduler.at(0.0, chain)
        assert scheduler.run() == 3
        assert fired == [0.0, 1.0, 2.0]

    def test_run_until_leaves_later_events_pending(self, net):
        scheduler = EventScheduler(net)
        fired = []
        scheduler.at(1.0, lambda: fired.append(1))
        scheduler.at(5.0, lambda: fired.append(5))
        assert scheduler.run(until=2.0) == 1
        assert fired == [1]
        assert scheduler.pending == 1

    def test_max_events_bounds_a_spinning_action(self, net):
        scheduler = EventScheduler(net)

        def spin():
            scheduler.after(0.0, spin)

        scheduler.at(0.0, spin)
        assert scheduler.run(max_events=10) == 10
        assert scheduler.pending == 1  # the next spin, not an explosion

    def test_negative_times_rejected(self, net):
        scheduler = EventScheduler(net)
        with pytest.raises(ValueError):
            scheduler.at(-1.0, lambda: None)
        with pytest.raises(ValueError):
            scheduler.after(-0.5, lambda: None)

    def test_event_time_cleared_even_when_action_raises(self, net):
        scheduler = EventScheduler(net)

        def boom():
            raise RuntimeError("kaboom")

        scheduler.at(1.0, boom)
        with pytest.raises(RuntimeError):
            scheduler.run()
        assert net.event_time is None


class TestLinkSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=-1.0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0.0)

    def test_transfer_seconds(self):
        link = LinkSpec(bandwidth=100.0)

        class Payload:
            body = b"x" * 250

        assert link.transfer_seconds(Payload()) == 2.5
        assert LinkSpec().transfer_seconds(Payload()) == 0.0
        assert link.transfer_seconds(object()) == 0.0

    def test_link_costs_charged_on_delivery(self, net):
        server = net.create_host("server", "lan")
        client = net.create_host("client", "lan")

        class Reply:
            body = b"x" * 100

        server.bind(HTTP_PORT, lambda host, src, payload: Reply())
        net.set_link("lan", LinkSpec(latency=0.01, bandwidth=1000.0))
        client.call(server.address, HTTP_PORT, "req")
        # latency out + latency back + 100 bytes / 1000 B/s.
        assert net.clock == pytest.approx(0.12)

    def test_no_link_keeps_clock_untouched(self, net):
        server = net.create_host("server", "lan")
        client = net.create_host("client", "lan")
        server.bind(HTTP_PORT, lambda host, src, payload: "ok")
        client.call(server.address, HTTP_PORT, "req")
        assert net.clock == 0.0


class TestHostQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            HostQueue(capacity=0)
        with pytest.raises(ValueError):
            HostQueue(capacity=1, concurrency=0)
        with pytest.raises(ValueError):
            HostQueue(capacity=1, service_time=-1.0)

    def test_fifo_service_under_backlog(self):
        queue = HostQueue(capacity=10, service_time=1.0)
        # Three simultaneous arrivals on one server: service serializes.
        assert queue.admit(0.0) == 0.0
        assert queue.admit(0.0) == 1.0
        assert queue.admit(0.0) == 2.0
        assert queue.last_depth == 3
        assert queue.peak_depth == 3

    def test_concurrency_widens_the_pipe(self):
        queue = HostQueue(capacity=10, concurrency=2, service_time=1.0)
        assert queue.admit(0.0) == 0.0
        assert queue.admit(0.0) == 0.0
        assert queue.admit(0.0) == 1.0

    def test_depth_drains_as_time_passes(self):
        queue = HostQueue(capacity=10, service_time=1.0)
        for _ in range(3):
            queue.admit(0.0)
        assert queue.depth(0.5) == 3
        assert queue.depth(1.5) == 2
        assert queue.depth(10.0) == 0

    def test_overflow_at_capacity(self):
        queue = HostQueue(capacity=2, service_time=10.0)
        queue.admit(0.0)
        queue.admit(0.0)
        with pytest.raises(QueueOverflowError):
            queue.admit(0.0)
        assert queue.overflows == 1
        assert queue.admitted == 2
        # Once the backlog drains, admissions resume.
        assert queue.admit(100.0) == 100.0

    def test_last_arrival_records_admission_time(self):
        queue = HostQueue(capacity=10, service_time=1.0)
        assert queue.last_arrival is None
        queue.admit(3.0)
        assert queue.last_arrival == 3.0
        queue.admit(3.5)
        assert queue.last_arrival == 3.5

    def test_registry_counters(self):
        registry = MetricsRegistry()
        queue = HostQueue(capacity=1, service_time=10.0, host="h",
                          registry=registry)
        # Pre-registered: zeros before any traffic.
        assert registry.value("repro_idicn_queue_events_total",
                              host="h", event="admitted") == 0
        assert registry.value("repro_idicn_queue_events_total",
                              host="h", event="overflow") == 0
        queue.admit(0.0)
        with pytest.raises(QueueOverflowError):
            queue.admit(0.0)
        assert registry.value("repro_idicn_queue_events_total",
                              host="h", event="admitted") == 1
        assert registry.value("repro_idicn_queue_events_total",
                              host="h", event="overflow") == 1


class TestEventTimeSemantics:
    """``SimNet.event_time`` is consumed by the first *queued* hop."""

    def test_queued_host_admits_at_event_arrival(self, net):
        server = net.create_host("server", "lan")
        client = net.create_host("client", "lan")
        server.queue = HostQueue(capacity=10, service_time=1.0)
        server.bind(HTTP_PORT, lambda host, src, payload: "ok")
        scheduler = EventScheduler(net)
        for when in (0.0, 0.1, 0.2):
            scheduler.at(
                when,
                lambda: client.call(server.address, HTTP_PORT, "req"),
            )
        scheduler.run()
        # All three arrived during the first request's service window:
        # the serialized clock (1.0, 2.0, 3.0) did not hide the overlap.
        assert server.queue.peak_depth == 3
        assert server.queue.last_arrival == 0.2

    def test_unqueued_hop_passes_event_time_through(self, net):
        dns = net.create_host("dns", "lan")
        server = net.create_host("server", "lan")
        client = net.create_host("client", "lan")
        server.queue = HostQueue(capacity=10, service_time=1.0)
        # The "DNS" hop has no queue; resolution happens inside the
        # event, before the queued server hop.
        dns.bind(53, lambda host, src, payload: server.address)
        server.bind(HTTP_PORT, lambda host, src, payload: "ok")

        def lookup_then_fetch():
            address = client.call(dns.address, 53, "server?")
            client.call(address, HTTP_PORT, "req")

        scheduler = EventScheduler(net)
        scheduler.at(0.0, lookup_then_fetch)
        scheduler.at(0.1, lookup_then_fetch)
        scheduler.run()
        # The DNS hop must not eat the arrival stamp: the second
        # request still admits at 0.1, inside the first's service.
        assert server.queue.peak_depth == 2

    def test_nested_upstream_hop_admits_at_current_clock(self, net):
        upstream = net.create_host("upstream", "lan")
        server = net.create_host("server", "lan")
        client = net.create_host("client", "lan")
        server.queue = HostQueue(capacity=10, service_time=1.0)
        upstream.queue = HostQueue(capacity=10, service_time=1.0)
        arrivals = []
        upstream.bind(
            HTTP_PORT,
            lambda host, src, payload: arrivals.append(
                upstream.queue.last_arrival
            ),
        )
        server.bind(
            HTTP_PORT,
            lambda host, src, payload: host.call(
                upstream.address, HTTP_PORT, "fetch"
            ),
        )
        scheduler = EventScheduler(net)
        scheduler.at(0.0, lambda: client.call(server.address, HTTP_PORT,
                                              "req"))
        scheduler.run()
        # The nested fetch happens "now" (after the server's service
        # time), not at the original event arrival.
        assert arrivals == [1.0]

    def test_no_scheduler_means_clock_arrivals(self, net):
        server = net.create_host("server", "lan")
        client = net.create_host("client", "lan")
        server.queue = HostQueue(capacity=10, service_time=1.0)
        server.bind(HTTP_PORT, lambda host, src, payload: "ok")
        net.clock = 7.0
        client.call(server.address, HTTP_PORT, "req")
        assert server.queue.last_arrival == 7.0
