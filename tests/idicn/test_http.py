"""Tests for the HTTP message model."""

import pytest

from repro.idicn.http import (
    HttpRequest,
    HttpResponse,
    apply_byte_range,
    bad_gateway,
    get,
    not_found,
    ok,
    parse_byte_range,
    split_url,
)


class TestUrls:
    def test_split_full_url(self):
        assert split_url("http://example.org/a/b") == ("example.org", "/a/b")

    def test_split_bare_domain(self):
        assert split_url("example.org") == ("example.org", "/")
        assert split_url("http://example.org") == ("example.org", "/")

    def test_unsupported_scheme(self):
        with pytest.raises(ValueError):
            split_url("ftp://example.org/x")


class TestRequest:
    def test_host_from_url(self):
        request = get("http://a.example/path")
        assert request.host == "a.example"
        assert request.path == "/path"

    def test_host_header_wins(self):
        request = HttpRequest("GET", "http://a.example/x",
                              headers={"Host": "b.example"})
        assert request.host == "b.example"

    def test_headers_case_insensitive(self):
        request = HttpRequest("GET", "http://x/", headers={"X-Foo": "1"})
        assert request.header("x-foo") == "1"
        assert request.header("X-FOO") == "1"
        assert request.header("missing", "d") == "d"

    def test_with_header_does_not_mutate(self):
        request = get("http://x/")
        other = request.with_header("a", "1")
        assert request.header("a") is None
        assert other.header("a") == "1"


class TestResponse:
    def test_ok_flags(self):
        assert ok(b"x").ok
        assert not not_found().ok
        assert not bad_gateway().ok
        assert not_found().status == 404
        assert bad_gateway().status == 502

    def test_with_header(self):
        response = ok(b"x").with_header("x-meta", "v")
        assert response.header("X-Meta") == "v"


class TestByteRanges:
    def test_parse_closed_range(self):
        assert parse_byte_range("bytes=0-99") == (0, 99)

    def test_parse_open_range(self):
        assert parse_byte_range("bytes=100-") == (100, None)

    def test_bad_unit(self):
        with pytest.raises(ValueError):
            parse_byte_range("chunks=0-1")

    def test_suffix_range_unsupported(self):
        with pytest.raises(ValueError):
            parse_byte_range("bytes=-100")

    def test_inverted_range(self):
        with pytest.raises(ValueError):
            parse_byte_range("bytes=10-5")

    def test_request_byte_range_accessor(self):
        request = HttpRequest("GET", "http://x/", headers={"Range": "bytes=2-4"})
        assert request.byte_range() == (2, 4)
        assert get("http://x/").byte_range() is None

    def test_apply_closed_range(self):
        response = apply_byte_range(b"0123456789", (2, 4))
        assert response.status == 206
        assert response.body == b"234"
        assert response.header("content-range") == "bytes 2-4/10"

    def test_apply_open_range(self):
        response = apply_byte_range(b"0123456789", (7, None))
        assert response.body == b"789"

    def test_apply_range_clamped_to_body(self):
        response = apply_byte_range(b"0123", (2, 100))
        assert response.body == b"23"
        assert response.header("content-range") == "bytes 2-3/4"

    def test_apply_out_of_bounds_is_416(self):
        response = apply_byte_range(b"0123", (4, None))
        assert response.status == 416
