"""Tests for PIT coalescing and the graceful-degradation ladder."""

import pytest

from repro.idicn import (
    AdmissionControl,
    EdgeProxy,
    EventScheduler,
    FaultPlane,
    HostQueue,
    NameResolutionSystem,
    OriginServer,
    PendingInterestTable,
    ResolutionClient,
    ReverseProxy,
    SimNet,
    generate_keypair,
)
from repro.idicn import http
from repro.idicn.simnet import HTTP_PORT
from repro.obs import MetricsRegistry

KEY = generate_keypair(bits=256, seed=10)


class TestPendingInterestTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            PendingInterestTable(window=0.0)
        with pytest.raises(ValueError):
            PendingInterestTable(capacity=0)

    def test_join_before_record_is_none(self):
        pit = PendingInterestTable(window=1.0)
        assert pit.join("n", 0.0) is None

    def test_join_within_window_coalesces(self):
        pit = PendingInterestTable(window=1.0)
        pit.record("n", 0.0, result="payload")
        entry = pit.join("n", 0.5)
        assert entry is not None and entry.result == "payload"
        assert entry.waiters == 1
        assert pit.coalesced == 1

    def test_negative_entry_counts_separately(self):
        pit = PendingInterestTable(window=1.0)
        pit.record("n", 0.0, result=None)
        entry = pit.join("n", 0.5)
        assert entry is not None and entry.result is None
        assert pit.negative_coalesced == 1
        assert pit.coalesced == 0

    def test_entry_expires_after_window(self):
        pit = PendingInterestTable(window=1.0)
        pit.record("n", 0.0, result="payload")
        assert pit.join("n", 1.5) is None
        assert pit.expired == 1
        assert pit.live_entries == 0

    def test_capacity_evicts_oldest(self):
        pit = PendingInterestTable(window=100.0, capacity=2)
        pit.record("a", 0.0, result=1)
        pit.record("b", 0.0, result=2)
        pit.record("c", 0.0, result=3)
        assert pit.live_entries == 2
        assert pit.join("a", 0.1) is None  # evicted
        assert pit.join("c", 0.1) is not None

    def test_registry_counters_preregistered(self):
        registry = MetricsRegistry()
        pit = PendingInterestTable(window=1.0, host="p", registry=registry)
        for event in ("recorded", "coalesced", "negative_coalesced",
                      "expired"):
            assert registry.value("repro_idicn_pit_events_total",
                                  host="p", event=event) == 0
        pit.record("n", 0.0, result="x")
        pit.join("n", 0.5)
        assert registry.value("repro_idicn_pit_events_total",
                              host="p", event="recorded") == 1
        assert registry.value("repro_idicn_pit_events_total",
                              host="p", event="coalesced") == 1


class TestAdmissionControl:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionControl(stale_depth=-1)
        with pytest.raises(ValueError):
            AdmissionControl(stale_depth=10, shed_depth=5)
        with pytest.raises(ValueError):
            AdmissionControl(retry_after=0.0)

    def test_ladder_levels(self):
        control = AdmissionControl(stale_depth=2, shed_depth=4)
        assert control.level(0) == "ok"
        assert control.level(2) == "ok"
        assert control.level(3) == "stale"
        assert control.level(4) == "stale"
        assert control.level(5) == "shed"


@pytest.fixture
def world():
    """A deployment with a queued, PIT-equipped edge proxy."""
    net = SimNet()
    net.create_subnet("net", "10.0.0")
    origin = OriginServer(net.create_host("origin", "net"))
    resolver = NameResolutionSystem(net.create_host("nrs", "net"))
    rp_host = net.create_host("rp", "net")
    reverse = ReverseProxy(
        rp_host,
        origin_address=origin.host.address,
        keypair=KEY,
        resolver=ResolutionClient(rp_host, resolver.host.address),
    )
    proxy_host = net.create_host("proxy", "net")
    proxy = EdgeProxy(
        proxy_host,
        resolver=ResolutionClient(proxy_host, resolver.host.address),
        capacity=8,
        pit=PendingInterestTable(window=5.0),
        admission=AdmissionControl(stale_depth=2, shed_depth=4,
                                   retry_after=3.0),
    )
    proxy_host.queue = HostQueue(capacity=64, service_time=1.0)
    client = net.create_host("client", "net")
    return net, origin, reverse, proxy, client


def _publish(origin, reverse, content=b"payload", max_age=None):
    origin.store("doc", content)
    reverse.max_age = max_age
    name = reverse.publish("doc")
    return f"http://{name.domain}/"


def _herd(net, proxy, client, url, times):
    """Schedule one request per arrival time; return the responses."""
    scheduler = EventScheduler(net)
    responses = []
    for when in times:
        scheduler.at(
            when,
            lambda: responses.append(
                client.call(proxy.host.address, HTTP_PORT, http.get(url))
            ),
        )
    scheduler.run()
    return responses


class TestProxyCoalescing:
    def test_thundering_herd_collapses_to_one_fetch(self, world):
        net, origin, reverse, proxy, client = world
        url = _publish(origin, reverse)
        baseline = reverse.requests_served
        responses = _herd(net, proxy, client, url, [0.0, 0.1, 0.2, 0.3])
        assert all(r.ok for r in responses)
        # One upstream fetch fanned out to the whole herd.
        assert reverse.requests_served == baseline + 1
        assert proxy.coalesced == 3
        assert proxy.misses == 4  # every herd member arrived pre-fetch

    def test_spaced_requests_hit_the_cache_instead(self, world):
        net, origin, reverse, proxy, client = world
        url = _publish(origin, reverse)
        baseline = reverse.requests_served
        # Arrivals after the first fetch completed: plain cache hits.
        responses = _herd(net, proxy, client, url, [0.0, 10.0, 20.0])
        assert all(r.ok for r in responses)
        assert reverse.requests_served == baseline + 1
        assert proxy.coalesced == 0
        assert proxy.hits == 2

    def test_negative_entry_propagates_failure(self, world):
        net, origin, reverse, proxy, client = world
        url = _publish(origin, reverse)
        net.set_online(reverse.host, False)
        responses = _herd(net, proxy, client, url, [0.0, 0.1, 0.2])
        assert all(r.status == 502 for r in responses)
        # One failed fetch; the rest inherited the negative entry
        # instead of hammering the dead upstream.
        assert proxy.negative_coalesced == 2

    def test_pit_disabled_refetches_per_request(self, world):
        net, origin, reverse, proxy, client = world
        proxy.pit = None
        url = _publish(origin, reverse)
        baseline = reverse.requests_served
        responses = _herd(net, proxy, client, url, [0.0, 0.1, 0.2])
        assert all(r.ok for r in responses)
        # The ablation arm: every herd member goes upstream itself.
        assert reverse.requests_served == baseline + 3

    def test_revalidations_coalesce_too(self, world):
        net, origin, reverse, proxy, client = world
        url = _publish(origin, reverse, max_age=1.0)
        _herd(net, proxy, client, url, [0.0])
        net.advance(50.0)  # entry now stale
        baseline = reverse.requests_served
        responses = _herd(net, proxy, client, url,
                          [net.clock, net.clock + 0.1])
        assert all(r.ok for r in responses)
        assert reverse.requests_served == baseline + 1
        # The first arrival revalidates; the second (arriving while the
        # renewed copy was still "in flight") joins the PIT instead.
        assert proxy.revalidations == 1
        assert proxy.coalesced == 1


class TestDegradationLadder:
    def test_stale_rung_serves_warning_110(self, world):
        net, origin, reverse, proxy, client = world
        url = _publish(origin, reverse, max_age=1.0)
        _herd(net, proxy, client, url, [0.0])
        net.advance(50.0)  # cached copy now stale
        # Build a backlog so the next admission sees depth above
        # stale_depth=2 (but at or below shed_depth=4).
        for _ in range(3):
            proxy.host.queue.admit(net.clock)
        baseline = reverse.requests_served
        response = client.call(proxy.host.address, HTTP_PORT,
                               http.get(url))
        # Middle rung: the stale copy is served immediately, flagged
        # per RFC 7234, with no upstream revalidation.
        assert response.ok and http.is_stale(response)
        assert response.header("warning") == http.STALE_WARNING
        assert proxy.stale_reasons["overload"] == 1
        assert reverse.requests_served == baseline

    def test_shed_rung_refuses_with_retry_after(self, world):
        net, origin, reverse, proxy, client = world
        url = _publish(origin, reverse)
        responses = _herd(net, proxy, client, url,
                          [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
        shed = [r for r in responses if http.is_shed(r)]
        # Depth climbed past shed_depth=4: the tail was refused.
        assert shed
        assert proxy.shed == len(shed)
        for response in shed:
            assert response.status == 503
            assert http.retry_after_seconds(response) == 3.0

    def test_no_admission_control_never_degrades(self, world):
        net, origin, reverse, proxy, client = world
        proxy.admission = None
        url = _publish(origin, reverse)
        responses = _herd(net, proxy, client, url,
                          [i * 0.1 for i in range(8)])
        assert all(r.ok for r in responses)
        assert proxy.shed == 0

    def test_stale_reason_counter_in_registry(self, world):
        net, origin, reverse, proxy, client = world
        registry = MetricsRegistry()
        proxy.registry = registry
        for event in ("failover", "overload"):
            registry.counter(
                "repro_idicn_stale_served_total",
                help="stale responses served, by degradation reason",
                host=proxy.host.name,
                reason=event,
            )
        url = _publish(origin, reverse, max_age=1.0)
        _herd(net, proxy, client, url, [0.0])
        net.advance(50.0)
        # Failover rung: upstream dead, revalidation fails, stale wins.
        net.set_online(reverse.host, False)
        responses = _herd(net, proxy, client, url, [net.clock])
        assert http.is_stale(responses[0])
        assert registry.value("repro_idicn_stale_served_total",
                              host="proxy", reason="failover") == 1
        assert registry.value("repro_idicn_stale_served_total",
                              host="proxy", reason="overload") == 0


class TestHazardWindows:
    def test_hazard_applies_only_inside_window(self):
        net = SimNet()
        net.create_subnet("net", "10.0.0")
        server = net.create_host("server", "net")
        client = net.create_host("client", "net")
        server.bind(HTTP_PORT, lambda host, src, payload: "ok")
        plane = FaultPlane(net, seed=7)
        net.install_faults(plane)
        plane.schedule_hazard("error", 10.0, 20.0, 1.0)
        # Outside the window: every call succeeds.
        for _ in range(5):
            assert client.call(server.address, HTTP_PORT, "x") == "ok"
        net.clock = 15.0
        from repro.idicn import InjectedCallError

        with pytest.raises(InjectedCallError):
            client.call(server.address, HTTP_PORT, "x")
        net.clock = 25.0
        assert client.call(server.address, HTTP_PORT, "x") == "ok"
        assert plane.injected_faults == 1
