"""Tests for HTTP cache freshness and conditional revalidation.

The paper's proxy "responds immediately if it has a *fresh* copy of the
requested object"; these tests exercise the max-age / etag / 304
machinery that makes "fresh" meaningful.
"""

import pytest

from repro.idicn import (
    EdgeProxy,
    NameResolutionSystem,
    OriginServer,
    ResolutionClient,
    ReverseProxy,
    SimNet,
    generate_keypair,
)
from repro.idicn.http import get
from repro.idicn.simnet import HTTP_PORT

KEY = generate_keypair(bits=256, seed=12)


@pytest.fixture
def world():
    net = SimNet()
    net.create_subnet("net", "10.0.0")
    origin = OriginServer(net.create_host("origin", "net"))
    resolver = NameResolutionSystem(net.create_host("nrs", "net"))
    rp_host = net.create_host("rp", "net")
    reverse = ReverseProxy(
        rp_host,
        origin_address=origin.host.address,
        keypair=KEY,
        resolver=ResolutionClient(rp_host, resolver.host.address),
        max_age=60.0,
    )
    proxy_host = net.create_host("proxy", "net")
    proxy = EdgeProxy(
        proxy_host,
        resolver=ResolutionClient(proxy_host, resolver.host.address),
    )
    client = net.create_host("client", "net")
    origin.store("doc", b"version 1")
    name = reverse.publish("doc")
    return net, origin, reverse, proxy, client, name


def fetch(client, proxy, name):
    return client.call(proxy.host.address, HTTP_PORT,
                       get(f"http://{name.domain}/"))


class TestFreshness:
    def test_fresh_copy_served_without_upstream_contact(self, world):
        net, origin, reverse, proxy, client, name = world
        fetch(client, proxy, name)
        served_before = reverse.requests_served
        net.advance(30.0)  # still within max-age=60
        response = fetch(client, proxy, name)
        assert response.ok
        assert reverse.requests_served == served_before
        assert proxy.revalidations == 0

    def test_stale_copy_revalidated_with_304(self, world):
        net, origin, reverse, proxy, client, name = world
        fetch(client, proxy, name)
        net.advance(120.0)  # past max-age
        response = fetch(client, proxy, name)
        assert response.ok and response.body == b"version 1"
        assert proxy.revalidations == 1
        assert proxy.revalidations_304 == 1

    def test_revalidation_renews_freshness(self, world):
        net, origin, reverse, proxy, client, name = world
        fetch(client, proxy, name)
        net.advance(120.0)
        fetch(client, proxy, name)  # revalidates, renews the clock
        net.advance(30.0)  # fresh again
        fetch(client, proxy, name)
        assert proxy.revalidations == 1

    def test_changed_content_refetched_after_expiry(self, world):
        net, origin, reverse, proxy, client, name = world
        fetch(client, proxy, name)
        # Publisher updates the content behind the same label.
        origin.store("doc", b"version 2")
        reverse.invalidate("doc")
        reverse.publish("doc")
        net.advance(120.0)
        response = fetch(client, proxy, name)
        assert response.body == b"version 2"
        assert proxy.revalidations == 1
        assert proxy.revalidations_304 == 0

    def test_stale_copy_served_when_upstream_down(self, world):
        net, origin, reverse, proxy, client, name = world
        fetch(client, proxy, name)
        net.advance(120.0)
        net.set_online(reverse.host, False)
        response = fetch(client, proxy, name)
        assert response.ok and response.body == b"version 1"

    def test_no_max_age_means_forever_fresh(self):
        net = SimNet()
        net.create_subnet("net", "10.0.0")
        origin = OriginServer(net.create_host("origin", "net"))
        resolver = NameResolutionSystem(net.create_host("nrs", "net"))
        rp_host = net.create_host("rp", "net")
        reverse = ReverseProxy(
            rp_host, origin_address=origin.host.address, keypair=KEY,
            resolver=ResolutionClient(rp_host, resolver.host.address),
        )
        proxy_host = net.create_host("proxy", "net")
        proxy = EdgeProxy(
            proxy_host,
            resolver=ResolutionClient(proxy_host, resolver.host.address),
        )
        client = net.create_host("client", "net")
        origin.store("doc", b"x")
        name = reverse.publish("doc")
        fetch(client, proxy, name)
        net.advance(1e9)
        fetch(client, proxy, name)
        assert proxy.revalidations == 0


class TestClock:
    def test_advance_monotone(self):
        net = SimNet()
        assert net.advance(5.0) == 5.0
        assert net.advance(2.5) == 7.5
        with pytest.raises(ValueError):
            net.advance(-1.0)
