"""Tests for the turn-key deployment builder."""

import pytest

from repro.idicn import (
    OriginServer,
    ResolutionClient,
    ReverseProxy,
    build_deployment,
    generate_keypair,
)


class TestBuildDeployment:
    def test_shape(self):
        deployment = build_deployment(num_domains=3, browsers_per_domain=2)
        assert len(deployment.domains) == 3
        assert all(len(d.browsers) == 2 for d in deployment.domains)
        assert len(deployment.providers) == 1

    def test_every_browser_is_autoconfigured(self):
        deployment = build_deployment(num_domains=2, browsers_per_domain=2)
        for domain in deployment.domains:
            proxy_addr = domain.proxy.host.address_on(domain.subnet)
            for browser in domain.browsers:
                assert browser.pac is not None
                assert browser.proxy_for("http://x.idicn.org/") == proxy_addr

    def test_domains_use_their_own_proxies(self):
        deployment = build_deployment(num_domains=2, browsers_per_domain=1)
        name = deployment.providers[0].publish("p", b"x")
        deployment.domains[0].browsers[0].get(f"http://{name}/")
        deployment.domains[1].browsers[0].get(f"http://{name}/")
        assert deployment.domains[0].proxy.misses == 1
        assert deployment.domains[1].proxy.misses == 1

    def test_provider_publish_returns_domain(self):
        deployment = build_deployment()
        domain = deployment.providers[0].publish("label", b"content")
        assert domain.endswith(".idicn.org")
        assert deployment.dns_server.lookup(domain) is not None

    def test_second_provider_can_join(self):
        deployment = build_deployment()
        net = deployment.net
        origin_host = net.create_host("origin2", "backbone")
        origin = OriginServer(origin_host)
        origin.store("video", b"frames")
        rp_host = net.create_host("rp2", "backbone")
        keypair = generate_keypair(bits=256, seed=99)
        resolver_addr = deployment.resolver.host.address_on("backbone")
        reverse = ReverseProxy(
            rp_host,
            origin_address=origin_host.address_on("backbone"),
            keypair=keypair,
            resolver=ResolutionClient(rp_host, resolver_addr),
            dns_register=deployment.dns_server.add_record,
        )
        name = reverse.publish("video")
        browser = deployment.domains[0].browsers[0]
        response = browser.get(f"http://{name.domain}/")
        assert response.ok and response.body == b"frames"

    def test_client_side_verification_flag(self):
        deployment = build_deployment(verify_at_client=True)
        assert deployment.domains[0].browsers[0].verify_content
