"""Tests for spatial popularity skew."""

import numpy as np
import pytest

from repro.workload import measured_skew, ranks_from_rankings, skewed_rankings


class TestRankings:
    def test_zero_skew_is_global_ranking(self, rng):
        rankings = skewed_rankings(100, 5, 0.0, rng)
        assert rankings.shape == (5, 100)
        for pop in range(5):
            assert np.array_equal(rankings[pop], np.arange(100))

    def test_rows_are_permutations(self, rng):
        rankings = skewed_rankings(200, 4, 0.7, rng)
        for pop in range(4):
            assert np.array_equal(np.sort(rankings[pop]), np.arange(200))

    def test_full_skew_decorrelates_pops(self, rng):
        rankings = skewed_rankings(500, 2, 1.0, rng)
        agreement = np.mean(rankings[0] == rankings[1])
        assert agreement < 0.05

    def test_invalid_skew_rejected(self, rng):
        with pytest.raises(ValueError):
            skewed_rankings(10, 2, 1.5, rng)
        with pytest.raises(ValueError):
            skewed_rankings(10, 2, -0.1, rng)

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            skewed_rankings(0, 2, 0.5, rng)
        with pytest.raises(ValueError):
            skewed_rankings(10, 0, 0.5, rng)


class TestInversion:
    def test_ranks_invert_rankings(self, rng):
        rankings = skewed_rankings(50, 3, 0.5, rng)
        ranks = ranks_from_rankings(rankings)
        for pop in range(3):
            for r in range(50):
                assert ranks[pop, rankings[pop, r]] == r


class TestSkewMetric:
    def test_zero_for_identical_rankings(self, rng):
        rankings = skewed_rankings(100, 6, 0.0, rng)
        assert measured_skew(rankings) == 0.0

    def test_monotone_in_skew_parameter(self, rng):
        values = [
            measured_skew(skewed_rankings(400, 8, s, rng))
            for s in (0.0, 0.3, 0.6, 1.0)
        ]
        assert values == sorted(values)

    def test_full_skew_approaches_random_permutation_spread(self, rng):
        # For independent uniform permutations the std of an object's
        # rank across pops is ~O/sqrt(12) on average, so metric ~0.28.
        metric = measured_skew(skewed_rankings(1000, 16, 1.0, rng))
        assert 0.15 < metric < 0.35
