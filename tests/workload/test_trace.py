"""Tests for the CDN log format."""

import numpy as np
import pytest

from repro.workload import (
    TraceRecord,
    anonymize,
    object_ids_by_popularity,
    read_trace,
    write_trace,
)


def record(url="u1", ts=1.0, client="c1", size=100, local=False):
    return TraceRecord(
        timestamp=ts, client=client, url=url, size=size, served_locally=local
    )


class TestSerialization:
    def test_roundtrip(self):
        original = record(local=True)
        parsed = TraceRecord.from_line(original.to_line())
        assert parsed == original

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("only\ttwo")

    def test_bad_number_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("x\tc\tu\tnotanint\t0")


class TestFileIo:
    def test_write_then_read(self, tmp_path):
        records = [record(url=f"u{i}", ts=float(i)) for i in range(10)]
        path = tmp_path / "trace.tsv"
        written = write_trace(path, records)
        assert written == 10
        loaded = list(read_trace(path))
        assert loaded == records

    def test_reader_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.tsv"
        path.write_text(
            "# header\n\n" + record().to_line() + "\n\n# trailing\n"
        )
        assert len(list(read_trace(path))) == 1

    def test_reader_is_lazy(self, tmp_path):
        path = tmp_path / "trace.tsv"
        write_trace(path, [record()])
        iterator = read_trace(path)
        assert next(iter(iterator)) == record()


class TestAnonymize:
    def test_deterministic(self):
        assert anonymize("10.1.2.3") == anonymize("10.1.2.3")

    def test_salt_changes_output(self):
        assert anonymize("x", salt="a") != anonymize("x", salt="b")

    def test_fixed_length_hex(self):
        token = anonymize("anything at all")
        assert len(token) == 16
        int(token, 16)  # must be hex


class TestObjectIds:
    def test_ids_are_popularity_ranks(self):
        records = (
            [record(url="popular")] * 5
            + [record(url="mid", size=7)] * 3
            + [record(url="rare")]
        )
        objects, url_to_id, sizes = object_ids_by_popularity(records)
        assert url_to_id["popular"] == 0
        assert url_to_id["mid"] == 1
        assert url_to_id["rare"] == 2
        assert objects.tolist() == [0] * 5 + [1] * 3 + [2]
        assert sizes[1] == 7

    def test_empty_trace(self):
        objects, url_to_id, sizes = object_ids_by_popularity([])
        assert objects.size == 0
        assert url_to_id == {}
        assert sizes.size == 0

    def test_counts_preserved(self):
        records = [record(url=f"u{i % 4}") for i in range(40)]
        objects, _, _ = object_ids_by_popularity(records)
        assert np.bincount(objects).tolist() == [10, 10, 10, 10]
