"""Tests for the CDN log format."""

import weakref

import numpy as np
import pytest

from repro.workload import (
    TraceRecord,
    anonymize,
    object_ids_by_popularity,
    read_trace,
    write_trace,
)


def record(url="u1", ts=1.0, client="c1", size=100, local=False):
    return TraceRecord(
        timestamp=ts, client=client, url=url, size=size, served_locally=local
    )


class TestSerialization:
    def test_roundtrip(self):
        original = record(local=True)
        parsed = TraceRecord.from_line(original.to_line())
        assert parsed == original

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("only\ttwo")

    def test_bad_number_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("x\tc\tu\tnotanint\t0")

    @pytest.mark.parametrize("timestamp", ["nan", "inf", "-inf"])
    def test_non_finite_timestamp_rejected(self, timestamp):
        # float("nan") parses fine, so the *value* must be validated:
        # a NaN timestamp would silently poison inter-arrival math.
        with pytest.raises(ValueError, match="non-finite timestamp"):
            TraceRecord.from_line(f"{timestamp}\tc\tu\t10\t0")

    def test_negative_size_rejected(self):
        # int("-5") parses fine; a negative size is corrupt log data.
        with pytest.raises(ValueError, match="negative size"):
            TraceRecord.from_line("1.0\tc\tu\t-5\t0")

    def test_zero_size_still_accepted(self):
        assert TraceRecord.from_line("1.0\tc\tu\t0\t1").size == 0


class TestFileIo:
    def test_write_then_read(self, tmp_path):
        records = [record(url=f"u{i}", ts=float(i)) for i in range(10)]
        path = tmp_path / "trace.tsv"
        written = write_trace(path, records)
        assert written == 10
        loaded = list(read_trace(path))
        assert loaded == records

    def test_reader_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.tsv"
        path.write_text(
            "# header\n\n" + record().to_line() + "\n\n# trailing\n"
        )
        assert len(list(read_trace(path))) == 1

    def test_reader_is_lazy(self, tmp_path):
        path = tmp_path / "trace.tsv"
        write_trace(path, [record()])
        iterator = read_trace(path)
        assert next(iter(iterator)) == record()

    def test_indented_comment_is_a_comment(self, tmp_path):
        # Regression: the comment test used to run before stripping, so
        # "  # note" fell through to the parser and was skip-counted as
        # a truncated record.
        from repro.obs import MetricsRegistry
        from repro.workload import SKIPPED_LINES_METRIC

        path = tmp_path / "trace.tsv"
        path.write_text(
            "# header\n  # indented comment\n\t# tab-indented\n"
            + record().to_line() + "\n"
        )
        registry = MetricsRegistry()
        assert list(read_trace(path, registry=registry)) == [record()]
        assert registry.value(SKIPPED_LINES_METRIC, reason="truncated") == 0
        assert registry.value(SKIPPED_LINES_METRIC, reason="malformed") == 0

    def test_atomic_write_preserves_existing_file_on_crash(self, tmp_path):
        # Regression: write_trace used to stream straight into the
        # destination, so a crash mid-write left a truncated file (which
        # reads back as a valid, shorter trace) in place of the old one.
        path = tmp_path / "trace.tsv"
        good = [record(url=f"u{i}") for i in range(3)]
        write_trace(path, good)

        def exploding():
            yield record(url="new")
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError, match="disk full"):
            write_trace(path, exploding())
        assert list(read_trace(path)) == good
        assert list(tmp_path.iterdir()) == [path]  # no tmp file left

    def test_write_is_atomic_via_rename(self, tmp_path):
        path = tmp_path / "trace.tsv"
        assert write_trace(path, [record(url=f"u{i}") for i in range(5)]) == 5
        assert list(tmp_path.iterdir()) == [path]


class TestMalformedLines:
    """Corrupt log lines are skipped and counted, not fatal mid-file."""

    def _dirty_file(self, tmp_path):
        path = tmp_path / "trace.tsv"
        good = [record(url=f"u{i}", ts=float(i)) for i in range(3)]
        path.write_text(
            "# header\n"
            + good[0].to_line() + "\n"
            + "only\ttwo\n"                         # truncated (2 fields)
            + good[1].to_line() + "\n"
            + "1.0\tc\tu\tnotanint\t0\n"            # malformed size field
            + good[2].to_line()[:10] + "\n"         # truncated tail write
            + good[2].to_line() + "\n"
        )
        return path, good

    def test_bad_lines_skipped_good_lines_survive(self, tmp_path):
        path, good = self._dirty_file(tmp_path)
        assert list(read_trace(path)) == good

    def test_skips_counted_in_registry(self, tmp_path):
        from repro.obs import MetricsRegistry
        from repro.workload import SKIPPED_LINES_METRIC

        path, good = self._dirty_file(tmp_path)
        registry = MetricsRegistry()
        assert list(read_trace(path, registry=registry)) == good
        assert registry.value(SKIPPED_LINES_METRIC, reason="truncated") == 2
        assert registry.value(SKIPPED_LINES_METRIC, reason="malformed") == 1

    def test_clean_file_exports_zero_skips(self, tmp_path):
        from repro.obs import MetricsRegistry
        from repro.workload import SKIPPED_LINES_METRIC

        path = tmp_path / "trace.tsv"
        write_trace(path, [record()])
        registry = MetricsRegistry()
        list(read_trace(path, registry=registry))
        assert registry.value(SKIPPED_LINES_METRIC, reason="truncated") == 0
        assert registry.value(SKIPPED_LINES_METRIC, reason="malformed") == 0

    def test_strict_mode_raises_with_line_number(self, tmp_path):
        path, _ = self._dirty_file(tmp_path)
        with pytest.raises(ValueError, match=":3:"):
            list(read_trace(path, errors="raise"))

    def test_unknown_errors_mode_rejected(self, tmp_path):
        path = tmp_path / "trace.tsv"
        write_trace(path, [record()])
        with pytest.raises(ValueError, match="errors"):
            list(read_trace(path, errors="ignore"))


class TestAnonymize:
    def test_deterministic(self):
        assert anonymize("10.1.2.3") == anonymize("10.1.2.3")

    def test_salt_changes_output(self):
        assert anonymize("x", salt="a") != anonymize("x", salt="b")

    def test_fixed_length_hex(self):
        token = anonymize("anything at all")
        assert len(token) == 16
        int(token, 16)  # must be hex


class TestObjectIds:
    def test_ids_are_popularity_ranks(self):
        records = (
            [record(url="popular")] * 5
            + [record(url="mid", size=7)] * 3
            + [record(url="rare")]
        )
        objects, url_to_id, sizes = object_ids_by_popularity(records)
        assert url_to_id["popular"] == 0
        assert url_to_id["mid"] == 1
        assert url_to_id["rare"] == 2
        assert objects.tolist() == [0] * 5 + [1] * 3 + [2]
        assert sizes[1] == 7

    def test_empty_trace(self):
        objects, url_to_id, sizes = object_ids_by_popularity([])
        assert objects.size == 0
        assert url_to_id == {}
        assert sizes.size == 0

    def test_counts_preserved(self):
        records = [record(url=f"u{i % 4}") for i in range(40)]
        objects, _, _ = object_ids_by_popularity(records)
        assert np.bincount(objects).tolist() == [10, 10, 10, 10]

    def test_generator_input_matches_list_input(self):
        records = [record(url=f"u{i % 9}", size=i + 1) for i in range(200)]
        from_list = object_ids_by_popularity(records)
        from_gen = object_ids_by_popularity(iter(records))
        assert np.array_equal(from_list[0], from_gen[0])
        assert from_list[1] == from_gen[1]
        assert np.array_equal(from_list[2], from_gen[2])

    def test_tie_order_is_first_appearance(self):
        # Equal counts must rank in first-appearance order (the stable
        # order Counter.most_common produced before the rewrite).
        records = [record(url=u) for u in ("b", "a", "c", "b", "a", "c")]
        _, url_to_id, _ = object_ids_by_popularity(records)
        assert url_to_id == {"b": 0, "a": 1, "c": 2}

    def test_single_pass_never_materializes_the_stream(self):
        # Regression: the old implementation did list(records) and then
        # iterated three times, holding every record alive at once.  The
        # generator checks liveness at exhaustion: only the consumer's
        # current record may still be referenced.
        refs = []
        alive_at_end = []

        def stream():
            for i in range(500):
                rec = record(url=f"u{i % 7}", size=i)
                refs.append(weakref.ref(rec))
                yield rec
                rec = None  # noqa: F841 - drop the generator's reference
                if i == 499:
                    alive_at_end.append(
                        sum(1 for ref in refs if ref() is not None)
                    )

        objects, url_to_id, _ = object_ids_by_popularity(stream())
        assert len(objects) == 500
        assert len(url_to_id) == 7
        assert alive_at_end and alive_at_end[0] <= 2
