"""Tests for Zipf parameter estimation."""

import numpy as np
import pytest

from repro.workload import (
    ZipfDistribution,
    fit_zipf_mle,
    fit_zipf_regression,
    rank_frequency,
)


class TestRankFrequency:
    def test_sorted_descending(self, rng):
        objects = np.array([0, 0, 0, 1, 1, 2])
        counts = rank_frequency(objects)
        assert counts.tolist() == [3, 2, 1]

    def test_skips_unseen_objects(self):
        counts = rank_frequency(np.array([5, 5, 9]))
        assert counts.tolist() == [2, 1]

    def test_empty(self):
        assert rank_frequency(np.array([], dtype=np.int64)).size == 0


class TestMle:
    @pytest.mark.parametrize("alpha", [0.7, 1.0, 1.3])
    def test_recovers_known_alpha(self, alpha, rng):
        zipf = ZipfDistribution(alpha=alpha, num_objects=2000)
        sample = zipf.sample(rng, 300_000)
        estimate = fit_zipf_mle(rank_frequency(sample), num_objects=2000)
        assert estimate == pytest.approx(alpha, abs=0.05)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            fit_zipf_mle(np.array([]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            fit_zipf_mle(np.array([3.0, -1.0]))

    def test_truncation_must_cover_observed_ranks(self):
        with pytest.raises(ValueError):
            fit_zipf_mle(np.array([5.0, 3.0, 1.0]), num_objects=2)

    def test_uniform_counts_give_near_zero_alpha(self):
        estimate = fit_zipf_mle(np.full(100, 10.0))
        assert estimate < 0.05

    def test_all_zero_counts_rejected(self):
        # The likelihood is constant: the optimizer would return an
        # arbitrary interior point instead of failing loudly.
        with pytest.raises(ValueError, match="all zero"):
            fit_zipf_mle(np.zeros(10))

    def test_single_rank_rejected(self):
        # One observed rank cannot identify an exponent; the optimizer
        # would ride the search bound.
        with pytest.raises(ValueError, match="at least two"):
            fit_zipf_mle(np.array([42.0]))

    def test_non_finite_counts_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            fit_zipf_mle(np.array([3.0, np.nan, 1.0]))
        with pytest.raises(ValueError, match="finite"):
            fit_zipf_mle(np.array([3.0, np.inf, 1.0]))


class TestRegression:
    def test_exact_power_law_recovered(self):
        ranks = np.arange(1, 201, dtype=np.float64)
        counts = 1e6 * ranks**-1.2
        fit = fit_zipf_regression(counts)
        assert fit.alpha == pytest.approx(1.2, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_sampled_data_fits_reasonably(self, rng):
        zipf = ZipfDistribution(alpha=1.0, num_objects=500)
        sample = zipf.sample(rng, 200_000)
        fit = fit_zipf_regression(rank_frequency(sample))
        # The paper's visual check: "almost linear on a log-log plot".
        assert fit.r_squared > 0.8

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_zipf_regression(np.array([5.0]))

    def test_zero_counts_ignored(self):
        counts = np.array([100.0, 50.0, 0.0, 25.0])
        fit = fit_zipf_regression(counts)
        assert fit.alpha > 0
