"""Tests for the synthetic CDN log generator."""

import numpy as np
import pytest

from repro.workload import (
    REGIONS,
    fit_zipf_mle,
    rank_frequency,
    region_object_stream,
    region_profile,
    synthetic_cdn_trace,
)


class TestProfiles:
    def test_table2_parameters_embedded(self):
        assert region_profile("us").alpha == 0.99
        assert region_profile("europe").alpha == 0.92
        assert region_profile("asia").alpha == 1.04
        assert region_profile("us").num_requests == 1_100_000
        assert region_profile("europe").num_requests == 3_100_000
        assert region_profile("asia").num_requests == 1_800_000

    def test_unknown_region_rejected(self):
        with pytest.raises(KeyError):
            region_profile("antarctica")

    def test_case_insensitive(self):
        assert region_profile("ASIA") is REGIONS["asia"]


class TestObjectStream:
    def test_scaling(self, rng):
        objects, num_objects = region_object_stream("asia", rng, scale=0.01)
        assert len(objects) == 18_000
        assert num_objects == 900
        assert objects.max() < num_objects

    def test_explicit_catalog_size(self, rng):
        objects, num_objects = region_object_stream(
            "us", rng, scale=0.01, num_objects=50
        )
        assert num_objects == 50
        assert objects.max() < 50

    def test_recovers_the_published_alpha(self, rng):
        objects, num_objects = region_object_stream("asia", rng, scale=0.05)
        alpha = fit_zipf_mle(rank_frequency(objects), num_objects=num_objects)
        assert alpha == pytest.approx(1.04, abs=0.05)


class TestFullTrace:
    def test_record_fields(self, rng):
        records = synthetic_cdn_trace("us", rng, scale=0.002)
        assert len(records) == 2200
        first = records[0]
        assert first.url.startswith("https://cdn.example/")
        assert first.size >= 1
        assert len(first.client) == 16

    def test_timestamps_increase(self, rng):
        records = synthetic_cdn_trace("us", rng, scale=0.001)
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    def test_served_locally_flag_behaves_like_a_cache(self, rng):
        records = synthetic_cdn_trace("asia", rng, scale=0.005)
        # First request can never be served locally.
        assert not records[0].served_locally
        # A heavy-tailed stream through a 5% LRU hits a decent fraction.
        hit_ratio = sum(r.served_locally for r in records) / len(records)
        assert 0.1 < hit_ratio < 0.9

    def test_urls_stable_per_object(self, rng):
        records = synthetic_cdn_trace("us", rng, scale=0.002)
        by_url = {}
        for r in records:
            by_url.setdefault(r.url, set()).add(r.size)
        # One URL always has one size: URLs identify objects.
        assert all(len(sizes) == 1 for sizes in by_url.values())
