"""Tests for the chunked O(1)-memory streaming workload pipeline.

Every streamed producer has a materialized twin; the contract under
test is *bit-identity*: concatenated chunks equal the one-shot arrays,
and the caller's generator ends in the one-shot end state (so draws
after the producer never shift).
"""

import numpy as np
import pytest

from repro.topology import AccessTree, Network
from repro.workload import (
    RequestChunk,
    StreamingWorkload,
    generate_workload,
    object_ids_by_popularity,
    pop_shard,
    read_trace,
    region_object_chunks,
    region_object_stream,
    stream_synthetic_cdn_trace,
    stream_trace_objects,
    stream_workload,
    stream_workload_from_objects,
    synthetic_cdn_trace,
    workload_from_objects,
    write_trace,
)


@pytest.fixture
def network(small_topology):
    return Network(small_topology, AccessTree(arity=2, depth=3))


def concat(workload: StreamingWorkload):
    chunks = list(workload.chunks())
    return (
        np.concatenate([c.pops for c in chunks]),
        np.concatenate([c.leaves for c in chunks]),
        np.concatenate([c.objects for c in chunks]),
    )


class TestRequestChunk:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equally long"):
            RequestChunk(
                pops=np.zeros(3, dtype=np.int64),
                leaves=np.zeros(3, dtype=np.int64),
                objects=np.zeros(2, dtype=np.int64),
            )

    def test_len(self):
        chunk = RequestChunk(
            pops=np.zeros(5, dtype=np.int64),
            leaves=np.zeros(5, dtype=np.int64),
            objects=np.zeros(5, dtype=np.int64),
        )
        assert len(chunk) == 5


class TestWorkloadChunks:
    """Materialized workloads speak the same chunk protocol."""

    def test_default_is_one_full_chunk(self, network):
        workload = generate_workload(
            network, 50, 1_000, 1.0, np.random.default_rng(0)
        )
        chunks = list(workload.chunks())
        assert len(chunks) == 1
        assert np.shares_memory(chunks[0].objects, workload.objects)

    def test_explicit_chunk_size_partitions(self, network):
        workload = generate_workload(
            network, 50, 1_000, 1.0, np.random.default_rng(0)
        )
        chunks = list(workload.chunks(chunk_size=333))
        assert [len(c) for c in chunks] == [333, 333, 333, 1]
        assert np.array_equal(
            np.concatenate([c.objects for c in chunks]), workload.objects
        )
        with pytest.raises(ValueError):
            list(workload.chunks(chunk_size=0))


class TestStreamWorkload:
    @pytest.mark.parametrize("spatial_skew", [0.0, 0.5])
    def test_bit_identical_to_generate_workload(self, network, spatial_skew):
        rng_m = np.random.default_rng(13)
        rng_s = np.random.default_rng(13)
        materialized = generate_workload(
            network, 100, 7_001, 1.04, rng_m, spatial_skew=spatial_skew
        )
        streamed = stream_workload(
            network, 100, 7_001, 1.04, rng_s,
            spatial_skew=spatial_skew, chunk_size=512,
        )
        pops, leaves, objects = concat(streamed)
        assert np.array_equal(pops, materialized.pops)
        assert np.array_equal(leaves, materialized.leaves)
        assert np.array_equal(objects, materialized.objects)
        assert np.array_equal(streamed.sizes, materialized.sizes)
        assert np.array_equal(streamed.origins, materialized.origins)
        assert streamed.num_requests == materialized.num_requests
        # The caller's generator must land in the one-shot end state.
        assert rng_s.bit_generator.state == rng_m.bit_generator.state

    def test_chunks_are_re_iterable(self, network):
        streamed = stream_workload(
            network, 50, 2_000, 1.0, np.random.default_rng(5), chunk_size=300
        )
        first = np.concatenate([c.objects for c in streamed.chunks()])
        second = np.concatenate([c.objects for c in streamed.chunks()])
        assert np.array_equal(first, second)

    def test_invalid_arguments(self, network):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            stream_workload(network, 10, -1, 1.0, rng)
        with pytest.raises(ValueError):
            stream_workload(network, 10, 10, 1.0, rng, chunk_size=0)


class TestStreamWorkloadFromObjects:
    def test_bit_identical_to_workload_from_objects(self, network):
        objects = (np.random.default_rng(1).random(4_000) ** 2 * 40).astype(
            np.int64
        )
        rng_m = np.random.default_rng(21)
        rng_s = np.random.default_rng(21)
        materialized = workload_from_objects(network, objects, 40, rng_m)

        def object_chunks():
            for start in range(0, len(objects), 700):
                yield objects[start : start + 700]

        streamed = stream_workload_from_objects(
            network, object_chunks, 40, len(objects), rng_s, chunk_size=700
        )
        pops, leaves, streamed_objects = concat(streamed)
        assert np.array_equal(pops, materialized.pops)
        assert np.array_equal(leaves, materialized.leaves)
        assert np.array_equal(streamed_objects, materialized.objects)
        assert np.array_equal(streamed.origins, materialized.origins)
        assert rng_s.bit_generator.state == rng_m.bit_generator.state

    def test_out_of_range_ids_rejected(self, network):
        streamed = stream_workload_from_objects(
            network,
            lambda: iter([np.asarray([0, 5], dtype=np.int64)]),
            3,
            2,
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="out of range"):
            list(streamed.chunks())

    def test_length_mismatch_rejected(self, network):
        streamed = stream_workload_from_objects(
            network,
            lambda: iter([np.zeros(3, dtype=np.int64)]),
            3,
            5,
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="yielded 3"):
            list(streamed.chunks())


class TestRegionObjectChunks:
    def test_bit_identical_to_region_object_stream(self):
        rng_m = np.random.default_rng(3)
        rng_s = np.random.default_rng(3)
        one_shot, num_objects = region_object_stream("asia", rng_m, scale=0.01)
        factory, chunk_objects, num_requests = region_object_chunks(
            "asia", rng_s, scale=0.01, chunk_size=999
        )
        assert chunk_objects == num_objects
        assert num_requests == len(one_shot)
        assert np.array_equal(np.concatenate(list(factory())), one_shot)
        assert rng_s.bit_generator.state == rng_m.bit_generator.state


class TestStreamSyntheticCdnTrace:
    def test_identical_record_sequence(self):
        rng_m = np.random.default_rng(9)
        rng_s = np.random.default_rng(9)
        one_shot = synthetic_cdn_trace("us", rng_m, scale=0.005)
        streamed = list(
            stream_synthetic_cdn_trace("us", rng_s, scale=0.005, chunk_size=313)
        )
        # Timestamps accumulate with the same float64 additions cumsum
        # performs, so even they are covered by exact equality here.
        assert streamed == one_shot
        assert rng_s.bit_generator.state == rng_m.bit_generator.state


class TestStreamTraceObjects:
    def test_matches_object_ids_by_popularity(self, tmp_path):
        records = synthetic_cdn_trace(
            "europe", np.random.default_rng(4), scale=0.002
        )
        path = tmp_path / "trace.tsv"
        write_trace(path, records)
        objects, url_to_id, sizes = object_ids_by_popularity(read_trace(path))
        factory, streamed_urls, streamed_sizes, num_requests = (
            stream_trace_objects(str(path), chunk_size=271)
        )
        assert streamed_urls == url_to_id
        assert np.array_equal(streamed_sizes, sizes)
        assert num_requests == len(objects)
        assert np.array_equal(np.concatenate(list(factory())), objects)

    def test_skips_counted_once(self, tmp_path):
        from repro.obs import MetricsRegistry
        from repro.workload import SKIPPED_LINES_METRIC, TraceRecord

        path = tmp_path / "trace.tsv"
        good = TraceRecord(
            timestamp=1.0, client="c", url="u", size=9, served_locally=False
        )
        path.write_text(good.to_line() + "\nbroken\tline\n")
        registry = MetricsRegistry()
        factory, _, _, num_requests = stream_trace_objects(
            str(path), registry=registry
        )
        assert num_requests == 1
        # Replaying chunks re-reads the file but must not recount skips.
        list(factory())
        list(factory())
        assert registry.value(SKIPPED_LINES_METRIC, reason="truncated") == 1


class TestPopShard:
    def _streamed(self, network):
        return stream_workload(
            network, 60, 5_000, 1.0, np.random.default_rng(17), chunk_size=640
        )

    def test_shards_partition_the_stream(self, network):
        workload = self._streamed(network)
        shards = [pop_shard(workload, s, 3) for s in range(3)]
        assert sum(s.num_requests for s in shards) == workload.num_requests
        for index, shard in enumerate(shards):
            pops = np.concatenate([c.pops for c in shard.chunks()])
            assert ((pops % 3) == index).all()
            assert len(pops) == shard.num_requests

    def test_shard_preserves_order_and_tables(self, network):
        workload = self._streamed(network)
        shard = pop_shard(workload, 1, 2)
        pops, leaves, objects = concat(workload)
        keep = pops % 2 == 1
        shard_pops, shard_leaves, shard_objects = concat(shard)
        assert np.array_equal(shard_pops, pops[keep])
        assert np.array_equal(shard_leaves, leaves[keep])
        assert np.array_equal(shard_objects, objects[keep])
        assert shard.sizes is workload.sizes
        assert shard.origins is workload.origins

    def test_uncounted_shard_has_unknown_length(self, network):
        shard = pop_shard(self._streamed(network), 0, 2, count=False)
        assert shard.num_requests is None

    def test_invalid_shard_rejected(self, network):
        workload = self._streamed(network)
        with pytest.raises(ValueError):
            pop_shard(workload, 3, 3)
        with pytest.raises(ValueError):
            pop_shard(workload, -1, 3)
