"""Tests for synthetic workload generation."""

import numpy as np
import pytest

from repro.workload import (
    Workload,
    assign_origins,
    generate_workload,
    unit_sizes,
    workload_from_objects,
)


class TestWorkloadValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Workload(
                num_objects=2,
                pops=np.zeros(3, dtype=np.int64),
                leaves=np.zeros(2, dtype=np.int64),
                objects=np.zeros(3, dtype=np.int64),
                sizes=np.ones(2),
                origins=np.zeros(2, dtype=np.int64),
            )

    def test_sizes_must_cover_objects(self):
        with pytest.raises(ValueError):
            Workload(
                num_objects=5,
                pops=np.zeros(1, dtype=np.int64),
                leaves=np.zeros(1, dtype=np.int64),
                objects=np.zeros(1, dtype=np.int64),
                sizes=np.ones(3),
                origins=np.zeros(5, dtype=np.int64),
            )


class TestGenerate:
    def test_shapes_and_ranges(self, small_network, rng):
        workload = generate_workload(small_network, 100, 5000, 1.0, rng)
        assert workload.num_requests == 5000
        assert workload.objects.min() >= 0
        assert workload.objects.max() < 100
        assert workload.pops.min() >= 0
        assert workload.pops.max() < 4
        leaves = small_network.tree.leaves
        assert workload.leaves.min() >= leaves.start
        assert workload.leaves.max() < leaves.stop

    def test_pop_arrivals_follow_population(self, small_network, rng):
        workload = generate_workload(small_network, 50, 40_000, 1.0, rng)
        counts = np.bincount(workload.pops, minlength=4)
        shares = counts / counts.sum()
        assert shares[0] == pytest.approx(0.5, abs=0.02)
        assert shares[2] == pytest.approx(0.125, abs=0.02)

    def test_default_sizes_are_unit(self, small_network, rng):
        workload = generate_workload(small_network, 10, 100, 1.0, rng)
        assert np.array_equal(workload.sizes, unit_sizes(10))

    def test_spatial_skew_changes_objects_only(self, small_network):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        flat = generate_workload(small_network, 200, 3000, 1.0, rng_a,
                                 spatial_skew=0.0)
        skewed = generate_workload(small_network, 200, 3000, 1.0, rng_b,
                                   spatial_skew=0.9)
        assert np.array_equal(flat.pops, skewed.pops)
        assert not np.array_equal(flat.objects, skewed.objects)

    def test_zero_requests(self, small_network, rng):
        workload = generate_workload(small_network, 10, 0, 1.0, rng)
        assert workload.num_requests == 0

    def test_deterministic_given_seed(self, small_network):
        a = generate_workload(small_network, 50, 500, 1.0,
                              np.random.default_rng(3))
        b = generate_workload(small_network, 50, 500, 1.0,
                              np.random.default_rng(3))
        assert np.array_equal(a.objects, b.objects)
        assert np.array_equal(a.origins, b.origins)


class TestOrigins:
    def test_proportional_assignment_tracks_population(self, small_network, rng):
        origins = assign_origins(small_network, 50_000, rng)
        shares = np.bincount(origins, minlength=4) / 50_000
        assert shares[0] == pytest.approx(0.5, abs=0.02)

    def test_uniform_assignment(self, small_network, rng):
        origins = assign_origins(small_network, 40_000, rng, mode="uniform")
        shares = np.bincount(origins, minlength=4) / 40_000
        assert np.allclose(shares, 0.25, atol=0.02)

    def test_unknown_mode_rejected(self, small_network, rng):
        with pytest.raises(ValueError):
            assign_origins(small_network, 10, rng, mode="hash")


class TestTraceDriven:
    def test_wraps_object_sequence_verbatim(self, small_network, rng):
        objects = np.array([0, 1, 2, 1, 0], dtype=np.int64)
        workload = workload_from_objects(small_network, objects, 3, rng)
        assert np.array_equal(workload.objects, objects)
        assert workload.num_objects == 3
        assert workload.num_requests == 5

    def test_out_of_range_ids_rejected(self, small_network, rng):
        with pytest.raises(ValueError):
            workload_from_objects(
                small_network, np.array([0, 5]), 3, rng
            )
