"""Tests for the temporal-locality workload model."""

import numpy as np
import pytest

from repro.workload import (
    flash_crowd_profile,
    generate_temporal_workload,
    repeat_distance_profile,
    temporal_objects,
)


class TestTemporalObjects:
    def test_zero_locality_is_iid_zipf(self, rng):
        pops = np.zeros(20_000, dtype=np.int64)
        objects = temporal_objects(pops, 500, 1.0, 0.0, 100, rng)
        # Rank-frequency should look Zipf: top object ~ p_0 share.
        counts = np.bincount(objects, minlength=500)
        assert counts[0] > counts[50]
        assert objects.max() < 500

    def test_high_locality_increases_short_repeats(self):
        pops = np.zeros(20_000, dtype=np.int64)
        iid = temporal_objects(pops, 2000, 0.8, 0.0, 100,
                               np.random.default_rng(1))
        bursty = temporal_objects(pops, 2000, 0.8, 0.7, 100,
                                  np.random.default_rng(1))
        iid_profile = repeat_distance_profile(iid, 100)
        bursty_profile = repeat_distance_profile(bursty, 100)
        assert bursty_profile[-1] > iid_profile[-1] + 0.2

    def test_locality_is_pop_scoped(self, rng):
        # With two pops, bursts at pop 0 must reuse pop-0 objects only.
        pops = np.array([0, 1] * 5000, dtype=np.int64)
        objects = temporal_objects(pops, 5000, 1.0, 1.0, 50, rng)
        # Fully local stream: after the first draw per pop, every object
        # at a pop was seen at that pop before (within the window).
        seen = {0: set(), 1: set()}
        fresh = 0
        for pop, obj in zip(pops, objects):
            if obj not in seen[pop]:
                fresh += 1
            seen[pop].add(obj)
        # locality=1 still draws fresh when history is empty, and window
        # eviction allows occasional re-draws; fresh stays small.
        assert fresh < len(objects) * 0.05

    def test_invalid_parameters(self, rng):
        pops = np.zeros(10, dtype=np.int64)
        with pytest.raises(ValueError):
            temporal_objects(pops, 10, 1.0, 1.5, 10, rng)
        with pytest.raises(ValueError):
            temporal_objects(pops, 10, 1.0, 0.5, 0, rng)


class TestGenerateTemporalWorkload:
    def test_shapes(self, small_network, rng):
        workload = generate_temporal_workload(
            small_network, 200, 5000, 1.0, rng, locality=0.5
        )
        assert workload.num_requests == 5000
        assert workload.objects.max() < 200
        assert workload.pops.max() < 4

    def test_locality_raises_lru_hit_ratio(self, small_network):
        """The point of the model: temporal locality is what makes LRU
        look near-optimal (EXPERIMENTS.md note 5)."""
        from repro.core import EDGE, Simulator

        budgets = [10.0] * small_network.num_nodes
        results = {}
        for locality in (0.0, 0.7):
            workload = generate_temporal_workload(
                small_network, 2000, 30_000, 0.8,
                np.random.default_rng(5), locality=locality, window=100,
            )
            result = Simulator(small_network, EDGE, workload, budgets,
                               warmup_fraction=0.2).run()
            results[locality] = result.cache_hit_ratio
        assert results[0.7] > results[0.0] + 0.15


class TestRepeatDistanceProfile:
    def test_simple_stream(self):
        objects = np.array([1, 1, 2, 1, 2])
        profile = repeat_distance_profile(objects, 3)
        # lags: 1 (1->1), 2 (1->1 at distance 2), 2 (2->2).
        assert profile[0] == pytest.approx(1 / 5)
        assert profile[1] == pytest.approx(3 / 5)
        assert profile[2] == pytest.approx(3 / 5)

    def test_monotone_cumulative(self, rng):
        objects = rng.integers(0, 50, size=2000)
        profile = repeat_distance_profile(objects, 200)
        assert np.all(np.diff(profile) >= 0)
        assert profile[-1] <= 1.0

    def test_empty(self):
        assert repeat_distance_profile(np.array([], dtype=int), 5).sum() == 0


class TestFlashCrowdProfile:
    def test_same_seed_is_byte_identical(self):
        profiles = [
            flash_crowd_profile(
                5000, 60.0, np.random.default_rng(42), intensity=20.0,
                num_regions=3, regional_correlation=0.5,
            )
            for _ in range(2)
        ]
        assert (profiles[0].times.tobytes()
                == profiles[1].times.tobytes())
        assert (profiles[0].objects.tobytes()
                == profiles[1].objects.tobytes())
        assert (profiles[0].regions.tobytes()
                == profiles[1].regions.tobytes())

    def test_times_sorted_and_in_range(self, rng):
        profile = flash_crowd_profile(2000, 60.0, rng, intensity=10.0)
        assert np.all(np.diff(profile.times) >= 0)
        assert profile.times.min() >= 0.0
        assert profile.times.max() <= 60.0
        assert profile.num_requests == 2000

    def test_arrivals_concentrate_around_burst(self, rng):
        profile = flash_crowd_profile(20_000, 60.0, rng, intensity=30.0)
        near = np.abs(profile.times - profile.burst_time) < 6.0
        # A fifth of the timeline holds well over half the arrivals.
        assert near.mean() > 0.5

    def test_intensity_one_is_flat(self, rng):
        profile = flash_crowd_profile(20_000, 60.0, rng, intensity=1.0)
        near = np.abs(profile.times - profile.burst_time) < 6.0
        assert near.mean() < 0.3

    def test_hot_object_dominates_the_burst(self, rng):
        profile = flash_crowd_profile(
            20_000, 60.0, rng, intensity=20.0, hot_object=3,
            hot_fraction=0.9,
        )
        near = np.abs(profile.times - profile.burst_time) < 3.0
        hot_share = (profile.objects[near] == 3).mean()
        far = profile.times > profile.burst_time + 20.0
        far_share = (profile.objects[far] == 3).mean()
        assert hot_share > 0.6
        assert hot_share > far_share + 0.3

    def test_regional_correlation_concentrates_the_crowd(self, rng):
        profile = flash_crowd_profile(
            20_000, 60.0, rng, intensity=20.0, num_regions=4,
            crowd_region=2, regional_correlation=0.9,
        )
        near = np.abs(profile.times - profile.burst_time) < 3.0
        assert (profile.regions[near] == 2).mean() > 0.6
        assert profile.regions.max() < 4

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            flash_crowd_profile(0, 60.0, rng)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 0.0, rng)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, intensity=0.5)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, hot_fraction=1.5)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, regional_correlation=-0.1)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, hot_object=100)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, num_regions=0)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, crowd_region=5)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, burst_time=100.0)
        with pytest.raises(ValueError):
            flash_crowd_profile(100, 60.0, rng, onset=0.0)
