"""Tests for object-size models."""

import numpy as np
import pytest

from repro.workload import lognormal_sizes, normalized_sizes, unit_sizes


class TestUnitSizes:
    def test_all_ones(self):
        sizes = unit_sizes(10)
        assert np.array_equal(sizes, np.ones(10))

    def test_empty(self):
        assert unit_sizes(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            unit_sizes(-1)


class TestLognormalSizes:
    def test_positive_and_heavy_tailed(self, rng):
        sizes = lognormal_sizes(50_000, rng)
        assert (sizes > 0).all()
        # Heavy tail: the mean far exceeds the median.
        assert sizes.mean() > 2 * np.median(sizes)

    def test_median_parameter_respected(self, rng):
        sizes = lognormal_sizes(100_000, rng, median=500.0, sigma=1.0)
        assert np.median(sizes) == pytest.approx(500.0, rel=0.05)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            lognormal_sizes(10, rng, median=0)
        with pytest.raises(ValueError):
            lognormal_sizes(10, rng, sigma=-1)
        with pytest.raises(ValueError):
            lognormal_sizes(-1, rng)


class TestNormalizedSizes:
    def test_mean_is_one(self, rng):
        sizes = normalized_sizes(lognormal_sizes(10_000, rng))
        assert sizes.mean() == pytest.approx(1.0)

    def test_relative_spread_preserved(self, rng):
        raw = lognormal_sizes(1000, rng)
        normalized = normalized_sizes(raw)
        assert normalized.max() / normalized.min() == pytest.approx(
            raw.max() / raw.min()
        )

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            normalized_sizes(np.zeros(5))
