"""Tests for the truncated Zipf distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import ZipfDistribution


class TestProbabilities:
    def test_sum_to_one(self):
        zipf = ZipfDistribution(alpha=1.0, num_objects=100)
        assert zipf.probabilities.sum() == pytest.approx(1.0)

    def test_monotone_nonincreasing(self):
        zipf = ZipfDistribution(alpha=0.8, num_objects=50)
        probs = zipf.probabilities
        assert np.all(np.diff(probs) <= 1e-15)

    def test_alpha_zero_is_uniform(self):
        zipf = ZipfDistribution(alpha=0.0, num_objects=10)
        assert np.allclose(zipf.probabilities, 0.1)

    def test_pmf_ratio_follows_power_law(self):
        zipf = ZipfDistribution(alpha=2.0, num_objects=10)
        assert zipf.pmf(0) / zipf.pmf(1) == pytest.approx(4.0)

    def test_pmf_out_of_range(self):
        zipf = ZipfDistribution(alpha=1.0, num_objects=5)
        with pytest.raises(ValueError):
            zipf.pmf(5)
        with pytest.raises(ValueError):
            zipf.pmf(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfDistribution(alpha=-1.0, num_objects=10)
        with pytest.raises(ValueError):
            ZipfDistribution(alpha=1.0, num_objects=0)


class TestHeadMass:
    def test_full_head_is_one(self):
        zipf = ZipfDistribution(alpha=1.0, num_objects=20)
        assert zipf.head_mass(20) == pytest.approx(1.0)
        assert zipf.head_mass(100) == pytest.approx(1.0)

    def test_zero_head_is_zero(self):
        zipf = ZipfDistribution(alpha=1.0, num_objects=20)
        assert zipf.head_mass(0) == 0.0

    def test_higher_alpha_concentrates_mass(self):
        low = ZipfDistribution(alpha=0.6, num_objects=1000)
        high = ZipfDistribution(alpha=1.4, num_objects=1000)
        assert high.head_mass(50) > low.head_mass(50)


class TestSampling:
    def test_sample_shape_and_range(self, rng):
        zipf = ZipfDistribution(alpha=1.0, num_objects=100)
        sample = zipf.sample(rng, 10_000)
        assert sample.shape == (10_000,)
        assert sample.min() >= 0
        assert sample.max() < 100

    def test_empirical_frequencies_match_pmf(self, rng):
        zipf = ZipfDistribution(alpha=1.0, num_objects=50)
        sample = zipf.sample(rng, 200_000)
        counts = np.bincount(sample, minlength=50)
        empirical = counts / counts.sum()
        assert np.abs(empirical[:5] - zipf.probabilities[:5]).max() < 0.01

    def test_zero_size_sample(self, rng):
        zipf = ZipfDistribution(alpha=1.0, num_objects=10)
        assert zipf.sample(rng, 0).shape == (0,)

    def test_negative_size_rejected(self, rng):
        zipf = ZipfDistribution(alpha=1.0, num_objects=10)
        with pytest.raises(ValueError):
            zipf.sample(rng, -1)

    def test_deterministic_given_seed(self):
        zipf = ZipfDistribution(alpha=1.0, num_objects=100)
        a = zipf.sample(np.random.default_rng(1), 100)
        b = zipf.sample(np.random.default_rng(1), 100)
        assert np.array_equal(a, b)


class TestChunkedSampling:
    """sample() draws bounded blocks; the draws must stay bit-identical."""

    def test_chunked_sample_matches_one_shot(self, monkeypatch):
        import repro.workload.zipf as zipf_module

        zipf = ZipfDistribution(alpha=1.04, num_objects=50)
        one_shot = zipf.sample(np.random.default_rng(7), 10_000)
        # Force many internal blocks (including a ragged final one).
        monkeypatch.setattr(zipf_module, "SAMPLE_CHUNK", 257)
        rng = np.random.default_rng(7)
        chunked = zipf.sample(rng, 10_000)
        assert np.array_equal(one_shot, chunked)
        # The generator must also land in the one-shot end state, so
        # downstream draws never shift.
        reference = np.random.default_rng(7)
        reference.random(10_000)
        assert rng.bit_generator.state == reference.bit_generator.state

    def test_sample_chunks_concatenates_to_one_shot(self):
        zipf = ZipfDistribution(alpha=0.9, num_objects=30)
        one_shot = zipf.sample(np.random.default_rng(3), 5_000)
        rng = np.random.default_rng(3)
        blocks = list(zipf.sample_chunks(rng, 5_000, chunk_size=311))
        assert max(len(block) for block in blocks) <= 311
        assert np.array_equal(np.concatenate(blocks), one_shot)
        reference = np.random.default_rng(3)
        reference.random(5_000)
        assert rng.bit_generator.state == reference.bit_generator.state

    def test_sample_chunks_validates_arguments(self, rng):
        zipf = ZipfDistribution(alpha=1.0, num_objects=10)
        with pytest.raises(ValueError):
            list(zipf.sample_chunks(rng, -1))
        with pytest.raises(ValueError):
            list(zipf.sample_chunks(rng, 10, chunk_size=0))
        assert list(zipf.sample_chunks(rng, 0)) == []


class TestExpectedUnique:
    def test_bounds(self):
        zipf = ZipfDistribution(alpha=1.0, num_objects=100)
        assert 0 < zipf.expected_unique(10) <= 10
        assert zipf.expected_unique(100_000) <= 100

    def test_grows_with_requests(self):
        zipf = ZipfDistribution(alpha=1.0, num_objects=100)
        assert zipf.expected_unique(1000) > zipf.expected_unique(100)


@settings(max_examples=30)
@given(
    alpha=st.floats(min_value=0.0, max_value=2.5),
    n=st.integers(min_value=1, max_value=500),
)
def test_pmf_is_a_distribution(alpha, n):
    zipf = ZipfDistribution(alpha=alpha, num_objects=n)
    probs = zipf.probabilities
    assert probs.sum() == pytest.approx(1.0)
    assert (probs > 0).all()
    assert np.all(np.diff(probs) <= 1e-12)
