"""Tests for figure-data assembly."""

import numpy as np
import pytest

from repro.analysis import (
    improvement_rows,
    loglog_popularity,
    sweep_gap,
)
from repro.core import EDGE, ICN_NR, ExperimentConfig, Improvements


class TestImprovementRows:
    def test_rows_in_legend_order(self):
        improvements = {
            "ICN-NR": Improvements(10.0, 20.0, 30.0),
            "EDGE": Improvements(1.0, 2.0, 3.0),
        }
        rows = improvement_rows(improvements, "congestion")
        assert rows == [("ICN-NR", 20.0), ("EDGE", 2.0)]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            improvement_rows({}, "throughput")


class TestSweepGap:
    def test_collects_gap_per_value(self):
        def make_config(alpha):
            return ExperimentConfig(
                topology="abilene",
                num_objects=100,
                num_requests=2000,
                alpha=alpha,
                seed=3,
            )

        sweep = sweep_gap("alpha", [0.6, 1.2], make_config, ICN_NR, EDGE)
        assert sweep.parameter == "alpha"
        assert sweep.values == (0.6, 1.2)
        assert set(sweep.gaps) == {"latency", "congestion", "origin_load"}
        assert len(sweep.gaps["latency"]) == 2


class TestLoglogPopularity:
    def test_downsamples_to_log_spaced_ranks(self):
        counts = np.arange(1000, 0, -1)
        points = loglog_popularity(counts, points=10)
        assert points.shape[1] == 2
        assert points[0, 0] == 1
        assert points[-1, 0] <= 1000
        # Ranks strictly increasing, counts non-increasing.
        assert np.all(np.diff(points[:, 0]) > 0)
        assert np.all(np.diff(points[:, 1]) <= 0)

    def test_empty_counts(self):
        assert loglog_popularity([]).shape == (0, 2)
