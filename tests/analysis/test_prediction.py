"""Validate the analytical EDGE predictor against the simulator."""

import pytest

from repro.analysis.prediction import (
    predict_edge_hit_ratio,
    predict_edge_origin_load_reduction,
)
from repro.core import EDGE, ExperimentConfig, run_experiment
from repro.core.experiment import build_network


class TestPrediction:
    @pytest.mark.parametrize("alpha,budget", [(0.8, 0.05), (1.2, 0.05),
                                              (1.0, 0.02)])
    def test_matches_simulated_hit_ratio(self, alpha, budget):
        config = ExperimentConfig(
            topology="abilene",
            num_objects=400,
            num_requests=250_000,
            alpha=alpha,
            budget_fraction=budget,
            warmup_fraction=0.4,
            seed=17,
        )
        outcome = run_experiment(config, (EDGE,))
        simulated = outcome.results["EDGE"].cache_hit_ratio
        network = build_network(config)
        predicted = predict_edge_hit_ratio(
            network, config.num_objects, alpha, budget
        )
        assert simulated == pytest.approx(predicted, abs=0.05)

    def test_origin_reduction_tracks_total_origin_load(self):
        config = ExperimentConfig(
            topology="geant",
            num_objects=300,
            num_requests=150_000,
            warmup_fraction=0.4,
            seed=23,
        )
        outcome = run_experiment(config, (EDGE,))
        result = outcome.results["EDGE"]
        simulated_reduction = 100.0 * (
            1.0 - result.total_origin_load / result.num_requests
        )
        network = build_network(config)
        predicted = predict_edge_origin_load_reduction(
            network, config.num_objects, config.alpha,
            config.budget_fraction,
        )
        assert simulated_reduction == pytest.approx(predicted, abs=6.0)

    def test_bigger_budget_predicts_higher_hit_ratio(self):
        config = ExperimentConfig(topology="abilene", num_objects=500)
        network = build_network(config)
        small = predict_edge_hit_ratio(network, 500, 1.0, 0.01)
        large = predict_edge_hit_ratio(network, 500, 1.0, 0.2)
        assert large > small

    def test_edge_norm_multiplier_raises_prediction(self):
        config = ExperimentConfig(topology="abilene", num_objects=500)
        network = build_network(config)
        plain = predict_edge_hit_ratio(network, 500, 1.0, 0.05)
        normed = predict_edge_hit_ratio(network, 500, 1.0, 0.05,
                                        budget_multiplier=63 / 32)
        assert normed > plain
