"""Tests for Che's LRU approximation, validated against the simulator."""

import numpy as np
import pytest

from repro.analysis import characteristic_time, hit_ratio, per_object_hit_ratios
from repro.cache import LRUCache
from repro.workload import ZipfDistribution


class TestCharacteristicTime:
    def test_zero_cache(self):
        assert characteristic_time(np.array([0.5, 0.5]), 0) == 0.0

    def test_whole_catalog_is_infinite(self):
        assert characteristic_time(np.array([0.5, 0.5]), 2) == float("inf")

    def test_occupancy_identity(self):
        zipf = ZipfDistribution(1.0, 200)
        t = characteristic_time(zipf.probabilities, 30)
        occupancy = np.sum(1 - np.exp(-zipf.probabilities * t))
        assert occupancy == pytest.approx(30, rel=1e-6)

    def test_monotone_in_cache_size(self):
        zipf = ZipfDistribution(1.0, 100)
        times = [characteristic_time(zipf.probabilities, b)
                 for b in (5, 20, 50)]
        assert times == sorted(times)


class TestHitRatio:
    def test_bounds(self):
        zipf = ZipfDistribution(1.0, 100)
        assert hit_ratio(zipf.probabilities, 0) == 0.0
        assert hit_ratio(zipf.probabilities, 100) == 1.0
        assert 0 < hit_ratio(zipf.probabilities, 10) < 1

    def test_per_object_ordering(self):
        zipf = ZipfDistribution(1.2, 100)
        per_object = per_object_hit_ratios(zipf.probabilities, 10)
        # Popular objects hit more.
        assert np.all(np.diff(per_object) <= 1e-12)

    @pytest.mark.parametrize("alpha,cache_size", [(0.8, 20), (1.0, 50),
                                                  (1.3, 10)])
    def test_matches_simulated_lru(self, alpha, cache_size, rng):
        """Che's formula predicts the simulator's single-cache LRU hit
        ratio within a couple of points."""
        num_objects = 500
        zipf = ZipfDistribution(alpha, num_objects)
        cache = LRUCache(capacity=cache_size)
        stream = zipf.sample(rng, 150_000)
        warmup = 20_000
        hits = total = 0
        for i, obj in enumerate(stream):
            hit = cache.lookup(int(obj))
            if not hit:
                cache.insert(int(obj))
            if i >= warmup:
                hits += hit
                total += 1
        simulated = hits / total
        predicted = hit_ratio(zipf.probabilities, cache_size)
        assert simulated == pytest.approx(predicted, abs=0.02)
