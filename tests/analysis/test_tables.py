"""Tests for text table rendering."""

import pytest

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(
            ["name", "value"], [["a", 1.234], ["longer", 2.0]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "longer" in text

    def test_title(self):
        text = format_table(["x"], [["1"]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in text

    def test_non_float_cells_stringified(self):
        text = format_table(["v"], [[42], [None]])
        assert "42" in text and "None" in text


class TestFormatSeries:
    def test_one_column_per_series(self):
        text = format_series(
            "alpha", [0.5, 1.0],
            {"latency": [1.0, 2.0], "congestion": [3.0, 4.0]},
        )
        header = text.splitlines()[0]
        assert "alpha" in header
        assert "latency" in header and "congestion" in header
        assert len(text.splitlines()) == 4
