"""Tests for metric collection and normalization."""

import numpy as np
import pytest

from repro.core import MetricsCollector, gap, improvements


def collect(events, num_links=8, num_pops=3, name="X"):
    collector = MetricsCollector(num_links, num_pops)
    for latency, links, size, origin, coop in events:
        collector.record(latency, links, size, origin, coop)
    return collector.result(name)


class TestCollector:
    def test_aggregates(self):
        result = collect(
            [
                (3.0, [0, 1], 1.0, 2, False),
                (0.0, [], 1.0, None, False),
                (2.0, [1], 1.0, None, True),
            ]
        )
        assert result.num_requests == 3
        assert result.mean_latency == pytest.approx(5.0 / 3)
        assert result.max_link_transfers == 2.0  # link 1 used twice
        assert result.total_transfers == 3.0
        assert result.max_origin_load == 1.0
        assert result.cache_served == 1
        assert result.coop_served == 1
        assert result.cache_hit_ratio == pytest.approx(2 / 3)

    def test_sizes_weight_congestion(self):
        result = collect([(1.0, [4], 3.5, None, False)])
        assert result.max_link_transfers == 3.5

    def test_empty_run(self):
        result = collect([])
        assert result.mean_latency == 0.0
        assert result.max_link_transfers == 0.0
        assert result.cache_hit_ratio == 0.0

    def test_origin_loads_tracked_per_pop(self):
        result = collect(
            [(1.0, [], 1.0, 0, False)] * 3 + [(1.0, [], 1.0, 1, False)]
        )
        assert result.origin_serves.tolist() == [3.0, 1.0, 0.0]
        assert result.total_origin_load == 4.0


class TestImprovements:
    def _baseline(self):
        return collect(
            [(10.0, [0], 1.0, 0, False)] * 10, name="NO-CACHE"
        )

    def test_normalization(self):
        baseline = self._baseline()
        cached = collect(
            [(5.0, [0], 1.0, 0, False)] * 5
            + [(0.0, [], 1.0, None, False)] * 5,
            name="EDGE",
        )
        imp = improvements(cached, baseline)
        assert imp.latency == pytest.approx(75.0)
        assert imp.congestion == pytest.approx(50.0)
        assert imp.origin_load == pytest.approx(50.0)

    def test_mismatched_request_counts_rejected(self):
        baseline = self._baseline()
        short = collect([(1.0, [], 1.0, 0, False)])
        with pytest.raises(ValueError):
            improvements(short, baseline)

    def test_no_caching_improves_nothing(self):
        baseline = self._baseline()
        imp = improvements(baseline, baseline)
        assert imp.latency == 0.0
        assert imp.congestion == 0.0
        assert imp.origin_load == 0.0

    def test_as_dict_and_minmax(self):
        baseline = self._baseline()
        cached = collect(
            [(2.0, [0], 1.0, None, False)] * 10, name="X"
        )
        imp = improvements(cached, baseline)
        d = imp.as_dict()
        assert set(d) == {"latency", "congestion", "origin_load"}
        assert imp.min() <= imp.max()


class TestDegenerateBaselines:
    """A zero no-cache baseline yields NaN ("undefined"), never 0.0."""

    def _zero_latency_baseline(self):
        # Every request served at distance 0 with no link crossings and
        # no origin involvement: all three baselines are degenerate.
        return collect([(0.0, [], 1.0, None, False)] * 4, name="NC")

    def test_zero_baseline_gives_nan_not_zero(self):
        baseline = self._zero_latency_baseline()
        cached = collect([(0.0, [], 1.0, None, False)] * 4)
        imp = improvements(cached, baseline)
        assert np.isnan(imp.latency)
        assert np.isnan(imp.congestion)
        assert np.isnan(imp.origin_load)

    def test_minmax_skip_nan_metrics(self):
        baseline = collect([(10.0, [], 1.0, None, False)] * 4, name="NC")
        # Latency baseline is positive; congestion/origin baselines are
        # zero, so only latency is defined.
        cached = collect([(5.0, [], 1.0, None, False)] * 4)
        imp = improvements(cached, baseline)
        assert imp.latency == pytest.approx(50.0)
        assert np.isnan(imp.congestion)
        assert imp.min() == pytest.approx(50.0)
        assert imp.max() == pytest.approx(50.0)

    def test_minmax_all_nan_is_nan(self):
        baseline = self._zero_latency_baseline()
        imp = improvements(baseline, baseline)
        assert np.isnan(imp.min())
        assert np.isnan(imp.max())

    def test_nan_propagates_through_gap(self):
        baseline = self._zero_latency_baseline()
        imp = improvements(baseline, baseline)
        g = gap(imp, imp)
        assert np.isnan(g.latency)
        assert np.isnan(g.congestion)
        assert np.isnan(g.origin_load)


class TestGap:
    def test_subtraction(self):
        baseline = collect([(10.0, [0], 1.0, 0, False)] * 4, name="NC")
        a = improvements(
            collect([(2.0, [0], 1.0, None, False)] * 4), baseline
        )
        b = improvements(
            collect([(4.0, [0], 1.0, 0, False)] * 4), baseline
        )
        g = gap(a, b)
        assert g.latency == pytest.approx(a.latency - b.latency)
        assert g.origin_load == pytest.approx(100.0)
