"""Tests for the serving-capacity model."""

import pytest

from repro.core import CapacityModel, CapacityTracker


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityModel(per_window=0)
        with pytest.raises(ValueError):
            CapacityModel(per_window=1, window=0)


class TestTracker:
    def test_limit_enforced_within_window(self):
        tracker = CapacityTracker(CapacityModel(per_window=2, window=100), 4)
        assert tracker.try_serve(0, 0)
        assert tracker.try_serve(0, 1)
        assert not tracker.try_serve(0, 2)
        assert tracker.rejections == 1

    def test_window_rollover_resets_counts(self):
        tracker = CapacityTracker(CapacityModel(per_window=1, window=10), 2)
        assert tracker.try_serve(0, 0)
        assert not tracker.try_serve(0, 5)
        assert tracker.try_serve(0, 10)  # new window

    def test_nodes_counted_independently(self):
        tracker = CapacityTracker(CapacityModel(per_window=1, window=10), 3)
        assert tracker.try_serve(0, 0)
        assert tracker.try_serve(1, 1)
        assert not tracker.try_serve(0, 2)

    def test_force_serve_counts_against_window(self):
        tracker = CapacityTracker(CapacityModel(per_window=1, window=10), 2)
        tracker.force_serve(0, 0)
        assert not tracker.try_serve(0, 1)
        assert tracker.rejections == 1

    def test_force_serve_rolls_window(self):
        tracker = CapacityTracker(CapacityModel(per_window=1, window=10), 2)
        tracker.force_serve(0, 0)
        tracker.force_serve(0, 10)
        assert not tracker.try_serve(0, 11)
