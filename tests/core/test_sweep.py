"""The parallel sweep runner: determinism, retries, and seed hygiene.

The contracts under test:

* worker count is invisible — serial and parallel execution of the same
  grid produce field-for-field identical results;
* failures are never silent — a raising point is retried per the
  :class:`RetryPolicy` and, if it keeps failing, lands in
  ``failures`` with its error history (results ∪ failures always
  covers every submitted key);
* per-point seeds derived from one base seed never collide, and the
  derivation is itself deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ICN_SP,
    ExperimentConfig,
    SweepPoint,
    improvements,
    merge_sharded_results,
    run_experiment,
    run_sweep,
    seeded_configs,
    shard_points,
    spawn_seeds,
)
from repro.idicn.retry import RetryPolicy
from repro.obs.progress import ProgressReporter

SMALL = ExperimentConfig(
    num_requests=2_000, num_objects=100, tree_depth=2, seed=7
)


def _points(n: int = 4) -> list[SweepPoint]:
    configs = seeded_configs(
        2013, [SMALL.with_(alpha=0.7 + 0.1 * i) for i in range(n)]
    )
    return [
        SweepPoint(key=f"alpha-{i}", config=config, architectures=(ICN_SP,))
        for i, config in enumerate(configs)
    ]


def _fingerprint(outcome):
    return {
        key: (
            result.baseline.total_latency,
            result.results["ICN-SP"].total_latency,
            result.results["ICN-SP"].max_link_transfers,
            result.results["ICN-SP"].total_origin_load,
        )
        for key, result in outcome.results.items()
    }


@pytest.mark.parametrize("workers", [2, 3])
@pytest.mark.parametrize("chunk_size", [1, 2, None])
def test_parallel_equals_serial(workers, chunk_size):
    points = _points()
    serial = run_sweep(points, workers=0)
    parallel = run_sweep(points, workers=workers, chunk_size=chunk_size)
    assert not serial.failures and not parallel.failures
    assert _fingerprint(serial) == _fingerprint(parallel)


def _flaky_runner(point, engine, fail_keys=frozenset(), always=False):
    # Module-level so it pickles into worker processes.
    if point.key in fail_keys and (
        always or _flaky_runner.seen.setdefault(point.key, 0) < 1
    ):
        _flaky_runner.seen[point.key] = (
            _flaky_runner.seen.get(point.key, 0) + 1
        )
        raise RuntimeError(f"injected fault at {point.key}")
    from repro.core.sweep import _run_point

    return _run_point(point, engine)


_flaky_runner.seen = {}


def _always_failing_runner(point, engine):
    raise RuntimeError(f"injected fault at {point.key}")


def _fail_once_runner(point, engine):
    return _flaky_runner(point, engine, fail_keys={"alpha-1"})


def test_transient_failure_is_retried_serial():
    """A point that fails once succeeds on retry (attempts recorded)."""
    _flaky_runner.seen.clear()
    points = _points(3)
    outcome = run_sweep(
        points,
        workers=0,
        runner=_fail_once_runner,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
    )
    assert not outcome.failures
    assert set(outcome.results) == {p.key for p in points}
    assert outcome.attempts["alpha-1"] == 2
    assert outcome.attempts["alpha-0"] == 1


def test_permanent_failure_is_reported_never_dropped():
    """A point that always fails shows up in failures with its history."""
    points = _points(3)
    policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
    for workers in (0, 2):
        outcome = run_sweep(
            points,
            workers=workers,
            runner=_always_failing_runner,
            retry_policy=policy,
        )
        assert set(outcome.failures) == {p.key for p in points}
        assert not outcome.results
        for errors in outcome.failures.values():
            assert len(errors) == policy.max_attempts
            assert "injected fault" in errors[-1]
        with pytest.raises(RuntimeError, match="injected fault"):
            outcome.raise_on_failure()


def test_results_and_failures_cover_all_keys():
    """One bad point never takes down its chunk-mates."""
    points = _points(5)

    outcome = run_sweep(
        points,
        workers=2,
        chunk_size=2,
        runner=_bad_middle_runner,
        retry_policy=None,
    )
    assert set(outcome.results) | set(outcome.failures) == {
        p.key for p in points
    }
    assert set(outcome.failures) == {"alpha-2"}


def _bad_middle_runner(point, engine):
    if point.key == "alpha-2":
        raise ValueError("poisoned point")
    from repro.core.sweep import _run_point

    return _run_point(point, engine)


def test_duplicate_keys_rejected():
    point = _points(1)[0]
    with pytest.raises(ValueError, match="unique"):
        run_sweep([point, point], workers=0)


def test_empty_sweep():
    outcome = run_sweep([], workers=4)
    assert not outcome.results and not outcome.failures


def test_spawn_seeds_are_distinct_and_deterministic():
    seeds = spawn_seeds(2013, 64)
    assert len(set(seeds)) == 64
    assert seeds == spawn_seeds(2013, 64)
    assert seeds[:16] == spawn_seeds(2013, 16)
    assert spawn_seeds(2014, 64) != seeds


def test_seeded_configs_gives_every_point_its_own_stream():
    configs = seeded_configs(2013, [SMALL] * 8)
    seeds = [config.seed for config in configs]
    assert len(set(seeds)) == 8
    # Same base seed -> same derived seeds (reproducible grids).
    again = seeded_configs(2013, [SMALL] * 8)
    assert [config.seed for config in again] == seeds


STREAMED = SMALL.with_(warmup_fraction=0.0, seed=11)


def _whole_point() -> SweepPoint:
    return SweepPoint(key="big", config=STREAMED, architectures=(ICN_SP,))


def test_shard_points_split_and_keys():
    shards = shard_points(_whole_point(), 3)
    assert [s.key for s in shards] == [
        f"big/shard-{i}-of-3" for i in range(3)
    ]
    assert [s.shard for s in shards] == [(0, 3), (1, 3), (2, 3)]
    with pytest.raises(ValueError, match="num_shards"):
        shard_points(_whole_point(), 0)


def test_shard_and_objects_are_mutually_exclusive():
    trace_point = SweepPoint(
        key="trace",
        config=STREAMED,
        architectures=(ICN_SP,),
        objects=np.zeros(4, dtype=np.int64),
    )
    with pytest.raises(ValueError, match="trace objects"):
        shard_points(trace_point, 2)
    both = SweepPoint(
        key="both",
        config=STREAMED,
        architectures=(ICN_SP,),
        objects=np.zeros(4, dtype=np.int64),
        shard=(0, 2),
    )
    outcome = run_sweep([both], workers=0, retry_policy=None)
    assert "shard and objects" in outcome.failures["both"][-1]


def test_sharded_parallel_equals_serial():
    """PoP shards behave like any other grid points across workers."""
    shards = shard_points(_whole_point(), 3)
    serial = run_sweep(shards, workers=0)
    parallel = run_sweep(shards, workers=2)
    assert not serial.failures and not parallel.failures
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_merged_shards_match_unsharded_run(results_identical):
    """At warmup=0 the shards partition the stream: the baseline merge
    is *exact* (no state couples the shards), while cached results are
    additive approximations — each shard warms its own caches, so
    cross-shard backbone hits are not reproduced."""
    point = _whole_point()
    shards = shard_points(point, 3)
    outcome = run_sweep(shards, workers=2)
    assert not outcome.failures
    merged = merge_sharded_results(
        point, [outcome.results[s.key] for s in shards]
    )
    whole = run_experiment(point.config, point.architectures, engine="fast")
    results_identical(merged.baseline, whole.baseline)
    sharded_sp = merged.results["ICN-SP"]
    whole_sp = whole.results["ICN-SP"]
    assert sharded_sp.num_requests == whole_sp.num_requests
    # Seed-pinned sanity band, not a tolerance contract: losing the
    # cross-shard cache hits can only cost a few percent of latency.
    assert whole_sp.total_latency <= sharded_sp.total_latency
    assert sharded_sp.total_latency <= 1.05 * whole_sp.total_latency
    # Improvements are recomputed against the merged (exact) baseline.
    assert merged.improvements["ICN-SP"] == improvements(
        sharded_sp, merged.baseline
    )
    with pytest.raises(ValueError, match="zero shard"):
        merge_sharded_results(point, [])


def test_sharded_sweep_heartbeats_per_shard(tmp_path):
    """Each finishing shard lands a progress heartbeat, not just the sweep."""
    shards = shard_points(_whole_point(), 3)
    progress = ProgressReporter(tmp_path / "heartbeat.json", every=1)
    outcome = run_sweep(shards, workers=0, progress=progress)
    assert not outcome.failures
    assert progress.total == 3
    assert progress.done == 3
    assert progress.writes >= 4  # start() plus one write per shard


def test_timeout_returns_partial_results():
    """A deadline of zero cancels every point before its first attempt."""
    points = _points(3)
    outcome = run_sweep(points, workers=0, timeout=0.0)
    assert set(outcome.results) | set(outcome.failures) == {
        p.key for p in points
    }
    # Nothing ever started, so every failure is a pre-start
    # cancellation (not a timeout) and recorded with zero attempts.
    assert set(outcome.cancelled) == {p.key for p in points}
    for key, errors in outcome.failures.items():
        assert any(err.startswith("cancelled:") for err in errors)
        assert outcome.attempts[key] == 0


def _slow_failing_runner(point, engine):
    import time as _time

    _time.sleep(0.4)
    raise RuntimeError(f"slow fault at {point.key}")


def test_timeout_distinguishes_started_from_cancelled():
    """Started-and-overran points say timeout; never-started say cancelled.

    Serial path: the first point starts inside the deadline, burns it,
    and fails; its retry is then refused with a ``timeout:`` error
    (the point *ran* — one recorded attempt).  The remaining points
    never start and are refused with ``cancelled:`` at zero attempts.
    """
    points = _points(3)
    outcome = run_sweep(
        points,
        workers=0,
        chunk_size=3,
        timeout=0.2,
        runner=_slow_failing_runner,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
    )
    assert set(outcome.failures) == {p.key for p in points}
    first = outcome.failures["alpha-0"]
    assert "slow fault" in first[0]
    assert first[-1].startswith("timeout:")
    assert outcome.attempts["alpha-0"] == 1
    assert set(outcome.cancelled) == {"alpha-1", "alpha-2"}
    for key in outcome.cancelled:
        assert outcome.attempts[key] == 0
        assert outcome.failures[key][-1].startswith("cancelled:")
