"""Scenario tests for the request-level simulation engine."""

import numpy as np
import pytest

from repro.core import (
    EDGE,
    EDGE_COOP,
    ICN_NR,
    ICN_NR_GLOBAL,
    ICN_SP,
    Architecture,
    CapacityModel,
    Simulator,
    simulate_no_cache,
)
from repro.workload import Workload


def make_workload(requests, origins, num_objects=None, sizes=None):
    """Build a workload from explicit (pop, leaf_local, obj) triples."""
    if num_objects is None:
        num_objects = len(origins)
    pops, leaves, objects = (
        np.array([r[i] for r in requests], dtype=np.int64) for i in range(3)
    )
    return Workload(
        num_objects=num_objects,
        pops=pops,
        leaves=leaves,
        objects=objects,
        sizes=np.ones(num_objects) if sizes is None else np.asarray(sizes,
                                                                    float),
        origins=np.array(origins, dtype=np.int64),
    )


def run(network, architecture, workload, budget=10.0, **kwargs):
    budgets = [budget] * network.num_nodes
    simulator = Simulator(network, architecture, workload, budgets, **kwargs)
    return simulator.run(), simulator


class TestEdgeBasics:
    def test_first_request_goes_to_origin(self, small_network):
        # Object 0 originates at pop 3; request from pop 0, leaf 3.
        workload = make_workload([(0, 3, 0)], origins=[3])
        result, _ = run(small_network, EDGE, workload)
        leaf = small_network.gid(0, 3)
        origin_root = small_network.root_gid(3)
        assert result.total_latency == small_network.distance(leaf, origin_root)
        assert result.max_origin_load == 1.0
        assert result.cache_served == 0

    def test_repeat_at_same_leaf_is_free(self, small_network):
        workload = make_workload([(0, 3, 0), (0, 3, 0)], origins=[3])
        result, _ = run(small_network, EDGE, workload)
        assert result.cache_served == 1
        # Second request served at distance 0.
        leaf = small_network.gid(0, 3)
        expected = small_network.distance(leaf, small_network.root_gid(3))
        assert result.total_latency == expected

    def test_repeat_at_different_leaf_misses_in_edge(self, small_network):
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        result, _ = run(small_network, EDGE, workload)
        assert result.cache_served == 0
        assert result.max_origin_load == 2.0

    def test_own_pop_origin_served_at_root(self, small_network):
        workload = make_workload([(2, 5, 0)], origins=[2])
        result, _ = run(small_network, EDGE, workload)
        assert result.total_latency == 2.0
        assert result.origin_serves[2] == 1.0


class TestResponsePathCaching:
    def test_icn_sp_caches_along_path(self, small_network):
        # After leaf 3 fetches, leaf 4 hits at their shared parent (1 hop
        # up, 2 hops total distance from leaf 4... parent is 1 hop).
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        result, sim = run(small_network, ICN_SP, workload)
        assert result.cache_served == 1
        # Leaf 4's parent (local 1) holds the object after request 1.
        parent = small_network.gid(0, 1)
        assert 0 in sim.caches[parent]
        # Second request latency: 1 hop to the parent.
        leaf = small_network.gid(0, 3)
        first = small_network.distance(leaf, small_network.root_gid(3))
        assert result.total_latency == first + 1

    def test_edge_does_not_cache_interior(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        _, sim = run(small_network, EDGE, workload)
        assert small_network.gid(0, 1) not in sim.caches

    def test_transit_pop_root_caches_in_icn(self, small_network):
        # Request from pop 1 for content at pop 2 transits pop 0 (or 3).
        workload = make_workload([(1, 3, 0)], origins=[2])
        _, sim = run(small_network, ICN_SP, workload)
        transit_pops = small_network.core_path(1, 2)[1:-1]
        assert all(
            0 in sim.caches[small_network.root_gid(p)] for p in transit_pops
        )


class TestCooperation:
    def test_sibling_serves_at_distance_two(self, small_network):
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        result, _ = run(small_network, EDGE_COOP, workload)
        assert result.coop_served == 1
        leaf3 = small_network.gid(0, 3)
        first = small_network.distance(leaf3, small_network.root_gid(3))
        assert result.total_latency == first + 2

    def test_non_siblings_do_not_cooperate(self, small_network):
        # Leaves 3 and 5 are cousins, not siblings.
        workload = make_workload([(0, 3, 0), (0, 5, 0)], origins=[3])
        result, _ = run(small_network, EDGE_COOP, workload)
        assert result.coop_served == 0
        assert result.max_origin_load == 2.0


class TestScopedNearestReplica:
    def test_ancestor_replica_preferred_over_origin(self, small_network):
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        result, _ = run(small_network, ICN_NR, workload)
        assert result.cache_served == 1
        leaf3 = small_network.gid(0, 3)
        first = small_network.distance(leaf3, small_network.root_gid(3))
        # Nearest scoped replica for leaf 4 is the shared parent at 1 hop.
        assert result.total_latency == first + 1

    def test_sibling_of_path_node_in_scope(self, small_network):
        # Leaf 5's path: 5 -> 2 -> 0; leaf 6 is 5's sibling at distance 2,
        # closer than the origin root of pop 3 (2 + core).
        workload = make_workload([(2, 6, 0), (2, 5, 0)], origins=[3])
        result, _ = run(small_network, ICN_NR, workload)
        assert result.cache_served >= 1

    def test_own_origin_closer_than_scope_tail(self, small_network):
        # Object owned by the request's own pop: the origin at the root
        # (distance 2) must win against any equal-or-farther candidate.
        workload = make_workload([(1, 3, 0)], origins=[1])
        result, _ = run(small_network, ICN_NR, workload)
        assert result.total_latency == 2.0
        assert result.origin_serves[1] == 1.0


class TestGlobalNearestReplica:
    def test_remote_replica_used_when_closer(self, small_network):
        # Pop 1 fetches object owned by pop 2 (cross-core); then a pop 0
        # request finds the replica at pop 1's root (distance 2+1) vs
        # origin pop 2 root (distance 2+1): tie -> replica preferred.
        workload = make_workload([(1, 3, 0), (0, 3, 0)], origins=[2])
        result, sim = run(small_network, ICN_NR_GLOBAL, workload)
        assert result.origin_serves[2] == 1.0
        assert result.cache_served == 1

    def test_directory_consistent_with_caches(self, small_network, rng):
        from repro.workload import generate_workload

        workload = generate_workload(small_network, 50, 2000, 1.0, rng)
        _, sim = run(small_network, ICN_NR_GLOBAL, workload, budget=5.0)
        for node, cache in sim.caches.items():
            for obj in cache:
                assert node in sim.directory.holders(obj)
        for obj in range(50):
            for holder in sim.directory.holders(obj):
                assert obj in sim.caches[holder]


class TestCapacity:
    def test_overloaded_leaf_redirects_to_origin(self, small_network):
        workload = make_workload([(0, 3, 0)] * 4, origins=[3])
        result, sim = run(
            small_network,
            EDGE,
            workload,
            capacity=CapacityModel(per_window=2, window=1000),
        )
        # Request 1 -> origin (miss); 2 and 3 -> leaf hits; 4 -> leaf
        # overloaded (2 serves used), redirected to origin.
        assert result.max_origin_load == 2.0
        assert sim.capacity_rejections == 1

    def test_no_capacity_means_no_rejections(self, small_network):
        workload = make_workload([(0, 3, 0)] * 4, origins=[3])
        _, sim = run(small_network, EDGE, workload)
        assert sim.capacity_rejections == 0


class TestSizesAndWarmup:
    def test_heterogeneous_sizes_weight_congestion(self, small_network):
        workload = make_workload(
            [(0, 3, 0)], origins=[3], sizes=[2.5]
        )
        result, _ = run(small_network, EDGE, workload)
        assert result.max_link_transfers == 2.5

    def test_warmup_excludes_early_requests(self, small_network):
        workload = make_workload([(0, 3, 0)] * 10, origins=[3])
        result, _ = run(small_network, EDGE, workload, warmup_fraction=0.5)
        assert result.num_requests == 5
        # All measured requests are warm hits.
        assert result.cache_served == 5
        assert result.total_latency == 0.0

    def test_invalid_warmup_rejected(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        with pytest.raises(ValueError):
            run(small_network, EDGE, workload, warmup_fraction=1.0)

    def test_budget_length_validated(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        with pytest.raises(ValueError):
            Simulator(small_network, EDGE, workload, budgets=[1.0])


class TestNoCacheBaseline:
    def test_every_request_hits_its_origin(self, small_network):
        workload = make_workload(
            [(0, 3, 0), (1, 4, 1), (0, 3, 0)], origins=[3, 0]
        )
        result = simulate_no_cache(small_network, workload)
        assert result.total_origin_load == 3.0
        assert result.origin_serves[3] == 2.0
        assert result.cache_served == 0

    def test_latency_is_path_length(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        result = simulate_no_cache(small_network, workload)
        leaf = small_network.gid(0, 3)
        assert result.total_latency == small_network.distance(
            leaf, small_network.root_gid(3)
        )

    def test_infinite_architecture_has_unbounded_caches(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        arch = Architecture("inf", placement="edge", infinite=True)
        _, sim = run(small_network, arch, workload, budget=0.0)
        leaf = small_network.gid(0, 3)
        assert 0 in sim.caches[leaf]
