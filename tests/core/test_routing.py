"""Tests for the nearest-replica directory oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReplicaDirectory


class TestDirectoryBookkeeping:
    def test_empty_directory(self, small_network):
        directory = ReplicaDirectory(small_network)
        assert directory.nearest(0, small_network.gid(0, 3)) is None
        assert directory.num_replicas(0) == 0
        assert directory.holders(0) == []

    def test_add_and_remove(self, small_network):
        directory = ReplicaDirectory(small_network)
        node = small_network.gid(1, 4)
        directory.add(7, node)
        assert directory.num_replicas(7) == 1
        assert directory.holders(7) == [node]
        directory.remove(7, node)
        assert directory.num_replicas(7) == 0

    def test_remove_unknown_raises(self, small_network):
        directory = ReplicaDirectory(small_network)
        with pytest.raises(KeyError):
            directory.remove(3, small_network.gid(0, 0))


class TestNearestQueries:
    def test_replica_at_request_leaf_wins(self, small_network):
        directory = ReplicaDirectory(small_network)
        leaf = small_network.gid(2, 5)
        directory.add(1, small_network.gid(0, 0))
        directory.add(1, leaf)
        assert directory.nearest(1, leaf) == (leaf, 0)

    def test_same_tree_replica_beats_remote(self, small_network):
        directory = ReplicaDirectory(small_network)
        leaf = small_network.gid(1, 3)
        sibling = small_network.gid(1, 4)
        remote = small_network.gid(3, 3)
        directory.add(9, sibling)
        directory.add(9, remote)
        node, dist = directory.nearest(9, leaf)
        assert node == sibling
        assert dist == 2

    def test_remote_distance_math(self, small_network):
        directory = ReplicaDirectory(small_network)
        leaf = small_network.gid(0, 3)  # depth 2 in pop 0
        remote_root = small_network.gid(3, 0)  # root of pop 3
        directory.add(4, remote_root)
        node, dist = directory.nearest(4, leaf)
        assert node == remote_root
        # depth 2 up + 2 core hops + depth 0 down.
        assert dist == 4

    def test_prefers_shallow_remote_holder(self, small_network):
        directory = ReplicaDirectory(small_network)
        leaf = small_network.gid(0, 3)
        directory.add(2, small_network.gid(1, 5))  # remote leaf (deep)
        directory.add(2, small_network.gid(1, 0))  # remote root (shallow)
        node, dist = directory.nearest(2, leaf)
        assert node == small_network.gid(1, 0)
        assert dist == 2 + 1 + 0

    def test_nearest_matches_exhaustive_search(self, small_network, rng):
        directory = ReplicaDirectory(small_network)
        holders = [3, 9, 16, 20, 26]
        for node in holders:
            directory.add(5, node)
        for pop in range(4):
            for leaf_local in small_network.tree.leaves:
                leaf = small_network.gid(pop, leaf_local)
                node, dist = directory.nearest(5, leaf)
                best = min(
                    small_network.distance(leaf, h) for h in holders
                )
                assert dist == best
                assert small_network.distance(leaf, node) == dist


def _diamond_network():
    from repro.topology import AccessTree, Network, Pop, PopTopology

    topo = PopTopology(
        name="diamond",
        pops=(
            Pop(0, "A", 4), Pop(1, "B", 2), Pop(2, "C", 1), Pop(3, "D", 1),
        ),
        edges=((0, 1), (0, 2), (1, 3), (2, 3)),
    )
    return Network(topo, AccessTree(2, 2))


_NETWORK = _diamond_network()


@settings(max_examples=40, deadline=None)
@given(
    holders=st.sets(st.integers(min_value=0, max_value=27), min_size=1,
                    max_size=10),
    leaf_local=st.integers(min_value=3, max_value=6),
    pop=st.integers(min_value=0, max_value=3),
)
def test_nearest_is_exhaustive_minimum(holders, leaf_local, pop):
    network = _NETWORK
    directory = ReplicaDirectory(network)
    for node in holders:
        directory.add(0, node)
    leaf = network.gid(pop, leaf_local)
    node, dist = directory.nearest(0, leaf)
    assert dist == min(network.distance(leaf, h) for h in holders)
    assert node in holders
