"""Tests for static placement support (preload + frozen caches)."""

import numpy as np
import pytest

from repro.core import EDGE, ICN_SP, Simulator
from repro.workload import Workload


def make_workload(requests, origins):
    pops, leaves, objects = (
        np.array([r[i] for r in requests], dtype=np.int64) for i in range(3)
    )
    return Workload(
        num_objects=len(origins),
        pops=pops,
        leaves=leaves,
        objects=objects,
        sizes=np.ones(len(origins)),
        origins=np.array(origins, dtype=np.int64),
    )


class TestPreload:
    def test_preloaded_object_serves_first_request(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        leaf = small_network.gid(0, 3)
        simulator = Simulator(
            small_network, EDGE, workload,
            [4.0] * small_network.num_nodes,
            preload={leaf: [0]},
        )
        result = simulator.run()
        assert result.cache_served == 1
        assert result.total_latency == 0.0

    def test_preload_respects_capacity(self, small_network):
        workload = make_workload([(0, 3, 2)], origins=[3, 3, 3])
        leaf = small_network.gid(0, 3)
        simulator = Simulator(
            small_network, EDGE, workload,
            [2.0] * small_network.num_nodes,
            preload={leaf: [0, 1, 2]},  # LRU keeps the last two
        )
        assert 0 not in simulator.caches[leaf]
        assert 2 in simulator.caches[leaf]

    def test_preload_requires_a_cache(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        interior = small_network.gid(0, 1)  # not a cache under EDGE
        with pytest.raises(ValueError):
            Simulator(
                small_network, EDGE, workload,
                [4.0] * small_network.num_nodes,
                preload={interior: [0]},
            )

    def test_preload_feeds_global_directory(self, small_network):
        from repro.core import ICN_NR_GLOBAL

        workload = make_workload([(0, 3, 0)], origins=[3])
        remote_leaf = small_network.gid(1, 3)
        simulator = Simulator(
            small_network, ICN_NR_GLOBAL, workload,
            [4.0] * small_network.num_nodes,
            preload={remote_leaf: [0]},
        )
        assert simulator.directory.holders(0) == [remote_leaf]
        result = simulator.run()
        # Remote replica (2+1+2 = 5 hops) beats origin (2+2 = 4)? No:
        # origin wins, so it still serves — but the directory worked.
        assert result.num_requests == 1


class TestFrozenCaches:
    def test_no_insertions_happen(self, small_network):
        workload = make_workload([(0, 3, 0), (0, 3, 0)], origins=[3])
        simulator = Simulator(
            small_network, ICN_SP, workload,
            [4.0] * small_network.num_nodes,
            frozen_caches=True,
        )
        result = simulator.run()
        assert result.cache_served == 0
        assert all(len(cache) == 0 for cache in simulator.caches.values())

    def test_frozen_preloaded_equals_static_policy(self, small_network):
        workload = make_workload([(0, 3, 0), (0, 4, 0), (0, 3, 1)],
                                 origins=[3, 3])
        preload = {
            small_network.gid(0, local): [0]
            for local in small_network.tree.leaves
        }
        simulator = Simulator(
            small_network, EDGE, workload,
            [1.0] * small_network.num_nodes,
            preload=preload, frozen_caches=True,
        )
        result = simulator.run()
        # Object 0 hits at both leaves; object 1 always misses.
        assert result.cache_served == 2
        assert result.origin_serves[3] == 1.0
