"""Tests for the latency models."""

import pytest

from repro.core import (
    arithmetic_hop_costs,
    core_weighted_hop_costs,
    hop_costs,
    unit_hop_costs,
)


class TestUnit:
    def test_leaf_to_root_equals_depth(self, small_network):
        costs = unit_hop_costs(small_network)
        leaf = small_network.tree.leaves[0]
        assert costs.tree_to_root[leaf] == 2.0
        assert costs.tree_to_root[0] == 0.0
        assert costs.core_hop == 1.0


class TestArithmetic:
    def test_costs_grow_toward_core(self, small_network):
        costs = arithmetic_hop_costs(small_network)
        # Depth 2 tree: leaf->parent costs 1, parent->root costs 2.
        leaf = small_network.tree.leaves[0]
        parent = small_network.tree.parent(leaf)
        assert costs.tree_to_root[leaf] - costs.tree_to_root[parent] == 1.0
        assert costs.tree_to_root[parent] == 2.0
        assert costs.core_hop == 3.0

    def test_total_leaf_cost_is_progression_sum(self, small_network):
        costs = arithmetic_hop_costs(small_network)
        leaf = small_network.tree.leaves[0]
        assert costs.tree_to_root[leaf] == 1.0 + 2.0


class TestCoreWeighted:
    def test_tree_hops_unit_core_scaled(self, small_network):
        costs = core_weighted_hop_costs(small_network, factor=7.0)
        leaf = small_network.tree.leaves[0]
        assert costs.tree_to_root[leaf] == 2.0
        assert costs.core_hop == 7.0

    def test_invalid_factor(self, small_network):
        with pytest.raises(ValueError):
            core_weighted_hop_costs(small_network, factor=0.0)


class TestDispatch:
    def test_by_name(self, small_network):
        assert hop_costs(small_network, "unit").core_hop == 1.0
        assert hop_costs(small_network, "arithmetic").core_hop == 3.0
        assert hop_costs(small_network, "core_weighted", factor=4.0).core_hop == 4.0

    def test_unknown_model(self, small_network):
        with pytest.raises(ValueError):
            hop_costs(small_network, "speed_of_light")
