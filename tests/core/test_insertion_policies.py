"""Tests for on-path insertion policies (LCE / LCD / probabilistic)."""

import dataclasses

import numpy as np
import pytest

from repro.core import EDGE, ICN_SP, Architecture, Simulator
from repro.workload import Workload

LCD = dataclasses.replace(ICN_SP, name="ICN-LCD", insertion="lcd")
PROB0 = dataclasses.replace(
    ICN_SP, name="ICN-P0", insertion="probabilistic", insertion_probability=0.0
)
PROB1 = dataclasses.replace(
    ICN_SP, name="ICN-P1", insertion="probabilistic", insertion_probability=1.0
)


def make_workload(requests, origins):
    pops, leaves, objects = (
        np.array([r[i] for r in requests], dtype=np.int64) for i in range(3)
    )
    return Workload(
        num_objects=len(origins),
        pops=pops,
        leaves=leaves,
        objects=objects,
        sizes=np.ones(len(origins)),
        origins=np.array(origins, dtype=np.int64),
    )


class TestValidation:
    def test_unknown_insertion_rejected(self):
        with pytest.raises(ValueError):
            Architecture("x", insertion="random-walk")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            Architecture("x", insertion="probabilistic",
                         insertion_probability=1.5)


class TestLeaveCopyDown:
    def test_only_first_node_below_server_caches(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        simulator = Simulator(small_network, LCD, workload,
                              [8.0] * small_network.num_nodes)
        simulator.run()
        # Response path: origin root (pop 3) ... -> leaf 3 of pop 0.
        # Only the node right below the origin caches a copy.
        holders = [n for n, c in simulator.caches.items() if 0 in c]
        assert len(holders) == 1
        leaf = small_network.gid(0, 3)
        assert small_network.distance(
            holders[0], small_network.root_gid(3)
        ) == 1

    def test_object_migrates_toward_edge(self, small_network):
        # Repeated requests pull the copy one level closer each time.
        workload = make_workload([(0, 3, 0)] * 6, origins=[3])
        simulator = Simulator(small_network, LCD, workload,
                              [8.0] * small_network.num_nodes)
        result = simulator.run()
        leaf = small_network.gid(0, 3)
        assert 0 in simulator.caches[leaf]
        # Later requests hit progressively closer copies.
        assert result.cache_served >= 4


class TestProbabilistic:
    def test_probability_zero_never_caches(self, small_network):
        workload = make_workload([(0, 3, 0)] * 5, origins=[3])
        simulator = Simulator(small_network, PROB0, workload,
                              [8.0] * small_network.num_nodes)
        result = simulator.run()
        assert result.cache_served == 0
        assert all(len(c) == 0 for c in simulator.caches.values())

    def test_probability_one_equals_everywhere(self, small_network):
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        budgets = [8.0] * small_network.num_nodes
        lce = Simulator(small_network, ICN_SP, workload, budgets).run()
        prob = Simulator(small_network, PROB1, workload, budgets).run()
        assert prob.total_latency == lce.total_latency
        assert prob.cache_served == lce.cache_served

    def test_intermediate_probability_caches_somewhere(self, small_network):
        half = dataclasses.replace(
            ICN_SP, name="p", insertion="probabilistic",
            insertion_probability=0.5,
        )
        workload = make_workload([(0, 3, 0)] * 20, origins=[3])
        simulator = Simulator(small_network, half, workload,
                              [8.0] * small_network.num_nodes)
        result = simulator.run()
        cached_nodes = sum(1 for c in simulator.caches.values() if 0 in c)
        assert 0 < cached_nodes
        assert result.cache_served > 0


class TestEdgeWithPolicies:
    def test_lcd_with_edge_placement_behaves_like_lce(self, small_network):
        # With caches only at leaves, the first cache below the server
        # IS the leaf, so LCD == everywhere.
        lcd_edge = dataclasses.replace(EDGE, name="EDGE-LCD",
                                       insertion="lcd")
        workload = make_workload([(0, 3, 0), (0, 3, 0)], origins=[3])
        budgets = [8.0] * small_network.num_nodes
        a = Simulator(small_network, EDGE, workload, budgets).run()
        b = Simulator(small_network, lcd_edge, workload, budgets).run()
        assert a.total_latency == b.total_latency
