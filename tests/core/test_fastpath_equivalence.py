"""Differential suite pinning the fast engine to the reference engine.

Every test runs the same configuration through ``engine="reference"``
and ``engine="fast"`` and asserts *field-for-field* equality of the
resulting :class:`SimulationResult` — including the float aggregates
and the per-link / per-origin arrays.  The fast engine's contract is
bit-identical output, so no tolerances appear anywhere in this file.

The matrix covers the full architecture registry crossed with every
replacement policy, plus the stateful corners: warm-up fractions,
preloaded (and frozen) caches, failed nodes, the serving-capacity
model, heterogeneous object sizes, non-unit latency models, and the
alternative on-path insertion policies.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    BASELINE_ARCHITECTURES,
    EDGE_COOP,
    EDGE_INF,
    EDGE_VARIANTS,
    ICN_NR,
    ICN_NR_GLOBAL,
    ICN_NR_INF,
    ICN_SP,
    CapacityModel,
    ExperimentConfig,
    Simulator,
    run_experiment,
    run_streamed_experiment,
    simulate_no_cache,
)
from repro.core.latency import hop_costs as build_hop_costs
from repro.workload import generate_workload, stream_workload

pytestmark = pytest.mark.fastpath

ALL_ARCHITECTURES = (
    *BASELINE_ARCHITECTURES,
    *EDGE_VARIANTS,
    ICN_NR_GLOBAL,
    EDGE_INF,
    ICN_NR_INF,
)
POLICIES = ("lru", "lfu", "fifo")


def _both(network, arch, workload, budgets, **kwargs):
    """Run reference and fast engines over identical inputs."""
    ref = Simulator(
        network, arch, workload, budgets, engine="reference", **kwargs
    ).run()
    fast = Simulator(
        network, arch, workload, budgets, engine="fast", **kwargs
    ).run()
    return ref, fast


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize(
    "arch", ALL_ARCHITECTURES, ids=[a.name for a in ALL_ARCHITECTURES]
)
def test_architecture_policy_matrix(
    small_network, random_workload, results_identical, arch, policy
):
    """Every registered design x every policy (and the infinite caches)."""
    seed = hash((arch.name, arch.placement, policy)) % (2**31)
    workload = random_workload(
        small_network, seed, num_requests=600, num_objects=40
    )
    budgets = [3.0] * small_network.num_nodes
    ref, fast = _both(
        small_network, arch, workload, budgets, policy=policy
    )
    results_identical(ref, fast)


@pytest.mark.parametrize("warmup", [0.0, 0.35, 0.8, 0.999])
def test_warmup_fractions(
    small_network, random_workload, results_identical, warmup
):
    workload = random_workload(
        small_network, 7, num_requests=400, num_objects=25
    )
    budgets = [2.0] * small_network.num_nodes
    ref, fast = _both(
        small_network, ICN_SP, workload, budgets, warmup_fraction=warmup
    )
    results_identical(ref, fast)


@pytest.mark.parametrize("frozen", [False, True])
@pytest.mark.parametrize(
    "arch", [ICN_SP, ICN_NR, ICN_NR_GLOBAL], ids=lambda a: a.name
)
def test_preload_and_frozen_caches(
    small_network, random_workload, results_identical, arch, frozen
):
    """Preloaded state replays identically; frozen caches never mutate."""
    workload = random_workload(
        small_network, 11, num_requests=500, num_objects=30
    )
    budgets = [4.0] * small_network.num_nodes
    leaf = small_network.tree.leaves.start  # first leaf of PoP 0's tree
    preload = {0: [0, 1, 2], leaf: [3], small_network.tree_size: [0]}
    ref, fast = _both(
        small_network, arch, workload, budgets,
        preload=preload, frozen_caches=frozen,
    )
    results_identical(ref, fast)


@pytest.mark.parametrize(
    "arch",
    [ICN_SP, ICN_NR, ICN_NR_GLOBAL, EDGE_COOP],
    ids=lambda a: a.name,
)
def test_failed_nodes(
    small_network, random_workload, results_identical, arch
):
    """Routing around crashed caches matches, fallback counts included."""
    workload = random_workload(
        small_network, 13, num_requests=500, num_objects=30
    )
    budgets = [3.0] * small_network.num_nodes
    failed = {0, small_network.tree_size + 1}
    ref, fast = _both(
        small_network, arch, workload, budgets, failed_nodes=failed
    )
    results_identical(ref, fast)
    assert ref.fallback_served == fast.fallback_served


@pytest.mark.parametrize(
    "arch", [ICN_SP, ICN_NR, ICN_NR_GLOBAL], ids=lambda a: a.name
)
def test_capacity_model(
    small_network, random_workload, results_identical, arch
):
    """Serving-capacity rejections fire at the same requests."""
    workload = random_workload(
        small_network, 17, num_requests=600, num_objects=20
    )
    budgets = [3.0] * small_network.num_nodes
    ref, fast = _both(
        small_network, arch, workload, budgets,
        capacity=CapacityModel(per_window=4, window=50),
    )
    results_identical(ref, fast)


@pytest.mark.parametrize("policy", POLICIES)
def test_heterogeneous_sizes(
    small_network, random_workload, results_identical, policy
):
    """Variable object sizes: eviction loops and link loads stay equal."""
    workload = random_workload(
        small_network, 19, num_requests=600, num_objects=30,
        heterogeneous_sizes=True,
    )
    budgets = [5.0] * small_network.num_nodes
    for arch in (ICN_SP, ICN_NR, EDGE_COOP):
        ref, fast = _both(
            small_network, arch, workload, budgets, policy=policy
        )
        results_identical(ref, fast)


@pytest.mark.parametrize("model", ["unit", "arithmetic", "core_weighted"])
def test_latency_models(
    small_network, random_workload, results_identical, model
):
    workload = random_workload(
        small_network, 23, num_requests=400, num_objects=25
    )
    budgets = [3.0] * small_network.num_nodes
    costs = build_hop_costs(small_network, model, 4.0)
    ref, fast = _both(
        small_network, ICN_NR, workload, budgets, hop_costs=costs
    )
    results_identical(ref, fast)


@pytest.mark.parametrize("insertion", ["lcd", "probabilistic"])
@pytest.mark.parametrize(
    "arch", [ICN_SP, ICN_NR_GLOBAL], ids=lambda a: a.name
)
def test_insertion_policies(
    small_network, random_workload, results_identical, arch, insertion
):
    """Leave-copy-down and coin-flip insertion consume the same RNG."""
    workload = random_workload(
        small_network, 29, num_requests=500, num_objects=30
    )
    budgets = [3.0] * small_network.num_nodes
    variant = replace(
        arch, name=f"{arch.name}-{insertion}", insertion=insertion
    )
    ref, fast = _both(small_network, variant, workload, budgets)
    results_identical(ref, fast)


def test_no_cache_baseline(small_network, random_workload, results_identical):
    workload = random_workload(
        small_network, 31, num_requests=400, num_objects=25
    )
    ref = simulate_no_cache(small_network, workload, engine="reference")
    fast = simulate_no_cache(small_network, workload, engine="fast")
    results_identical(ref, fast)


def test_kitchen_sink(small_network, random_workload, results_identical):
    """Everything at once: the combination must still be bit-identical."""
    workload = random_workload(
        small_network, 37, num_requests=700, num_objects=30,
        heterogeneous_sizes=True,
    )
    budgets = [4.0] * small_network.num_nodes
    costs = build_hop_costs(small_network, "core_weighted", 4.0)
    for arch in (ICN_NR, ICN_NR_GLOBAL):
        ref, fast = _both(
            small_network, arch, workload, budgets,
            policy="lfu",
            hop_costs=costs,
            capacity=CapacityModel(per_window=5, window=40),
            failed_nodes={small_network.tree_size + 2},
            warmup_fraction=0.3,
        )
        results_identical(ref, fast)


def _twin_workloads(small_network, chunk_size):
    """One seed, two deliveries: materialized arrays vs streamed chunks."""
    materialized = generate_workload(
        small_network, 30, 600, 1.0, np.random.default_rng(41)
    )
    streamed = stream_workload(
        small_network, 30, 600, 1.0, np.random.default_rng(41),
        chunk_size=chunk_size,
    )
    return materialized, streamed


@pytest.mark.parametrize("chunk_size", [113, 600, 10_000])
@pytest.mark.parametrize(
    "arch", [ICN_SP, ICN_NR_GLOBAL, EDGE_COOP], ids=lambda a: a.name
)
def test_streamed_equals_materialized(
    small_network, results_identical, arch, chunk_size
):
    """A chunked stream replays bit-identically on both engines.

    The streamed column of the matrix: the same seeded workload is fed
    once as full arrays and once as a chunk iterator (with a ragged
    final chunk, an exact fit, and a single oversized chunk), and all
    four engine x delivery combinations must agree field-for-field.
    """
    materialized, streamed = _twin_workloads(small_network, chunk_size)
    budgets = [3.0] * small_network.num_nodes
    ref_m, fast_m = _both(
        small_network, arch, materialized, budgets, warmup_fraction=0.25
    )
    ref_s, fast_s = _both(
        small_network, arch, streamed, budgets, warmup_fraction=0.25
    )
    results_identical(ref_m, fast_m)
    results_identical(ref_m, ref_s)
    results_identical(ref_m, fast_s)


@pytest.mark.parametrize("warmup", [0.0, 0.4])
def test_streamed_no_cache_baseline(small_network, results_identical, warmup):
    """The no-cache fast path consumes chunks identically, warmup included."""
    materialized, streamed = _twin_workloads(small_network, chunk_size=97)
    for engine in ("reference", "fast"):
        from_arrays = simulate_no_cache(
            small_network, materialized, warmup_fraction=warmup, engine=engine
        )
        from_chunks = simulate_no_cache(
            small_network, streamed, warmup_fraction=warmup, engine=engine
        )
        results_identical(from_arrays, from_chunks)


def test_run_streamed_experiment_matches_materialized(results_identical):
    """Orchestration parity: the streamed front end changes nothing."""
    config = ExperimentConfig(
        num_requests=3_000, num_objects=150, tree_depth=2, seed=55
    )
    materialized = run_experiment(config, engine="fast")
    for engine in ("reference", "fast"):
        streamed = run_streamed_experiment(config, engine=engine, chunk_size=499)
        results_identical(materialized.baseline, streamed.baseline)
        for name in materialized.results:
            results_identical(
                materialized.results[name], streamed.results[name]
            )
            assert materialized.improvements[name] == streamed.improvements[name]


def test_run_experiment_end_to_end(results_identical):
    """The orchestration layer sees identical results and improvements."""
    config = ExperimentConfig(
        num_requests=4_000, num_objects=200, tree_depth=2, seed=99
    )
    ref = run_experiment(config, engine="reference")
    fast = run_experiment(config, engine="fast")
    results_identical(ref.baseline, fast.baseline)
    for name in ref.results:
        results_identical(ref.results[name], fast.results[name])
        assert ref.improvements[name] == fast.improvements[name]
