"""Tests for the architecture registry and placement logic."""

import pytest

from repro.core import (
    BASELINE_ARCHITECTURES,
    EDGE,
    EDGE_COOP,
    EDGE_NORM,
    EDGE_VARIANTS,
    ICN_NR,
    ICN_NR_GLOBAL,
    ICN_SP,
    Architecture,
    architecture,
)
from repro.topology import AccessTree


class TestRegistry:
    def test_baseline_lineup_matches_figure6_legend(self):
        names = [a.name for a in BASELINE_ARCHITECTURES]
        assert names == ["ICN-SP", "ICN-NR", "EDGE", "EDGE-Coop", "EDGE-Norm"]

    def test_figure10_variants_in_axis_order(self):
        names = [a.name for a in EDGE_VARIANTS]
        assert names == [
            "Baseline", "2-Levels", "Coop", "2-Levels-Coop",
            "Norm", "Norm-Coop", "Double-Budget-Coop",
        ]

    def test_lookup_by_name(self):
        assert architecture("ICN-NR") is ICN_NR
        assert architecture("ICN-NR-Global") is ICN_NR_GLOBAL

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            architecture("CDN")

    def test_routing_kinds(self):
        assert ICN_SP.routing == "sp"
        assert ICN_NR.routing == "nr"
        assert ICN_NR_GLOBAL.routing == "nr-global"
        assert EDGE.routing == "sp"


class TestValidation:
    def test_bad_placement(self):
        with pytest.raises(ValueError):
            Architecture("x", placement="core")

    def test_bad_routing(self):
        with pytest.raises(ValueError):
            Architecture("x", routing="anycast")

    def test_bad_multiplier(self):
        with pytest.raises(ValueError):
            Architecture("x", budget_multiplier=0)


class TestPlacement:
    def test_pervasive_covers_all_depths(self):
        tree = AccessTree(2, 5)
        assert ICN_SP.cache_depths(tree) == (0, 1, 2, 3, 4, 5)
        assert len(ICN_SP.cache_locals(tree)) == 63

    def test_edge_covers_leaves_only(self):
        tree = AccessTree(2, 5)
        assert EDGE.cache_depths(tree) == (5,)
        locals_ = EDGE.cache_locals(tree)
        assert len(locals_) == 32
        assert all(tree.is_leaf(x) for x in locals_)

    def test_two_levels(self):
        tree = AccessTree(2, 5)
        arch = architecture("2-Levels")
        assert arch.cache_depths(tree) == (4, 5)
        assert len(arch.cache_locals(tree)) == 48

    def test_two_levels_degenerates_on_single_node_tree(self):
        tree = AccessTree(2, 0)
        assert architecture("2-Levels").cache_depths(tree) == (0,)


class TestBudgetMultipliers:
    def test_edge_norm_restores_total_budget(self):
        tree = AccessTree(2, 5)
        # 63 nodes of budget vs 32 caches: scale by 63/32.
        assert EDGE_NORM.effective_multiplier(tree) == pytest.approx(63 / 32)

    def test_plain_edge_not_scaled(self):
        tree = AccessTree(2, 5)
        assert EDGE.effective_multiplier(tree) == 1.0

    def test_double_budget_coop_doubles_the_normalized_budget(self):
        tree = AccessTree(2, 5)
        arch = architecture("Double-Budget-Coop")
        assert arch.effective_multiplier(tree) == pytest.approx(2 * 63 / 32)

    def test_arity_shrinks_normalization(self):
        # The Table 4 effect: higher arity -> EDGE already holds most of
        # the total budget, so normalization approaches 1.
        k8 = AccessTree(8, 2)
        k2 = AccessTree(2, 5)
        assert (
            EDGE_NORM.effective_multiplier(k8)
            < EDGE_NORM.effective_multiplier(k2)
        )

    def test_coop_flag(self):
        assert EDGE_COOP.cooperation
        assert not EDGE.cooperation
