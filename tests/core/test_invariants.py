"""Cross-architecture invariants on randomized workloads.

These encode the paper's qualitative claims as executable properties:
the design-space ordering (more caching / smarter routing never hurts in
aggregate), conservation laws of the metric accounting, and the directly
checkable mechanics of the no-cache baseline.
"""

import numpy as np
import pytest

from repro.core import (
    BASELINE_ARCHITECTURES,
    EDGE,
    EDGE_COOP,
    EDGE_NORM,
    ICN_NR,
    ICN_NR_GLOBAL,
    ICN_SP,
    ExperimentConfig,
    run_experiment,
)

CONFIG = ExperimentConfig(
    topology="geant",
    num_objects=300,
    num_requests=15_000,
    warmup_fraction=0.2,
    seed=5,
)


@pytest.fixture(scope="module")
def outcome():
    return run_experiment(
        CONFIG, (*BASELINE_ARCHITECTURES, ICN_NR_GLOBAL)
    )


class TestDesignSpaceOrdering:
    """Section 4.2's qualitative ordering of the representative designs."""

    def test_pervasive_beats_edge_on_every_metric(self, outcome):
        edge = outcome.improvements["EDGE"]
        sp = outcome.improvements["ICN-SP"]
        assert sp.latency >= edge.latency
        assert sp.congestion >= edge.congestion
        assert sp.origin_load >= edge.origin_load

    def test_nearest_replica_beats_shortest_path(self, outcome):
        sp = outcome.improvements["ICN-SP"]
        nr = outcome.improvements["ICN-NR"]
        assert nr.latency >= sp.latency - 0.5
        assert nr.origin_load >= sp.origin_load - 0.5

    def test_nr_over_sp_gain_is_marginal(self, outcome):
        """The paper's headline: NR adds little over SP (~2%)."""
        gap = outcome.gap("ICN-NR", "ICN-SP")
        assert gap.latency < 8.0
        assert gap.origin_load < 12.0

    def test_global_oracle_dominates_scoped_nr(self, outcome):
        scoped = outcome.improvements["ICN-NR"]
        oracle = outcome.improvements["ICN-NR-Global"]
        assert oracle.latency >= scoped.latency - 0.5
        assert oracle.origin_load >= scoped.origin_load - 0.5

    def test_cooperation_helps_edge(self, outcome):
        edge = outcome.improvements["EDGE"]
        coop = outcome.improvements["EDGE-Coop"]
        assert coop.latency >= edge.latency
        assert coop.origin_load >= edge.origin_load

    def test_norm_budget_helps_edge(self, outcome):
        edge = outcome.improvements["EDGE"]
        norm = outcome.improvements["EDGE-Norm"]
        assert norm.latency >= edge.latency - 0.2

    def test_improvements_bounded_by_100(self, outcome):
        for improvement in outcome.improvements.values():
            assert improvement.max() <= 100.0


class TestConservation:
    def test_every_request_is_served_exactly_once(self, outcome):
        for result in outcome.results.values():
            served = (
                result.cache_served
                + result.coop_served
                + int(result.total_origin_load)
            )
            assert served == result.num_requests

    def test_baseline_serves_everything_at_origin(self, outcome):
        baseline = outcome.baseline
        assert baseline.total_origin_load == baseline.num_requests
        assert baseline.cache_served == 0

    def test_caching_never_increases_total_transfers(self, outcome):
        for result in outcome.results.values():
            assert result.total_transfers <= outcome.baseline.total_transfers

    def test_max_link_bounded_by_total(self, outcome):
        for result in outcome.results.values():
            assert result.max_link_transfers <= result.total_transfers

    def test_origin_load_distribution_sums(self, outcome):
        for result in outcome.results.values():
            assert result.origin_serves.sum() == pytest.approx(
                result.total_origin_load
            )
            assert result.origin_serves.max() == pytest.approx(
                result.max_origin_load
            )


class TestPolicyRobustness:
    def test_lfu_yields_qualitatively_similar_results(self):
        """Section 3: 'We also tried LFU, which yielded qualitatively
        similar results.'"""
        lru = run_experiment(CONFIG, (ICN_NR, EDGE))
        lfu = run_experiment(CONFIG.with_(policy="lfu"), (ICN_NR, EDGE))
        for name in ("ICN-NR", "EDGE"):
            assert lfu.improvements[name].latency == pytest.approx(
                lru.improvements[name].latency, abs=12.0
            )

    def test_uniform_budgets_keep_the_ordering(self):
        """Figure 7: provisioning does not change relative performance."""
        uniform = run_experiment(
            CONFIG.with_(budget_split="uniform"), (ICN_SP, ICN_NR, EDGE)
        )
        assert (
            uniform.improvements["ICN-NR"].latency
            >= uniform.improvements["EDGE"].latency
        )
