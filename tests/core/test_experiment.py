"""Tests for experiment orchestration."""

import numpy as np
import pytest

from repro.core import (
    EDGE,
    ICN_NR,
    ExperimentConfig,
    build_network,
    build_workload,
    performance_gap,
    run_experiment,
)

FAST = dict(
    topology="abilene",
    num_objects=200,
    num_requests=6000,
    warmup_fraction=0.25,
    seed=11,
)


class TestConfig:
    def test_defaults_match_paper_baseline(self):
        config = ExperimentConfig()
        assert config.arity == 2
        assert config.tree_depth == 5
        assert config.budget_fraction == 0.05
        assert config.alpha == 1.04  # the Asia trace fit
        assert config.policy == "lru"

    def test_with_creates_modified_copy(self):
        config = ExperimentConfig()
        changed = config.with_(alpha=0.5)
        assert changed.alpha == 0.5
        assert config.alpha == 1.04


class TestBuilders:
    def test_build_network_shape(self):
        config = ExperimentConfig(topology="abilene", arity=2, tree_depth=3)
        network = build_network(config)
        assert network.num_pops == 11
        assert network.tree_size == 15

    def test_build_workload_respects_config(self):
        config = ExperimentConfig(**FAST)
        network = build_network(config)
        workload = build_workload(config, network)
        assert workload.num_requests == 6000
        assert workload.num_objects == 200

    def test_heterogeneous_sizes_mean_one(self):
        config = ExperimentConfig(**FAST).with_(heterogeneous_sizes=True)
        network = build_network(config)
        workload = build_workload(config, network)
        assert workload.sizes.mean() == pytest.approx(1.0)
        assert workload.sizes.std() > 0.1

    def test_trace_driven_workload(self):
        config = ExperimentConfig(**FAST)
        network = build_network(config)
        objects = np.zeros(100, dtype=np.int64)
        workload = build_workload(config, network, objects=objects)
        assert workload.num_requests == 100


class TestRunExperiment:
    def test_same_workload_for_all_architectures(self):
        config = ExperimentConfig(**FAST)
        outcome = run_experiment(config, (ICN_NR, EDGE))
        assert set(outcome.results) == {"ICN-NR", "EDGE"}
        assert (
            outcome.results["ICN-NR"].num_requests
            == outcome.results["EDGE"].num_requests
            == outcome.baseline.num_requests
        )

    def test_caching_always_beats_no_caching(self):
        config = ExperimentConfig(**FAST)
        outcome = run_experiment(config, (ICN_NR, EDGE))
        for improvement in outcome.improvements.values():
            assert improvement.latency > 0
            assert improvement.congestion > 0
            assert improvement.origin_load > 0

    def test_gap_accessor(self):
        config = ExperimentConfig(**FAST)
        outcome = run_experiment(config, (ICN_NR, EDGE))
        gap = outcome.gap()
        assert gap.latency == pytest.approx(
            outcome.improvements["ICN-NR"].latency
            - outcome.improvements["EDGE"].latency
        )

    def test_deterministic_given_seed(self):
        config = ExperimentConfig(**FAST)
        a = run_experiment(config, (EDGE,))
        b = run_experiment(config, (EDGE,))
        assert a.results["EDGE"].total_latency == b.results["EDGE"].total_latency

    def test_performance_gap_shortcut(self):
        config = ExperimentConfig(**FAST)
        gap = performance_gap(config, ICN_NR, EDGE)
        full = run_experiment(config, (ICN_NR, EDGE)).gap()
        assert gap.latency == pytest.approx(full.latency)
