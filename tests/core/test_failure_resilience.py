"""Failed cache nodes: route-around semantics and fallback accounting.

A failed node carries no cache, serves nothing, and takes no copies;
routing walks past it and the run reports how many measured requests
had to do so (``fallback_served``).  Origins never fail.
"""

import numpy as np
import pytest

from repro.core import (
    EDGE,
    EDGE_COOP,
    ICN_NR,
    ICN_NR_GLOBAL,
    ICN_SP,
    Simulator,
)
from repro.core.routing import ReplicaDirectory
from repro.workload import generate_workload

from tests.core.test_engine import make_workload, run


class TestValidation:
    def test_out_of_range_node_rejected(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        budgets = [10.0] * small_network.num_nodes
        with pytest.raises(ValueError):
            Simulator(small_network, EDGE, workload, budgets,
                      failed_nodes={small_network.num_nodes})
        with pytest.raises(ValueError):
            Simulator(small_network, EDGE, workload, budgets,
                      failed_nodes={-1})

    def test_failed_nodes_carry_no_cache(self, small_network):
        workload = make_workload([(0, 3, 0)], origins=[3])
        leaf = small_network.gid(0, 3)
        _, sim = run(small_network, EDGE, workload, failed_nodes={leaf})
        assert leaf not in sim.caches
        other = small_network.gid(0, 4)
        assert other in sim.caches


class TestEdgeFailures:
    def test_failed_leaf_sends_requests_to_origin(self, small_network):
        leaf = small_network.gid(0, 3)
        workload = make_workload([(0, 3, 0)] * 3, origins=[3])
        result, _ = run(small_network, EDGE, workload, failed_nodes={leaf})
        # Without the leaf cache nothing is ever a hit.
        assert result.cache_served == 0
        assert result.total_origin_load == 3.0
        assert result.fallback_served == 3
        assert result.availability == 0.0

    def test_healthy_leaves_unaffected(self, small_network):
        failed_leaf = small_network.gid(0, 3)
        workload = make_workload([(0, 4, 0)] * 2, origins=[3])
        result, _ = run(small_network, EDGE, workload,
                        failed_nodes={failed_leaf})
        assert result.cache_served == 1
        assert result.fallback_served == 0
        assert result.availability == 1.0

    def test_no_failures_means_no_fallbacks(self, small_network):
        workload = make_workload([(0, 3, 0)] * 3, origins=[3])
        result, _ = run(small_network, EDGE, workload)
        assert result.fallback_served == 0
        assert result.fallback_ratio == 0.0
        assert result.availability == 1.0

    def test_coop_skips_failed_sibling(self, small_network):
        # Leaf 3 is dead; leaf 4's sibling lookup must skip it cleanly.
        failed_leaf = small_network.gid(0, 3)
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        result, _ = run(small_network, EDGE_COOP, workload,
                        failed_nodes={failed_leaf})
        assert result.coop_served == 0
        assert result.total_origin_load == 2.0


class TestRouteAround:
    def test_sp_walks_past_failed_parent(self, small_network):
        # Leaves 3 and 4 share parent (0,1).  With it dead, request 2
        # must skip it and hit the pop-0 root, cached by request 1's
        # response path; both requests walked past the dead node.
        failed_parent = small_network.gid(0, 1)
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        result, sim = run(small_network, ICN_SP, workload,
                          failed_nodes={failed_parent})
        assert result.cache_served == 1
        assert result.fallback_served == 2
        root = small_network.root_gid(0)
        assert 0 in sim.caches[root]
        # Request 2 served from the root: 2 hops instead of 1.
        leaf3 = small_network.gid(0, 3)
        first = small_network.distance(leaf3, small_network.root_gid(3))
        assert result.total_latency == first + 2

    def test_nr_scoped_skips_failed_candidates(self, small_network):
        failed_parent = small_network.gid(0, 1)
        workload = make_workload([(0, 3, 0), (0, 4, 0)], origins=[3])
        result, _ = run(small_network, ICN_NR, workload,
                        failed_nodes={failed_parent})
        assert result.cache_served >= 1
        assert result.fallback_served >= 1

    def test_no_insertion_at_failed_nodes(self, small_network):
        failed_parent = small_network.gid(0, 1)
        workload = make_workload([(0, 3, 0)], origins=[3])
        _, sim = run(small_network, ICN_SP, workload,
                     failed_nodes={failed_parent})
        assert failed_parent not in sim.caches
        # The rest of the response path still took copies.
        assert 0 in sim.caches[small_network.gid(0, 3)]

    def test_origin_at_failed_root_still_serves(self, small_network):
        # Failing the origin pop's root kills its *cache*, never the
        # origin store behind it.
        origin_root = small_network.root_gid(3)
        workload = make_workload([(3, 3, 0)] * 2, origins=[3])
        result, _ = run(small_network, ICN_SP, workload,
                        failed_nodes={origin_root})
        assert result.total_origin_load == 1.0  # leaf cached request 1
        assert result.cache_served == 1


class TestOracleDirectory:
    def test_directory_never_records_failed_nodes(self, small_network):
        failed = small_network.gid(0, 3)
        directory = ReplicaDirectory(small_network,
                                     failed_nodes=frozenset({failed}))
        directory.add(0, failed)
        assert directory.num_replicas(0) == 0
        assert directory.nearest(0, small_network.gid(0, 4)) is None
        live = small_network.gid(0, 4)
        directory.add(0, live)
        assert directory.holders(0) == [live]

    def test_nr_global_never_serves_failed_nodes(self, small_network, rng):
        failed = frozenset(
            small_network.gid(pop, local)
            for pop in range(small_network.num_pops)
            for local in (1, 3)
        )
        workload = generate_workload(small_network, 40, 1500, 1.0, rng)
        _, sim = run(small_network, ICN_NR_GLOBAL, workload, budget=5.0,
                     failed_nodes=failed)
        for node in failed:
            assert node not in sim.caches
        for obj in range(40):
            assert not set(sim.directory.holders(obj)) & failed


def _result_key(result):
    return (
        result.architecture,
        result.num_requests,
        result.total_latency,
        result.max_link_transfers,
        result.total_transfers,
        result.max_origin_load,
        result.total_origin_load,
        result.cache_served,
        result.coop_served,
        result.fallback_served,
        result.link_transfers.tobytes(),
        result.origin_serves.tobytes(),
    )


class TestDeterminism:
    def test_identical_runs_yield_identical_metrics(self, small_network):
        workload = generate_workload(
            small_network, 60, 2000, 0.8, np.random.default_rng(7)
        )
        failed = frozenset({small_network.gid(0, 3),
                            small_network.gid(1, 1)})

        def one_run(arch):
            result, _ = run(small_network, arch, workload, budget=5.0,
                            failed_nodes=failed)
            return _result_key(result)

        for arch in (EDGE, ICN_SP, ICN_NR, ICN_NR_GLOBAL):
            assert one_run(arch) == one_run(arch)

    def test_failures_shift_load_to_origins(self, small_network):
        workload = generate_workload(
            small_network, 60, 4000, 0.8, np.random.default_rng(7)
        )
        healthy, _ = run(small_network, EDGE, workload, budget=5.0)
        failed = frozenset(
            small_network.gid(pop, local)
            for pop in range(small_network.num_pops)
            for local in (3, 4)
        )
        degraded, _ = run(small_network, EDGE, workload, budget=5.0,
                          failed_nodes=failed)
        assert degraded.total_origin_load >= healthy.total_origin_load
        assert degraded.cache_hit_ratio <= healthy.cache_hit_ratio
        assert degraded.fallback_served > 0
