"""Property-based tests of the simulation engine on random micro-worlds.

Hypothesis drives small random workloads through the engine and checks
accounting invariants that must hold for every architecture: request
conservation, latency bounds, and congestion consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EDGE,
    EDGE_COOP,
    EDGE_NORM,
    ICN_NR,
    ICN_NR_GLOBAL,
    ICN_SP,
    Simulator,
    simulate_no_cache,
)
from repro.topology import AccessTree, Network, Pop, PopTopology
from repro.workload import Workload

ARCHITECTURES = (EDGE, EDGE_COOP, EDGE_NORM, ICN_SP, ICN_NR, ICN_NR_GLOBAL)


def _network():
    topo = PopTopology(
        name="line",
        pops=(Pop(0, "a", 5), Pop(1, "b", 3), Pop(2, "c", 2)),
        edges=((0, 1), (1, 2)),
    )
    return Network(topo, AccessTree(2, 2))


_NETWORK = _network()


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    num_objects = draw(st.integers(min_value=1, max_value=12))
    pops = draw(
        st.lists(st.integers(0, 2), min_size=n, max_size=n)
    )
    leaves = draw(
        st.lists(st.integers(3, 6), min_size=n, max_size=n)
    )
    objects = draw(
        st.lists(st.integers(0, num_objects - 1), min_size=n, max_size=n)
    )
    origins = draw(
        st.lists(st.integers(0, 2), min_size=num_objects,
                 max_size=num_objects)
    )
    return Workload(
        num_objects=num_objects,
        pops=np.array(pops, dtype=np.int64),
        leaves=np.array(leaves, dtype=np.int64),
        objects=np.array(objects, dtype=np.int64),
        sizes=np.ones(num_objects),
        origins=np.array(origins, dtype=np.int64),
    )


@settings(max_examples=40, deadline=None)
@given(workload=workloads(), arch=st.sampled_from(ARCHITECTURES),
       budget=st.floats(min_value=0.0, max_value=6.0))
def test_request_conservation(workload, arch, budget):
    simulator = Simulator(
        _NETWORK, arch, workload, [budget] * _NETWORK.num_nodes
    )
    result = simulator.run()
    assert result.num_requests == workload.num_requests
    served = (result.cache_served + result.coop_served
              + int(result.total_origin_load))
    assert served == workload.num_requests


@settings(max_examples=40, deadline=None)
@given(workload=workloads(), arch=st.sampled_from(ARCHITECTURES))
def test_latency_never_exceeds_no_cache(workload, arch):
    """Serving from a cache never takes longer than the origin path...
    in aggregate (per-request it can, for coop/sibling detours, but the
    detour is only taken when it is shorter than the origin path)."""
    baseline = simulate_no_cache(_NETWORK, workload)
    simulator = Simulator(
        _NETWORK, arch, workload, [4.0] * _NETWORK.num_nodes
    )
    result = simulator.run()
    assert result.total_latency <= baseline.total_latency + 1e-9


@settings(max_examples=40, deadline=None)
@given(workload=workloads(), arch=st.sampled_from(ARCHITECTURES))
def test_congestion_accounting(workload, arch):
    simulator = Simulator(
        _NETWORK, arch, workload, [4.0] * _NETWORK.num_nodes
    )
    result = simulator.run()
    # Unit sizes and unit hop costs: total transfers over links equals
    # total latency (each hop of each response moves the object once).
    assert result.total_transfers == pytest.approx(result.total_latency)


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_zero_budget_equals_no_cache(workload):
    baseline = simulate_no_cache(_NETWORK, workload)
    simulator = Simulator(
        _NETWORK, ICN_SP, workload, [0.0] * _NETWORK.num_nodes
    )
    result = simulator.run()
    assert result.total_latency == pytest.approx(baseline.total_latency)
    assert result.total_origin_load == baseline.total_origin_load


# ---------------------------------------------------------------------
# Hand-rolled generator properties (no hypothesis involved).
#
# The ``random_workload`` fixture (tests/conftest.py) derives a whole
# workload from one integer seed, so these parametrized cases double as
# a seed-reproducible property sweep — and, unlike the strategies
# above, they exercise the fast engine as well as the reference one.
# ---------------------------------------------------------------------

ENGINES = ("reference", "fast")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(8))
def test_hits_plus_misses_cover_requests(random_workload, engine, seed):
    """Conservation: cache hits + coop hits + origin serves == requests."""
    workload = random_workload(_NETWORK, seed)
    for arch in ARCHITECTURES:
        result = Simulator(
            _NETWORK, arch, workload, [3.0] * _NETWORK.num_nodes,
            engine=engine,
        ).run()
        assert result.num_requests == workload.num_requests
        served = (result.cache_served + result.coop_served
                  + int(result.total_origin_load))
        assert served == result.num_requests


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(8))
def test_latency_bounded_by_no_cache_generated(random_workload, engine, seed):
    """Caching never makes aggregate latency worse than no caching."""
    workload = random_workload(_NETWORK, seed, num_requests=200)
    baseline = simulate_no_cache(_NETWORK, workload, engine=engine)
    for arch in ARCHITECTURES:
        result = Simulator(
            _NETWORK, arch, workload, [4.0] * _NETWORK.num_nodes,
            engine=engine,
        ).run()
        assert result.total_latency <= baseline.total_latency + 1e-9


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(6))
def test_origin_load_monotone_in_budget(random_workload, engine, seed):
    """More cache never sends more traffic to the origins (EDGE + LRU).

    EDGE caches do not interact (each leaf sees an exogenous stream),
    so the LRU inclusion property applies per cache: a bigger cache's
    contents always contain the smaller cache's, hence origin load is
    non-increasing in the budget.  (Interacting placements like ICN-SP
    only satisfy this approximately — response paths feed back into
    cache state — so the theorem-grade check uses EDGE.)
    """
    workload = random_workload(_NETWORK, seed, num_requests=300,
                               num_objects=20)
    loads = []
    for budget in (0.0, 1.0, 2.0, 4.0, 8.0):
        result = Simulator(
            _NETWORK, EDGE, workload, [budget] * _NETWORK.num_nodes,
            engine=engine,
        ).run()
        loads.append(result.total_origin_load)
    assert loads == sorted(loads, reverse=True)


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_global_oracle_roughly_dominates_scoped(workload):
    """Per-request the oracle picks a no-farther replica, but routing
    decisions feed back into cache state (different response paths
    populate different caches), so aggregate dominance only holds up to
    a small state-divergence slack."""
    budgets = [4.0] * _NETWORK.num_nodes
    scoped = Simulator(_NETWORK, ICN_NR, workload, budgets).run()
    oracle = Simulator(_NETWORK, ICN_NR_GLOBAL, workload, budgets).run()
    slack = 2.0 + 0.1 * scoped.total_latency
    assert oracle.total_latency <= scoped.total_latency + slack
