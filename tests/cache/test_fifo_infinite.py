"""Tests for the FIFO and infinite caches."""

import math

import pytest

from repro.cache import FIFOCache, InfiniteCache


class TestFifo:
    def test_eviction_is_insertion_order(self):
        cache = FIFOCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        cache.lookup("a")  # recency must NOT matter for FIFO
        assert cache.insert("c") == ["a"]

    def test_reinsert_does_not_refresh_position(self):
        cache = FIFOCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        cache.insert("a")  # still oldest
        assert cache.insert("c") == ["a"]

    def test_size_aware_eviction(self):
        cache = FIFOCache(capacity=6)
        cache.insert("a", size=3.0)
        cache.insert("b", size=3.0)
        assert cache.insert("c", size=4.0) == ["a", "b"]
        assert cache.used == pytest.approx(4.0)

    def test_oversized_rejected(self):
        cache = FIFOCache(capacity=2)
        assert cache.insert("x", size=5.0) == []
        assert len(cache) == 0

    def test_growing_object_evicts_oldest(self):
        cache = FIFOCache(capacity=4)
        cache.insert("a", size=2.0)
        cache.insert("b", size=2.0)
        assert cache.insert("b", size=3.0) == ["a"]

    def test_counters_and_clear(self):
        cache = FIFOCache(capacity=2)
        cache.insert("a")
        assert cache.lookup("a") and not cache.lookup("z")
        cache.clear()
        assert len(cache) == 0 and cache.used == 0.0


class TestInfinite:
    def test_never_evicts(self):
        cache = InfiniteCache()
        for i in range(10_000):
            assert cache.insert(i) == []
        assert len(cache) == 10_000

    def test_capacity_is_infinite(self):
        assert InfiniteCache().capacity == math.inf

    def test_lookup_and_counters(self):
        cache = InfiniteCache()
        cache.insert("a")
        assert cache.lookup("a")
        assert not cache.lookup("b")
        assert cache.hits == 1 and cache.misses == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            InfiniteCache().insert("a", size=-2.0)

    def test_clear_and_iter(self):
        cache = InfiniteCache()
        cache.insert("a")
        cache.insert("b")
        assert set(cache) == {"a", "b"}
        cache.clear()
        assert len(cache) == 0
