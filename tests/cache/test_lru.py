"""Tests for the LRU cache."""

import pytest

from repro.cache import LRUCache


class TestBasics:
    def test_insert_and_lookup(self):
        cache = LRUCache(capacity=2)
        cache.insert("a")
        assert cache.lookup("a")
        assert not cache.lookup("b")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order_is_least_recent_first(self):
        cache = LRUCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        evicted = cache.insert("c")
        assert evicted == ["a"]
        assert "b" in cache and "c" in cache

    def test_lookup_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        cache.lookup("a")
        evicted = cache.insert("c")
        assert evicted == ["b"]

    def test_reinsert_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        cache.insert("a")
        assert cache.insert("c") == ["b"]

    def test_contains_does_not_touch_counters(self):
        cache = LRUCache(capacity=2)
        cache.insert("a")
        assert "a" in cache
        assert "b" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_zero_capacity_admits_nothing(self):
        cache = LRUCache(capacity=0)
        assert cache.insert("a") == []
        assert "a" not in cache

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_clear_keeps_counters(self):
        cache = LRUCache(capacity=4)
        cache.insert("a")
        cache.lookup("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_iter_yields_all_objects(self):
        cache = LRUCache(capacity=4)
        for obj in "abc":
            cache.insert(obj)
        assert sorted(cache) == ["a", "b", "c"]

    def test_hit_ratio(self):
        cache = LRUCache(capacity=4)
        cache.insert("a")
        cache.lookup("a")
        cache.lookup("a")
        cache.lookup("b")
        assert cache.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_unused_cache_is_zero(self):
        assert LRUCache(capacity=1).hit_ratio == 0.0


class TestSizeAware:
    def test_large_object_evicts_several(self):
        cache = LRUCache(capacity=10)
        for obj in "abcde":
            cache.insert(obj, size=2.0)
        evicted = cache.insert("big", size=6.0)
        assert evicted == ["a", "b", "c"]
        assert cache.used == pytest.approx(10.0)

    def test_oversized_object_not_admitted(self):
        cache = LRUCache(capacity=5)
        cache.insert("a", size=2.0)
        assert cache.insert("huge", size=6.0) == []
        assert "huge" not in cache
        assert "a" in cache

    def test_growing_an_object_can_evict_others(self):
        cache = LRUCache(capacity=4)
        cache.insert("a", size=2.0)
        cache.insert("b", size=2.0)
        evicted = cache.insert("b", size=4.0)
        assert evicted == ["a"]
        assert cache.used == pytest.approx(4.0)

    def test_negative_size_rejected(self):
        cache = LRUCache(capacity=4)
        with pytest.raises(ValueError):
            cache.insert("a", size=-1.0)

    def test_used_tracks_inserts_and_evictions(self):
        cache = LRUCache(capacity=3)
        cache.insert("a")
        cache.insert("b")
        assert cache.used == pytest.approx(2.0)
        cache.insert("c")
        cache.insert("d")
        assert cache.used == pytest.approx(3.0)
        assert len(cache) == 3
