"""Property-based invariants shared by every bounded cache policy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import FIFOCache, LFUCache, LRUCache, make_cache

POLICIES = [LRUCache, LFUCache, FIFOCache]

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup"]),
        st.integers(min_value=0, max_value=20),
        st.floats(min_value=0.1, max_value=4.0),
    ),
    max_size=120,
)


@settings(max_examples=60)
@given(ops=operations, capacity=st.floats(min_value=0.0, max_value=12.0),
       policy=st.sampled_from(POLICIES))
def test_capacity_never_exceeded(ops, capacity, policy):
    cache = policy(capacity)
    shadow: dict[int, float] = {}
    for op, obj, size in ops:
        if op == "insert":
            evicted = cache.insert(obj, size=size)
            for victim in evicted:
                shadow.pop(victim, None)
            if obj in cache:
                shadow[obj] = size
            else:
                shadow.pop(obj, None)
        else:
            cache.lookup(obj)
        assert sum(shadow.values()) <= capacity + 1e-9
        assert cache.used <= capacity + 1e-9


@settings(max_examples=60)
@given(ops=operations, capacity=st.floats(min_value=0.5, max_value=12.0),
       policy=st.sampled_from(POLICIES))
def test_membership_matches_shadow_model(ops, capacity, policy):
    """Evictions reported by insert() are exactly the objects removed."""
    cache = policy(capacity)
    shadow: set[int] = set()
    for op, obj, size in ops:
        if op == "insert":
            evicted = cache.insert(obj, size=size)
            assert len(set(evicted)) == len(evicted)
            for victim in evicted:
                assert victim in shadow or victim == obj
                shadow.discard(victim)
            if obj in cache:
                shadow.add(obj)
            else:
                shadow.discard(obj)
        else:
            assert cache.lookup(obj) == (obj in shadow)
    assert set(cache) == shadow
    assert len(cache) == len(shadow)


@settings(max_examples=40)
@given(ops=operations, policy=st.sampled_from(POLICIES))
def test_counters_sum_to_lookups(ops, policy):
    cache = policy(5.0)
    lookups = 0
    for op, obj, size in ops:
        if op == "insert":
            cache.insert(obj, size=size)
        else:
            cache.lookup(obj)
            lookups += 1
    assert cache.hits + cache.misses == lookups


@settings(max_examples=40)
@given(ops=operations, policy=st.sampled_from(POLICIES))
def test_unit_size_cache_never_holds_more_than_capacity_objects(ops, policy):
    cache = policy(4)
    for op, obj, _ in ops:
        if op == "insert":
            cache.insert(obj)
        else:
            cache.lookup(obj)
        assert len(cache) <= 4


@given(st.sampled_from(["lru", "lfu", "fifo"]))
def test_make_cache_dispatch(policy_name):
    cache = make_cache(policy_name, 3)
    cache.insert("x")
    assert "x" in cache
