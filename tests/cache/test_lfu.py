"""Tests for the LFU cache."""

import pytest

from repro.cache import LFUCache


class TestEvictionPolicy:
    def test_least_frequent_evicted(self):
        cache = LFUCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        cache.lookup("a")  # a: freq 2, b: freq 1
        assert cache.insert("c") == ["b"]
        assert "a" in cache

    def test_tie_broken_by_insertion_order(self):
        cache = LFUCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        # Both frequency 1: the older entry goes first.
        assert cache.insert("c") == ["a"]

    def test_frequency_accumulates(self):
        cache = LFUCache(capacity=3)
        cache.insert("a")
        for _ in range(4):
            cache.lookup("a")
        assert cache.frequency("a") == 5
        assert cache.frequency("missing") == 0

    def test_reinsert_bumps_frequency(self):
        cache = LFUCache(capacity=2)
        cache.insert("a")
        cache.insert("a")
        cache.insert("b")
        assert cache.insert("c") == ["b"]

    def test_min_freq_resets_after_full_eviction(self):
        cache = LFUCache(capacity=1)
        cache.insert("a")
        cache.lookup("a")
        cache.insert("b")  # evicts a despite its higher frequency
        assert "b" in cache and "a" not in cache
        cache.insert("c")
        assert "c" in cache

    def test_eviction_cascade_with_sizes(self):
        cache = LFUCache(capacity=4)
        cache.insert("a", size=2.0)
        cache.insert("b", size=2.0)
        cache.lookup("b")
        evicted = cache.insert("c", size=4.0)
        assert evicted == ["a", "b"]
        assert cache.used == pytest.approx(4.0)

    def test_oversized_not_admitted(self):
        cache = LFUCache(capacity=2)
        assert cache.insert("x", size=3.0) == []
        assert len(cache) == 0


class TestBookkeeping:
    def test_counters(self):
        cache = LFUCache(capacity=2)
        cache.insert("a")
        cache.lookup("a")
        cache.lookup("b")
        assert cache.hits == 1 and cache.misses == 1

    def test_clear(self):
        cache = LFUCache(capacity=2)
        cache.insert("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.frequency("a") == 0
        cache.insert("b")
        assert "b" in cache

    def test_iter_and_contains(self):
        cache = LFUCache(capacity=4)
        cache.insert("a")
        cache.insert("b")
        assert set(cache) == {"a", "b"}
        assert "a" in cache

    def test_grow_object_beyond_capacity_evicts_down(self):
        cache = LFUCache(capacity=3)
        cache.insert("a")
        cache.insert("b")
        cache.insert("b", size=3.0)
        assert "a" not in cache
        assert cache.used <= 3.0
