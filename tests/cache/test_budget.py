"""Tests for cache provisioning policies."""

import pytest

from repro.cache import (
    DEFAULT_BUDGET_FRACTION,
    node_budgets,
    proportional_node_budgets,
    total_budget,
    uniform_node_budgets,
)


class TestTotalBudget:
    def test_formula(self):
        assert total_budget(0.05, 100, 1000) == pytest.approx(5000.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            total_budget(-0.1, 10, 10)

    def test_paper_default_is_five_percent(self):
        assert DEFAULT_BUDGET_FRACTION == 0.05


class TestUniform:
    def test_every_router_gets_f_times_o(self, small_network):
        budgets = uniform_node_budgets(small_network, 0.05, 1000)
        assert len(budgets) == small_network.num_nodes
        assert all(b == pytest.approx(50.0) for b in budgets)

    def test_totals_match(self, small_network):
        budgets = uniform_node_budgets(small_network, 0.1, 500)
        assert sum(budgets) == pytest.approx(
            total_budget(0.1, small_network.num_nodes, 500)
        )


class TestProportional:
    def test_pop_share_proportional_to_population(self, small_network):
        budgets = proportional_node_budgets(small_network, 0.05, 1000)
        # Pop 0 has half the total population.
        pop0 = sum(budgets[small_network.gid(0, i)] for i in range(7))
        assert pop0 == pytest.approx(0.5 * sum(budgets))

    def test_equal_within_a_tree(self, small_network):
        budgets = proportional_node_budgets(small_network, 0.05, 1000)
        tree_budgets = {budgets[small_network.gid(1, i)] for i in range(7)}
        assert len(tree_budgets) == 1

    def test_total_preserved(self, small_network):
        budgets = proportional_node_budgets(small_network, 0.05, 1000)
        assert sum(budgets) == pytest.approx(
            total_budget(0.05, small_network.num_nodes, 1000)
        )


class TestDispatch:
    def test_by_name(self, small_network):
        uniform = node_budgets(small_network, 0.05, 100, "uniform")
        proportional = node_budgets(small_network, 0.05, 100, "proportional")
        assert uniform != proportional
        assert len(uniform) == len(proportional) == small_network.num_nodes

    def test_unknown_split_rejected(self, small_network):
        with pytest.raises(ValueError):
            node_budgets(small_network, 0.05, 100, "quadratic")
