"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.topology == "abilene"
        assert args.budget == 0.05

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--topology", "arpanet"])

    def test_sweep_parameter_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "bandwidth", "1"])


class TestCommands:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "abilene" in out and "att" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--topology", "abilene",
            "--requests", "3000", "--objects", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ICN-NR" in out and "EDGE-Coop" in out
        assert "ICN-NR over EDGE" in out

    def test_sweep_small(self, capsys):
        code = main([
            "sweep", "alpha", "0.5", "1.5",
            "--topology", "abilene",
            "--requests", "2000", "--objects", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "vs alpha" in out
        assert "0.5" in out and "1.5" in out

    def test_treeopt(self, capsys):
        code = main(["treeopt", "--alphas", "0.7", "--objects", "200",
                     "--cache-size", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha=0.7" in out
        assert "expected hops" in out
