"""Repository hygiene: docs exist, reference real artifacts, and the
source tree passes its own static-analysis gate."""

import importlib.util
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _tool_available(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


class TestDocs:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"]
    )
    def test_doc_exists_and_is_substantial(self, name):
        path = ROOT / name
        assert path.is_file(), name
        assert len(path.read_text()) > 500 or name == "LICENSE"

    def test_design_references_real_bench_files(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match).is_file(), match

    def test_experiments_references_real_bench_files(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for match in re.findall(r"`(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / match).is_file(), match

    def test_readme_references_real_examples(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert (ROOT / "examples" / match).is_file(), match


class TestLayout:
    def test_every_paper_artifact_has_a_bench(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        expected = {
            "bench_figure1_popularity.py",
            "bench_table2_zipf_fit.py",
            "bench_figure2_treeopt.py",
            "bench_figure6_baseline.py",
            "bench_figure7_uniform.py",
            "bench_table3_synthetic.py",
            "bench_figure8_sensitivity.py",
            "bench_table4_arity.py",
            "bench_figure9_best_case.py",
            "bench_figure10_bridging.py",
            "bench_section5_other_params.py",
            "bench_idicn_prototype.py",
        }
        assert expected <= benches

    def test_at_least_three_runnable_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        for example in examples:
            source = example.read_text()
            assert '__name__ == "__main__"' in source, example.name

    def test_every_source_module_has_a_docstring(self):
        import ast

        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"


class TestStaticAnalysis:
    """The tree must pass the repo's own linter (and ruff/mypy when
    installed — CI always installs them; the bare container may not)."""

    def test_repro_lint_is_clean(self):
        from repro.lint import lint_paths

        report = lint_paths([ROOT / "src", ROOT / "benchmarks"])
        rendered = report.render_text()
        assert report.exit_code() == 0, rendered
        assert report.errors == 0, rendered

    def test_lint_rule_catalogue_documented_in_design(self):
        from repro.lint import ALL_RULES

        text = (ROOT / "DESIGN.md").read_text()
        for rule in ALL_RULES:
            assert rule.id in text, (
                f"DESIGN.md does not document lint rule {rule.id}"
            )

    @pytest.mark.skipif(
        not _tool_available("ruff"), reason="ruff not installed"
    )
    def test_ruff_is_clean(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "ruff", "check", "src"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(
        not _tool_available("mypy"), reason="mypy not installed"
    )
    def test_mypy_is_clean(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
