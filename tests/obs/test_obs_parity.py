"""The observability contract, engine by engine.

Three pins:

* **disabled-obs parity** — ``observer=None`` (the default) produces a
  result bit-identical to a plain pre-observability run on *both*
  engines (the differential matrix guarantees reference == fast; this
  file guarantees observed-code-path == unobserved-code-path);
* **enabled-obs transparency** — attaching an observer changes *no*
  simulated number, and both engines emit byte-identical trace files
  for the same seed (content-addressed sampling);
* **enabled-obs overhead** — full tracing on a smoke-sized run stays
  within a modest multiple of the plain run (a smoke bound, not a
  benchmark: CI boxes are noisy).
"""

from __future__ import annotations

import time

import pytest

from repro.core import (
    BASELINE_ARCHITECTURES,
    ExperimentConfig,
    Simulator,
    run_experiment,
)
from repro.obs import MetricsRegistry, Observer, TraceSampler, TraceWriter

from ..conftest import assert_results_identical


def _config():
    return ExperimentConfig(
        tree_depth=3, num_objects=120, num_requests=4000, seed=11
    )


def _run_all(engine, observer=None):
    experiment = run_experiment(
        _config(), BASELINE_ARCHITECTURES, engine=engine, observer=observer
    )
    return {"NO-CACHE": experiment.baseline, **experiment.results}


@pytest.mark.parametrize("engine", ["reference", "fast"])
class TestObserverTransparency:
    def test_disabled_obs_matches_plain_run(self, engine):
        plain = _run_all(engine)
        disabled = _run_all(engine, observer=None)
        for name in plain:
            assert_results_identical(plain[name], disabled[name])

    def test_enabled_obs_changes_no_simulated_number(self, engine):
        plain = _run_all(engine)
        observed = _run_all(engine, observer=Observer(MetricsRegistry()))
        for name in plain:
            assert_results_identical(plain[name], observed[name])

    def test_requests_counter_matches_results(self, engine):
        registry = MetricsRegistry()
        results = _run_all(engine, observer=Observer(registry))
        for name, result in results.items():
            arch = result.architecture
            assert registry.value(
                "repro_requests_total", architecture=arch
            ) == result.num_requests


class TestTraceDeterminism:
    def _trace(self, engine, path, rate=0.3, seed=5):
        with TraceWriter(path, TraceSampler(rate=rate, seed=seed)) as tracer:
            observer = Observer(MetricsRegistry(), tracer=tracer)
            _run_all(engine, observer=observer)
        return path.read_bytes()

    def test_engines_emit_byte_identical_traces(self, tmp_path):
        ref = self._trace("reference", tmp_path / "ref.jsonl")
        fast = self._trace("fast", tmp_path / "fast.jsonl")
        assert ref == fast

    def test_repeated_seeded_runs_are_byte_identical(self, tmp_path):
        first = self._trace("fast", tmp_path / "a.jsonl")
        second = self._trace("fast", tmp_path / "b.jsonl")
        assert first == second

    def test_different_sample_seed_changes_the_trace(self, tmp_path):
        a = self._trace("fast", tmp_path / "a.jsonl", seed=5)
        b = self._trace("fast", tmp_path / "b.jsonl", seed=6)
        assert a != b


class TestObserverCoverage:
    """The registry actually reflects the run (not just zeroes)."""

    def test_node_and_link_families_populated(self, small_network,
                                              random_workload):
        workload = random_workload(
            small_network, seed=3, num_requests=800, num_objects=30
        )
        budgets = [3.0] * small_network.num_nodes
        registry = MetricsRegistry()
        arch = BASELINE_ARCHITECTURES[0]
        Simulator(
            small_network, arch, workload, budgets,
            observer=Observer(registry),
        ).run()
        names = registry.names()
        assert "repro_requests_total" in names
        assert "repro_node_serves_total" in names
        assert "repro_link_transfers_total" in names

    def test_copies_and_evictions_counted(self, small_network,
                                          random_workload):
        workload = random_workload(
            small_network, seed=4, num_requests=1200, num_objects=60
        )
        budgets = [2.0] * small_network.num_nodes
        registry = MetricsRegistry()
        arch = BASELINE_ARCHITECTURES[0]
        Simulator(
            small_network, arch, workload, budgets,
            observer=Observer(registry),
        ).run()
        snapshot = registry.snapshot()
        families = {m["name"] for m in snapshot["metrics"]}
        assert "repro_node_copies_total" in families
        assert "repro_node_evictions_total" in families


def _best_of(n, observer_factory):
    best = float("inf")
    for _ in range(n):
        observer = observer_factory()
        start = time.perf_counter()
        _run_all("fast", observer=observer)
        best = min(best, time.perf_counter() - start)
        if observer is not None:
            observer.close()
    return best


class TestOverheadSmoke:
    def test_metrics_observer_overhead_is_bounded(self):
        """Metrics observation must stay within 10% + fixed slack.

        The registry observer only bumps flat per-node counters in the
        hot loop and flushes families post-run, so its cost target is
        the design-doc contract: < 10%.  The absolute slack term
        absorbs scheduler noise on small timings; best-of-N on each
        side to de-noise further.
        """
        plain = _best_of(4, lambda: None)
        observed = _best_of(4, lambda: Observer(MetricsRegistry()))
        assert observed <= plain * 1.10 + 0.25, (
            f"metrics overhead too high: plain={plain:.3f}s "
            f"observed={observed:.3f}s"
        )

    def test_full_tracing_does_not_explode(self, tmp_path):
        """Tracing every request serializes a JSON record per request,
        so it legitimately costs more than 10% on a smoke-sized run —
        the pin here is that it stays within a small constant factor
        (a regression like re-opening the file per record would blow
        far past this)."""
        plain = _best_of(3, lambda: None)
        traced = _best_of(
            3,
            lambda: Observer(
                MetricsRegistry(),
                tracer=TraceWriter(
                    tmp_path / "t.jsonl", TraceSampler(rate=1.0, seed=0)
                ),
            ),
        )
        assert traced <= plain * 5.0 + 1.0, (
            f"tracing overhead exploded: plain={plain:.3f}s "
            f"traced={traced:.3f}s"
        )
