"""MetricsRegistry: counters, gauges, histograms, and both exports."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    REGISTRY_SCHEMA,
    validate_prometheus_text,
    validate_registry_snapshot,
)


class TestSamples:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_requests_total", help="requests")
        c.inc()
        c.inc(4.0)
        assert reg.value("repro_requests_total") == 5.0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_x_total").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_phase_seconds", phase="setup")
        g.add(2.5)
        g.add(-1.0)
        assert reg.value("repro_phase_seconds", phase="setup") == 1.5

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_span_seconds", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        cumulative = h.cumulative()
        assert cumulative == [1, 2, 3]
        assert h.sum == pytest.approx(55.5)
        assert h.count == 3

    def test_labels_split_samples(self):
        reg = MetricsRegistry()
        reg.inc("repro_events_total", event="a")
        reg.inc("repro_events_total", 2.0, event="b")
        assert reg.value("repro_events_total", event="a") == 1.0
        assert reg.value("repro_events_total", event="b") == 2.0

    def test_unwritten_value_is_zero(self):
        reg = MetricsRegistry()
        assert reg.value("repro_never_written_total") == 0.0

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_thing_total")

    def test_label_set_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing_total", a="1")
        with pytest.raises(ValueError):
            reg.counter("repro_thing_total", b="2")


class TestExports:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", 7, architecture="EDGE")
        reg.gauge("repro_phase_seconds", phase="sim").add(0.25)
        h = reg.histogram("repro_span_seconds", buckets=DEFAULT_BUCKETS)
        h.observe(0.003)
        h.observe(4.2)
        return reg

    def test_snapshot_is_schema_valid(self):
        reg = self._populated()
        snapshot = reg.snapshot()
        assert snapshot["schema"] == REGISTRY_SCHEMA
        assert validate_registry_snapshot(snapshot) > 0

    def test_json_roundtrip_is_deterministic(self):
        reg = self._populated()
        text = reg.to_json()
        assert text == self._populated().to_json()
        assert json.loads(text)["schema"] == REGISTRY_SCHEMA

    def test_prometheus_text_validates(self):
        reg = self._populated()
        text = reg.to_prometheus()
        validate_prometheus_text(text)
        assert 'repro_requests_total{architecture="EDGE"} 7' in text
        assert "# TYPE repro_span_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.inc("repro_events_total", host='we"ird\\host\n')
        text = reg.to_prometheus()
        validate_prometheus_text(text)
        assert '\\"' in text and "\\n" in text

    def test_nan_renders_and_validates(self):
        reg = MetricsRegistry()
        reg.gauge("repro_odd_gauge").add(math.nan)
        validate_prometheus_text(reg.to_prometheus())

    def test_infinities_render_prometheus_spellings(self):
        # The text format requires `+Inf`/`-Inf`, not Python's `inf`.
        reg = MetricsRegistry()
        reg.gauge("repro_pos_gauge").set(math.inf)
        reg.gauge("repro_neg_gauge").set(-math.inf)
        text = reg.to_prometheus()
        validate_prometheus_text(text)
        assert "repro_pos_gauge +Inf" in text
        assert "repro_neg_gauge -Inf" in text
        assert " inf" not in text and " -inf" not in text


class TestHistogramBoundaries:
    def test_value_equal_to_bound_counts_toward_that_bucket(self):
        # Prometheus buckets are `le` (<=): an observation exactly on a
        # bound belongs to that bound's bucket, not the next one up.
        reg = MetricsRegistry()
        h = reg.histogram("repro_edge_seconds", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.cumulative() == [1, 1, 1]
        h.observe(10.0)
        assert h.cumulative() == [1, 2, 2]

    def test_above_top_bound_lands_in_inf_bucket_only(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_edge_seconds", buckets=(1.0, 10.0))
        h.observe(10.0000001)
        assert h.cumulative() == [0, 0, 1]

    def test_inf_bucket_line_agrees_with_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_edge_seconds", buckets=(1.0,))
        for v in (0.5, 1.0, 2.0, math.inf):
            h.observe(v)
        text = reg.to_prometheus()
        validate_prometheus_text(text)
        assert 'repro_edge_seconds_bucket{le="1"} 2' in text
        assert 'repro_edge_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_edge_seconds_count 4" in text


class TestMerge:
    def _shard(self, requests: float, phase: float) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", requests, architecture="EDGE")
        reg.gauge("repro_phase_seconds", phase="sim").set(phase)
        h = reg.histogram("repro_span_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        return reg

    def test_counters_sum(self):
        parent = self._shard(3.0, 0.1)
        parent.merge(self._shard(4.0, 0.2))
        assert (
            parent.value("repro_requests_total", architecture="EDGE") == 7.0
        )

    def test_gauges_last_writer_wins(self):
        parent = self._shard(1.0, 0.1)
        parent.merge(self._shard(1.0, 0.9))
        assert parent.value("repro_phase_seconds", phase="sim") == 0.9

    def test_histograms_add_per_bucket(self):
        parent = self._shard(1.0, 0.1)
        parent.merge(self._shard(1.0, 0.1))
        h = parent.histogram("repro_span_seconds", buckets=(1.0, 10.0))
        assert h.cumulative() == [2, 4, 4]
        assert h.sum == pytest.approx(11.0)

    def test_histogram_bucket_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("repro_span_seconds", buckets=(1.0, 10.0))
        other = MetricsRegistry()
        other.histogram("repro_span_seconds", buckets=(2.0, 20.0))
        with pytest.raises(ValueError, match="buckets"):
            parent.merge(other)

    def test_merge_order_invisible_for_counters_and_histograms(self):
        shards = [self._shard(float(n), 0.0) for n in range(1, 4)]
        forward = MetricsRegistry()
        for shard in shards:
            forward.merge(shard)
        backward = MetricsRegistry()
        for shard in reversed(shards):
            backward.merge(shard)
        assert forward.to_json() == backward.to_json()

    def test_merge_accepts_snapshot_dict(self):
        parent = MetricsRegistry()
        parent.merge(self._shard(5.0, 0.3).snapshot())
        assert (
            parent.value("repro_requests_total", architecture="EDGE") == 5.0
        )

    def test_type_conflict_rejected_on_merge(self):
        parent = MetricsRegistry()
        parent.counter("repro_thing_total")
        other = MetricsRegistry()
        other.gauge("repro_thing_total").set(1.0)
        with pytest.raises(ValueError):
            parent.merge(other)

    def test_preregistered_help_wins(self):
        parent = MetricsRegistry()
        parent.counter("repro_requests_total", help="parent help")
        shard = MetricsRegistry()
        shard.counter("repro_requests_total", help="shard help").inc(2.0)
        parent.merge(shard)
        families = {
            f["name"]: f for f in parent.snapshot()["metrics"]
        }
        assert families["repro_requests_total"]["help"] == "parent help"

    def test_from_snapshot_roundtrip_is_byte_identical(self):
        reg = self._shard(7.0, 0.4)
        # Exercise the +Inf bucket so the cumulative differencing covers
        # the implicit tail too.
        reg.histogram("repro_span_seconds", buckets=(1.0, 10.0)).observe(
            99.0
        )
        rebuilt = MetricsRegistry.from_snapshot(reg.snapshot())
        assert rebuilt.to_json() == reg.to_json()

    def test_from_snapshot_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsRegistry.from_snapshot({"schema": "nope", "metrics": []})

    def test_totals_sums_counters_only(self):
        reg = self._shard(2.0, 0.1)
        reg.inc("repro_requests_total", 3.0, architecture="ICN-NR")
        totals = reg.totals()
        assert totals == {"repro_requests_total": 5.0}
        assert "repro_phase_seconds" not in totals
        assert "repro_span_seconds" not in totals
