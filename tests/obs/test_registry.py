"""MetricsRegistry: counters, gauges, histograms, and both exports."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    REGISTRY_SCHEMA,
    validate_prometheus_text,
    validate_registry_snapshot,
)


class TestSamples:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_requests_total", help="requests")
        c.inc()
        c.inc(4.0)
        assert reg.value("repro_requests_total") == 5.0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_x_total").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_phase_seconds", phase="setup")
        g.add(2.5)
        g.add(-1.0)
        assert reg.value("repro_phase_seconds", phase="setup") == 1.5

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_span_seconds", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        cumulative = h.cumulative()
        assert cumulative == [1, 2, 3]
        assert h.sum == pytest.approx(55.5)
        assert h.count == 3

    def test_labels_split_samples(self):
        reg = MetricsRegistry()
        reg.inc("repro_events_total", event="a")
        reg.inc("repro_events_total", 2.0, event="b")
        assert reg.value("repro_events_total", event="a") == 1.0
        assert reg.value("repro_events_total", event="b") == 2.0

    def test_unwritten_value_is_zero(self):
        reg = MetricsRegistry()
        assert reg.value("repro_never_written_total") == 0.0

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_thing_total")

    def test_label_set_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing_total", a="1")
        with pytest.raises(ValueError):
            reg.counter("repro_thing_total", b="2")


class TestExports:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", 7, architecture="EDGE")
        reg.gauge("repro_phase_seconds", phase="sim").add(0.25)
        h = reg.histogram("repro_span_seconds", buckets=DEFAULT_BUCKETS)
        h.observe(0.003)
        h.observe(4.2)
        return reg

    def test_snapshot_is_schema_valid(self):
        reg = self._populated()
        snapshot = reg.snapshot()
        assert snapshot["schema"] == REGISTRY_SCHEMA
        assert validate_registry_snapshot(snapshot) > 0

    def test_json_roundtrip_is_deterministic(self):
        reg = self._populated()
        text = reg.to_json()
        assert text == self._populated().to_json()
        assert json.loads(text)["schema"] == REGISTRY_SCHEMA

    def test_prometheus_text_validates(self):
        reg = self._populated()
        text = reg.to_prometheus()
        validate_prometheus_text(text)
        assert 'repro_requests_total{architecture="EDGE"} 7' in text
        assert "# TYPE repro_span_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.inc("repro_events_total", host='we"ird\\host\n')
        text = reg.to_prometheus()
        validate_prometheus_text(text)
        assert '\\"' in text and "\\n" in text

    def test_nan_renders_and_validates(self):
        reg = MetricsRegistry()
        reg.gauge("repro_odd_gauge").add(math.nan)
        validate_prometheus_text(reg.to_prometheus())
