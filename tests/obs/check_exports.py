"""Standalone validator for a directory of observability exports.

CI runs a traced smoke simulation (``python -m repro.obs smoke``) and
then this script against the output directory::

    python tests/obs/check_exports.py /tmp/obs-smoke

It re-validates all artifacts against the versioned schemas in
:mod:`repro.obs.schema` — independently of the writer process, so a
writer bug that bypasses its own inline validation still fails CI —
and cross-checks that the JSON snapshot and the Prometheus text expose
the same sample count.  Exit code 0 on success, 1 with a diagnostic on
any failure.

The same entry point also understands ``sweep-smoke`` output
directories (``registry.json`` + ``registry.deterministic.json`` +
``spans.jsonl`` + ``heartbeat.json``): the mode is detected from which
artifacts are present.  For sweeps it additionally checks that the
deterministic snapshot really is the full registry minus the
wall-clock families, that the span file has exactly one root, and that
the final heartbeat accounts for every point.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.sweep import WALLCLOCK_METRICS
from repro.obs import (
    SchemaError,
    validate_heartbeat,
    validate_prometheus_text,
    validate_registry_snapshot,
    validate_span_file,
    validate_trace_file,
)


def check_exports(out_dir: Path) -> list[str]:
    """Validate one smoke export directory; returns findings."""
    findings: list[str] = []
    registry_path = out_dir / "registry.json"
    prom_path = out_dir / "metrics.prom"
    trace_path = out_dir / "trace.jsonl"
    for path in (registry_path, prom_path, trace_path):
        if not path.is_file():
            findings.append(f"missing artifact: {path.name}")
    if findings:
        return findings

    json_samples = prom_samples = None
    try:
        snapshot = json.loads(registry_path.read_text(encoding="utf-8"))
        json_samples = validate_registry_snapshot(snapshot)
    except (json.JSONDecodeError, SchemaError) as exc:
        findings.append(f"registry.json: {exc}")
    try:
        prom_samples = validate_prometheus_text(
            prom_path.read_text(encoding="utf-8")
        )
    except SchemaError as exc:
        findings.append(f"metrics.prom: {exc}")
    try:
        stats = validate_trace_file(trace_path)
        if stats.headers == 0:
            findings.append("trace.jsonl: no run headers")
        if stats.requests == 0:
            findings.append("trace.jsonl: no sampled request records")
    except SchemaError as exc:
        findings.append(f"trace.jsonl: {exc}")

    # A histogram sample expands to several exposition lines, so the
    # text export can only ever have at least as many samples as the
    # JSON snapshot; fewer means the two exports drifted apart.
    if (
        json_samples is not None
        and prom_samples is not None
        and prom_samples < json_samples
    ):
        findings.append(
            "export drift: registry.json has "
            f"{json_samples} sample(s), metrics.prom only {prom_samples}"
        )
    return findings


def _family_names(snapshot: dict) -> set[str]:
    return {family["name"] for family in snapshot.get("metrics", [])}


def check_sweep_exports(out_dir: Path) -> list[str]:
    """Validate one sweep-smoke export directory; returns findings."""
    findings: list[str] = []
    registry_path = out_dir / "registry.json"
    deterministic_path = out_dir / "registry.deterministic.json"
    spans_path = out_dir / "spans.jsonl"
    heartbeat_path = out_dir / "heartbeat.json"
    paths = (registry_path, deterministic_path, spans_path, heartbeat_path)
    for path in paths:
        if not path.is_file():
            findings.append(f"missing artifact: {path.name}")
    if findings:
        return findings

    full = deterministic = None
    try:
        full = json.loads(registry_path.read_text(encoding="utf-8"))
        validate_registry_snapshot(full)
    except (json.JSONDecodeError, SchemaError) as exc:
        findings.append(f"registry.json: {exc}")
    try:
        deterministic = json.loads(
            deterministic_path.read_text(encoding="utf-8")
        )
        validate_registry_snapshot(deterministic)
    except (json.JSONDecodeError, SchemaError) as exc:
        findings.append(f"registry.deterministic.json: {exc}")
    if full is not None and deterministic is not None:
        stripped = _family_names(deterministic)
        if stripped & WALLCLOCK_METRICS:
            findings.append(
                "registry.deterministic.json: wall-clock families leaked "
                "into the deterministic snapshot: "
                f"{sorted(stripped & WALLCLOCK_METRICS)}"
            )
        if stripped != _family_names(full) - WALLCLOCK_METRICS:
            findings.append(
                "registry.deterministic.json: families are not "
                "registry.json minus the wall-clock set"
            )

    try:
        stats = validate_span_file(spans_path)
        if stats.roots != 1:
            findings.append(
                "spans.jsonl: expected exactly 1 root span, "
                f"found {stats.roots}"
            )
    except SchemaError as exc:
        findings.append(f"spans.jsonl: {exc}")

    try:
        heartbeat = json.loads(heartbeat_path.read_text(encoding="utf-8"))
        validate_heartbeat(heartbeat)
        total = heartbeat["total"]
        finished = heartbeat["done"] + heartbeat["failed"]
        if total == 0:
            findings.append("heartbeat.json: sweep had no points")
        elif finished != total:
            findings.append(
                "heartbeat.json: final heartbeat accounts for "
                f"{finished}/{total} points"
            )
        if heartbeat["in_flight"] != 0:
            findings.append(
                "heartbeat.json: final heartbeat still reports "
                f"{heartbeat['in_flight']} point(s) in flight"
            )
    except (json.JSONDecodeError, SchemaError, KeyError) as exc:
        findings.append(f"heartbeat.json: {exc!r}")
    return findings


def main(argv: list[str]) -> int:
    """CLI wrapper; prints findings and returns the exit code."""
    if len(argv) != 1:
        print("usage: check_exports.py <export-dir>", file=sys.stderr)
        return 2
    out_dir = Path(argv[0])
    if (out_dir / "spans.jsonl").is_file() or (
        out_dir / "heartbeat.json"
    ).is_file():
        findings = check_sweep_exports(out_dir)
        flavour = "sweep exports"
    else:
        findings = check_exports(out_dir)
        flavour = "exports"
    if findings:
        for finding in findings:
            print(f"FAIL: {finding}", file=sys.stderr)
        return 1
    print(f"{flavour} in {argv[0]} are schema-valid and consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
