"""Standalone validator for a directory of observability exports.

CI runs a traced smoke simulation (``python -m repro.obs smoke``) and
then this script against the output directory::

    python tests/obs/check_exports.py /tmp/obs-smoke

It re-validates all three artifacts against the versioned schemas in
:mod:`repro.obs.schema` — independently of the writer process, so a
writer bug that bypasses its own inline validation still fails CI —
and cross-checks that the JSON snapshot and the Prometheus text expose
the same sample count.  Exit code 0 on success, 1 with a diagnostic on
any failure.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs import (
    SchemaError,
    validate_prometheus_text,
    validate_registry_snapshot,
    validate_trace_file,
)


def check_exports(out_dir: Path) -> list[str]:
    """Validate one export directory; returns human-readable findings."""
    findings: list[str] = []
    registry_path = out_dir / "registry.json"
    prom_path = out_dir / "metrics.prom"
    trace_path = out_dir / "trace.jsonl"
    for path in (registry_path, prom_path, trace_path):
        if not path.is_file():
            findings.append(f"missing artifact: {path.name}")
    if findings:
        return findings

    json_samples = prom_samples = None
    try:
        snapshot = json.loads(registry_path.read_text(encoding="utf-8"))
        json_samples = validate_registry_snapshot(snapshot)
    except (json.JSONDecodeError, SchemaError) as exc:
        findings.append(f"registry.json: {exc}")
    try:
        prom_samples = validate_prometheus_text(
            prom_path.read_text(encoding="utf-8")
        )
    except SchemaError as exc:
        findings.append(f"metrics.prom: {exc}")
    try:
        stats = validate_trace_file(trace_path)
        if stats.headers == 0:
            findings.append("trace.jsonl: no run headers")
        if stats.requests == 0:
            findings.append("trace.jsonl: no sampled request records")
    except SchemaError as exc:
        findings.append(f"trace.jsonl: {exc}")

    # A histogram sample expands to several exposition lines, so the
    # text export can only ever have at least as many samples as the
    # JSON snapshot; fewer means the two exports drifted apart.
    if (
        json_samples is not None
        and prom_samples is not None
        and prom_samples < json_samples
    ):
        findings.append(
            "export drift: registry.json has "
            f"{json_samples} sample(s), metrics.prom only {prom_samples}"
        )
    return findings


def main(argv: list[str]) -> int:
    """CLI wrapper; prints findings and returns the exit code."""
    if len(argv) != 1:
        print("usage: check_exports.py <export-dir>", file=sys.stderr)
        return 2
    findings = check_exports(Path(argv[0]))
    if findings:
        for finding in findings:
            print(f"FAIL: {finding}", file=sys.stderr)
        return 1
    print(f"exports in {argv[0]} are schema-valid and consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
