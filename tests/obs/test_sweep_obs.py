"""Sweep-scale observability: merged shards, spans, heartbeats, parity.

The acceptance contracts:

* a parallel sweep's merged registry (wall-clock families stripped) and
  merged span file are byte-identical across two same-seed runs *and*
  identical to a serial run with the same chunk size;
* attaching observer/progress/spans changes no simulated number — and
  ``None`` sinks (the default) stay bit-identical to pre-observability
  behaviour;
* the orchestration counters and the final heartbeat tell the truth
  about completions, failures, retries, and cancellations.
"""

from __future__ import annotations

import json

from repro.core import (
    ICN_SP,
    ExperimentConfig,
    SweepPoint,
    run_sweep,
    seeded_configs,
)
from repro.core.sweep import WALLCLOCK_METRICS, deterministic_snapshot
from repro.idicn.retry import RetryPolicy
from repro.obs import (
    Observer,
    ProgressReporter,
    SpanTracker,
    read_heartbeat,
    validate_span_file,
    validate_span_record,
)

SMALL = ExperimentConfig(
    num_requests=2_000, num_objects=100, tree_depth=2, seed=7
)


def _points(n: int = 4) -> list[SweepPoint]:
    configs = seeded_configs(
        2013, [SMALL.with_(alpha=0.7 + 0.1 * i) for i in range(n)]
    )
    return [
        SweepPoint(key=f"alpha-{i}", config=config, architectures=(ICN_SP,))
        for i, config in enumerate(configs)
    ]


def _observed_run(tmp_path, tag: str, workers: int, chunk_size: int = 2):
    observer = Observer()
    tracker = SpanTracker(2013)
    progress = ProgressReporter(tmp_path / f"heartbeat-{tag}.json")
    outcome = run_sweep(
        _points(),
        workers=workers,
        chunk_size=chunk_size,
        observer=observer,
        progress=progress,
        spans=tracker,
    )
    return outcome, observer, tracker, progress


def _canonical(snapshot) -> str:
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def _result_fingerprint(outcome):
    return {
        key: (
            result.baseline.total_latency,
            result.results["ICN-SP"].total_latency,
            result.results["ICN-SP"].total_origin_load,
        )
        for key, result in outcome.results.items()
    }


class TestDeterminism:
    def test_parallel_artifacts_byte_identical_across_runs_and_serial(
        self, tmp_path
    ):
        first = _observed_run(tmp_path, "a", workers=2)
        second = _observed_run(tmp_path, "b", workers=2)
        serial = _observed_run(tmp_path, "s", workers=0)
        snapshots = [
            _canonical(deterministic_snapshot(run[1].registry))
            for run in (first, second, serial)
        ]
        assert snapshots[0] == snapshots[1] == snapshots[2]
        span_files = [run[2].to_jsonl() for run in (first, second, serial)]
        assert span_files[0] == span_files[1] == span_files[2]

    def test_wallclock_families_present_but_stripped(self, tmp_path):
        _, observer, _, _ = _observed_run(tmp_path, "w", workers=2)
        full = {f["name"] for f in observer.registry.snapshot()["metrics"]}
        stripped = {
            f["name"]
            for f in deterministic_snapshot(observer.registry)["metrics"]
        }
        assert "repro_sweep_chunk_seconds" in full
        assert not (stripped & WALLCLOCK_METRICS)
        assert "repro_requests_total" in stripped

    def test_span_tree_shape(self, tmp_path):
        _, _, tracker, _ = _observed_run(tmp_path, "t", workers=2)
        path = tmp_path / "spans.jsonl"
        tracker.write(path)
        stats = validate_span_file(path)
        # 1 sweep + 2 chunks (4 points / chunk_size 2) + 4 points.
        assert stats.spans == 7
        assert stats.roots == 1
        kinds = [
            json.loads(line)["kind"]
            for line in path.read_text().splitlines()
        ]
        assert kinds.count("chunk") == 2
        assert kinds.count("point") == 4

    def test_point_spans_carry_key_seed_status_requests(self, tmp_path):
        _, _, tracker, _ = _observed_run(tmp_path, "p", workers=2)
        points = [
            r for r in tracker.records() if r["kind"] == "point"
        ]
        configs = {p.key: p.config for p in _points()}
        for record in points:
            validate_span_record(record)
            attrs = record["attrs"]
            assert attrs["status"] == "ok"
            assert attrs["seed"] == configs[attrs["key"]].seed
            # baseline + ICN-SP, 1600 measured (post-warmup)
            # requests each.
            assert attrs["requests"] == 3_200


class TestParity:
    def test_sinks_change_no_simulated_number(self, tmp_path):
        bare = run_sweep(_points(), workers=2, chunk_size=2)
        observed, _, _, _ = _observed_run(tmp_path, "par", workers=2)
        assert _result_fingerprint(bare) == _result_fingerprint(observed)

    def test_serial_sinks_change_no_simulated_number(self, tmp_path):
        bare = run_sweep(_points(), workers=0, chunk_size=2)
        observed, _, _, _ = _observed_run(tmp_path, "ser", workers=0)
        assert _result_fingerprint(bare) == _result_fingerprint(observed)


class TestAccounting:
    def test_orchestration_counters_clean_run(self, tmp_path):
        _, observer, _, _ = _observed_run(tmp_path, "c", workers=2)
        totals = observer.registry.totals()
        assert totals["repro_sweep_points_total"] == 4.0
        assert totals["repro_sweep_points_completed"] == 4.0
        assert totals["repro_sweep_points_failed"] == 0.0
        assert totals["repro_sweep_points_cancelled"] == 0.0
        assert totals["repro_sweep_points_retried"] == 0.0
        assert totals["repro_sweep_attempts_total"] == 4.0
        # Simulation counters merged from the worker shards: 4 points
        # x (baseline + ICN-SP) x 1600 measured requests.
        assert totals["repro_requests_total"] == 12_800.0

    def test_final_heartbeat_truthful(self, tmp_path):
        _, _, _, progress = _observed_run(tmp_path, "h", workers=2)
        payload = read_heartbeat(progress.path)
        assert payload["total"] == 4
        assert payload["done"] == 4
        assert payload["failed"] == 0
        assert payload["in_flight"] == 0
        assert (
            payload["counters"]["repro_sweep_points_completed"] == 4.0
        )

    def test_failures_and_retries_counted(self, tmp_path):
        observer = Observer()
        progress = ProgressReporter(tmp_path / "heartbeat-f.json")
        outcome = run_sweep(
            _points(3),
            workers=0,
            runner=_always_failing_runner,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0
            ),
            observer=observer,
            progress=progress,
        )
        assert len(outcome.failures) == 3
        totals = observer.registry.totals()
        assert totals["repro_sweep_points_failed"] == 3.0
        assert totals["repro_sweep_points_completed"] == 0.0
        assert totals["repro_sweep_points_retried"] == 3.0
        assert totals["repro_sweep_attempts_total"] == 6.0
        payload = read_heartbeat(progress.path)
        assert payload["failed"] == 3
        assert payload["retried"] == 3

    def test_cancelled_points_counted(self, tmp_path):
        observer = Observer()
        outcome = run_sweep(
            _points(3), workers=0, timeout=0.0, observer=observer
        )
        assert len(outcome.cancelled) == 3
        totals = observer.registry.totals()
        assert totals["repro_sweep_points_cancelled"] == 3.0
        assert totals["repro_sweep_points_failed"] == 3.0
        assert totals["repro_sweep_attempts_total"] == 0.0

    def test_retry_chunks_get_distinct_span_paths(self, tmp_path):
        tracker = SpanTracker(2013)
        outcome = run_sweep(
            _points(3),
            workers=2,
            chunk_size=3,
            runner=_always_failing_runner,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0
            ),
            spans=tracker,
        )
        assert len(outcome.failures) == 3
        chunk_names = sorted(
            r["name"] for r in tracker.records() if r["kind"] == "chunk"
        )
        assert chunk_names[0] == "chunk-0000"
        assert [n for n in chunk_names if n.startswith("retry-")] == [
            "retry-alpha-0-2",
            "retry-alpha-1-2",
            "retry-alpha-2-2",
        ]


def _always_failing_runner(point, engine):
    raise RuntimeError(f"injected fault at {point.key}")
