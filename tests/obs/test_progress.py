"""ProgressReporter: atomic heartbeats, cadence, ETA, and rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    PROGRESS_SCHEMA,
    ProgressReporter,
    SchemaError,
    read_heartbeat,
    render_heartbeat,
    validate_heartbeat,
)


class _FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestWrites:
    def test_heartbeat_parses_and_validates(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        reporter = ProgressReporter(path, total=4)
        reporter.start()
        reporter.update(done=2, failed=1, in_flight=1)
        payload = read_heartbeat(path)
        assert payload["schema"] == PROGRESS_SCHEMA
        assert (payload["done"], payload["failed"]) == (2, 1)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "sub" / "heartbeat.json"
        reporter = ProgressReporter(path, total=2)
        reporter.start()
        reporter.update(done=2, force=True)
        assert [p.name for p in path.parent.iterdir()] == ["heartbeat.json"]

    def test_cadence_batches_writes(self, tmp_path):
        reporter = ProgressReporter(
            tmp_path / "hb.json", total=10, every=5
        )
        reporter.start()
        written = [reporter.update(done=n) for n in range(1, 11)]
        # Only the 5th and 10th completions hit the disk.
        assert written == [False] * 4 + [True] + [False] * 4 + [True]

    def test_duplicate_finished_count_not_rewritten(self, tmp_path):
        reporter = ProgressReporter(tmp_path / "hb.json", total=4)
        reporter.start()
        assert reporter.update(done=1)
        assert not reporter.update(done=1, in_flight=3)
        assert reporter.update(done=1, in_flight=3, force=True)

    def test_counters_sorted_in_payload(self, tmp_path):
        path = tmp_path / "hb.json"
        reporter = ProgressReporter(path, total=1)
        reporter.update(
            done=1, counters={"repro_b_total": 2.0, "repro_a_total": 1.0}
        )
        payload = read_heartbeat(path)
        assert list(payload["counters"]) == ["repro_a_total", "repro_b_total"]

    def test_bad_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            ProgressReporter(tmp_path / "hb.json", every=0)


class TestEta:
    def test_eta_is_rate_based(self, tmp_path):
        clock = _FakeClock()
        reporter = ProgressReporter(
            tmp_path / "hb.json", total=10, clock=clock
        )
        clock.now += 6.0
        reporter.update(done=3, force=True)
        payload = read_heartbeat(tmp_path / "hb.json")
        assert payload["elapsed_seconds"] == 6.0
        # 2 s/point, 7 points to go.
        assert payload["eta_seconds"] == 14.0

    def test_eta_null_when_not_computable(self, tmp_path):
        clock = _FakeClock()
        reporter = ProgressReporter(
            tmp_path / "hb.json", total=10, clock=clock
        )
        clock.now += 1.0
        reporter.update(done=0, force=True)
        assert read_heartbeat(tmp_path / "hb.json")["eta_seconds"] is None


class TestValidation:
    def test_overcounted_heartbeat_rejected(self, tmp_path):
        path = tmp_path / "hb.json"
        reporter = ProgressReporter(path, total=2)
        reporter.update(done=2, force=True)
        payload = json.loads(path.read_text())
        payload["done"] = 5
        with pytest.raises(SchemaError, match="exceed"):
            validate_heartbeat(payload)

    def test_unknown_field_rejected(self, tmp_path):
        path = tmp_path / "hb.json"
        ProgressReporter(path, total=1).finish()
        payload = json.loads(path.read_text())
        payload["surprise"] = 1
        with pytest.raises(SchemaError, match="unexpected"):
            validate_heartbeat(payload)

    def test_render_smoke(self, tmp_path):
        path = tmp_path / "hb.json"
        reporter = ProgressReporter(path, total=4)
        reporter.update(
            done=3, failed=1, counters={"repro_requests_total": 9.0}
        )
        text = render_heartbeat(read_heartbeat(path))
        assert "4/4 points" in text
        assert "repro_requests_total = 9.0" in text
