"""Profiling hooks: wall-clock phase timers and sim-clock span timers."""

from __future__ import annotations

import pytest

from repro.obs import (
    PHASE_METRIC,
    SIM_SPAN_METRIC,
    MetricsRegistry,
    PhaseTimer,
    SimClockTimer,
)


class TestPhaseTimer:
    def test_phases_accumulate_into_gauge(self):
        reg = MetricsRegistry()
        timer = PhaseTimer(reg)
        with timer.phase("setup"):
            pass
        with timer.phase("setup"):
            pass
        with timer.phase("run"):
            pass
        phases = timer.as_dict()
        assert set(phases) == {"setup", "run"}
        assert phases["setup"] >= 0.0
        assert reg.value(PHASE_METRIC, phase="run") >= 0.0

    def test_as_dict_rounds(self):
        timer = PhaseTimer(MetricsRegistry())
        with timer.phase("x"):
            pass
        value = timer.as_dict(digits=3)["x"]
        assert value == round(value, 3)


class TestSimClockTimer:
    def test_spans_observe_sim_clock_deltas(self):
        clock = {"now": 0.0}
        reg = MetricsRegistry()
        timer = SimClockTimer(lambda: clock["now"], reg)
        with timer.span("resolve"):
            clock["now"] += 2.0
        with timer.span("resolve"):
            clock["now"] += 3.0
        hist = reg.histogram(SIM_SPAN_METRIC, span="resolve")
        assert hist.count == 2
        assert hist.sum == pytest.approx(5.0)
