"""Hierarchical spans: determinism, merging, and schema validation."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    SPAN_SCHEMA,
    SchemaError,
    SpanTracker,
    merge_span_records,
    span_id,
    validate_span_file,
    validate_span_record,
)


def _small_tree(seed: int = 7) -> SpanTracker:
    tracker = SpanTracker(seed)
    run = tracker.open("run", "run", seed=seed)
    with tracker.span("sweep", "sweep", points=2):
        with tracker.span("chunk-0000", "chunk", points=2) as chunk:
            chunk.observe("queue_depth", 3.0)
            chunk.observe("queue_depth", 1.0)
            with tracker.span("point-a", "point", key="a", requests=10):
                pass
            with tracker.span("point-b", "point", key="b", requests=12):
                pass
    tracker.close(run)
    return tracker


class TestIdentity:
    def test_span_id_is_pure_function_of_seed_and_path(self):
        assert span_id(7, "run/sweep") == span_id(7, "run/sweep")
        assert span_id(7, "run/sweep") != span_id(8, "run/sweep")
        assert span_id(7, "run/sweep") != span_id(7, "run/chunk")
        assert len(span_id(7, "run")) == 16

    def test_two_builds_are_byte_identical(self):
        assert _small_tree().to_jsonl() == _small_tree().to_jsonl()

    def test_records_are_path_sorted_parents_first(self):
        records = _small_tree().records()
        paths = [r["path"] for r in records]
        assert paths == sorted(paths)
        ids = {r["path"]: r["id"] for r in records}
        for record in records:
            if record["parent"] is not None:
                parent_path = record["path"].rsplit("/", 1)[0]
                assert record["parent"] == ids[parent_path]

    def test_observations_aggregate_count_sum_min_max(self):
        records = _small_tree().records()
        chunk = next(r for r in records if r["kind"] == "chunk")
        stats = chunk["observations"]["queue_depth"]
        assert stats == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}


class TestDiscipline:
    def test_duplicate_path_rejected(self):
        tracker = SpanTracker(1)
        with tracker.span("run", "run"):
            pass
        with pytest.raises(ValueError, match="duplicate"):
            tracker.open("run", "run")

    def test_closing_non_innermost_rejected(self):
        tracker = SpanTracker(1)
        outer = tracker.open("run", "run")
        tracker.open("sweep", "sweep")
        with pytest.raises(ValueError, match="innermost"):
            tracker.close(outer)

    def test_records_while_open_rejected(self):
        tracker = SpanTracker(1)
        tracker.open("run", "run")
        with pytest.raises(ValueError, match="still open"):
            tracker.records()

    def test_unknown_kind_and_slash_name_rejected(self):
        tracker = SpanTracker(1)
        with pytest.raises(ValueError, match="hierarchy"):
            tracker.open("run", "epoch")
        with pytest.raises(ValueError, match="no '/'"):
            tracker.open("a/b", "run")


class TestWorkerMerge:
    def test_prefixed_worker_records_link_to_parent_chunk(self):
        parent = SpanTracker(7)
        run = parent.open("run", "run")
        with parent.span("chunk-0000", "chunk") as chunk:
            chunk_path = chunk.path
        worker = SpanTracker(7, prefix=chunk_path)
        with worker.span("point-a", "point", key="a"):
            pass
        parent.extend(worker.records())
        parent.close(run)
        records = parent.records()
        point = next(r for r in records if r["kind"] == "point")
        assert point["path"] == "run/chunk-0000/point-a"
        assert point["parent"] == span_id(7, chunk_path)

    def test_merge_span_records_order_independent(self):
        a = [{"path": "run", "id": "x"}]
        b = [{"path": "run/chunk", "id": "y"}]
        assert merge_span_records(a, b) == merge_span_records(b, a)

    def test_merge_span_records_rejects_duplicates(self):
        a = [{"path": "run", "id": "x"}]
        with pytest.raises(ValueError, match="duplicate"):
            merge_span_records(a, a)


class TestValidation:
    def test_tree_validates(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        _small_tree().write(path)
        stats = validate_span_file(path)
        assert stats.spans == 5
        assert stats.roots == 1

    def test_record_with_wrong_id_rejected(self):
        record = _small_tree().records()[0]
        record["id"] = "0" * 16
        with pytest.raises(SchemaError, match="id"):
            validate_span_record(record)

    def test_record_with_wrong_schema_rejected(self):
        record = _small_tree().records()[0]
        record["schema"] = "repro.obs/spans/v0"
        with pytest.raises(SchemaError, match="schema"):
            validate_span_record(record)

    def test_unsorted_file_rejected(self, tmp_path):
        records = _small_tree().records()
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "".join(
                json.dumps(r, sort_keys=True) + "\n"
                for r in reversed(records)
            )
        )
        with pytest.raises(SchemaError, match="order"):
            validate_span_file(path)

    def test_orphan_record_rejected(self, tmp_path):
        records = [
            r for r in _small_tree().records() if r["kind"] != "chunk"
        ]
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        with pytest.raises(SchemaError, match="parent"):
            validate_span_file(path)

    def test_schema_tag_exported(self):
        assert all(
            r["schema"] == SPAN_SCHEMA for r in _small_tree().records()
        )
