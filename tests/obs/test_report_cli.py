"""The ``python -m repro.obs`` CLI: smoke runs and report rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, validate_trace_file
from repro.obs.report import build_parser, main, render_snapshot, run_smoke


@pytest.fixture(scope="module")
def smoke_dir(tmp_path_factory):
    """One shared small smoke run (it simulates six architectures)."""
    out = tmp_path_factory.mktemp("obs-smoke")
    run_smoke(out, num_requests=1500, num_objects=80, engine="fast")
    return out


class TestSmoke:
    def test_writes_all_three_artifacts(self, smoke_dir):
        for name in ("registry.json", "metrics.prom", "trace.jsonl"):
            assert (smoke_dir / name).is_file(), name

    def test_trace_validates_and_covers_all_runs(self, smoke_dir):
        stats = validate_trace_file(smoke_dir / "trace.jsonl")
        # no-cache baseline + each baseline architecture, one header each
        assert stats.headers >= 2
        assert stats.requests > 0

    def test_registry_snapshot_parses(self, smoke_dir):
        snapshot = json.loads((smoke_dir / "registry.json").read_text())
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_requests_total" in names

    def test_cli_smoke_and_report(self, tmp_path, capsys):
        out = tmp_path / "run"
        code = main(
            [
                "smoke", "--out", str(out), "--requests", "800",
                "--objects", "50", "--engine", "fast",
            ]
        )
        assert code == 0
        assert "smoke run ok" in capsys.readouterr().out
        code = main(["report", str(out)])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "repro_requests_total" in rendered
        assert "trace:" in rendered


class TestCheckExports:
    def test_clean_exports_pass(self, smoke_dir):
        from .check_exports import check_exports

        assert check_exports(smoke_dir) == []

    def test_missing_artifact_reported(self, tmp_path):
        from .check_exports import check_exports

        findings = check_exports(tmp_path)
        assert any("missing artifact" in f for f in findings)

    def test_corrupt_trace_reported(self, smoke_dir, tmp_path):
        from .check_exports import check_exports

        broken = tmp_path / "broken"
        broken.mkdir()
        for name in ("registry.json", "metrics.prom"):
            (broken / name).write_text(
                (smoke_dir / name).read_text(), encoding="utf-8"
            )
        (broken / "trace.jsonl").write_text("not json\n", encoding="utf-8")
        findings = check_exports(broken)
        assert any("trace.jsonl" in f for f in findings)


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    """One shared small sweep-smoke run through the CLI."""
    out = tmp_path_factory.mktemp("obs-sweep")
    code = main(
        [
            "sweep-smoke", "--out", str(out), "--points", "3",
            "--requests", "1200", "--objects", "60", "--workers", "2",
        ]
    )
    assert code == 0
    return out


class TestSweepSmoke:
    def test_writes_all_four_artifacts(self, sweep_dir):
        for name in (
            "registry.json", "registry.deterministic.json",
            "spans.jsonl", "heartbeat.json",
        ):
            assert (sweep_dir / name).is_file(), name

    def test_clean_sweep_exports_pass(self, sweep_dir):
        from .check_exports import check_sweep_exports

        assert check_sweep_exports(sweep_dir) == []

    def test_unfinished_heartbeat_reported(self, sweep_dir, tmp_path):
        from .check_exports import check_sweep_exports

        broken = tmp_path / "broken"
        broken.mkdir()
        for name in (
            "registry.json", "registry.deterministic.json", "spans.jsonl"
        ):
            (broken / name).write_text(
                (sweep_dir / name).read_text(), encoding="utf-8"
            )
        heartbeat = json.loads((sweep_dir / "heartbeat.json").read_text())
        heartbeat["done"] -= 1
        (broken / "heartbeat.json").write_text(
            json.dumps(heartbeat), encoding="utf-8"
        )
        findings = check_sweep_exports(broken)
        assert any("accounts for 2/3" in f for f in findings)

    def test_wallclock_leak_reported(self, sweep_dir, tmp_path):
        from .check_exports import check_sweep_exports

        broken = tmp_path / "leak"
        broken.mkdir()
        for name in ("registry.json", "spans.jsonl", "heartbeat.json"):
            (broken / name).write_text(
                (sweep_dir / name).read_text(), encoding="utf-8"
            )
        # "Deterministic" twin that still carries wall-clock families.
        (broken / "registry.deterministic.json").write_text(
            (sweep_dir / "registry.json").read_text(), encoding="utf-8"
        )
        findings = check_sweep_exports(broken)
        assert any("wall-clock families leaked" in f for f in findings)

    def test_watch_renders_final_heartbeat(self, sweep_dir, capsys):
        assert main(["watch", str(sweep_dir / "heartbeat.json")]) == 0
        rendered = capsys.readouterr().out
        assert "3/3 points" in rendered

    def test_watch_missing_file_fails(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "absent.json")]) == 1
        assert "no heartbeat" in capsys.readouterr().err


class TestBenchDiffCli:
    def _write(self, path, **numbers):
        report = {"schema": "bench_core/v1", "scale": 0.2}
        report.update(numbers)
        path.write_text(json.dumps(report), encoding="utf-8")
        return path

    def test_ok_and_regressed_exits(self, tmp_path, capsys):
        base = self._write(
            tmp_path / "base.json", figure6={"fast_seconds": 2.0}
        )
        same = self._write(
            tmp_path / "same.json", figure6={"fast_seconds": 2.0}
        )
        worse = self._write(
            tmp_path / "worse.json", figure6={"fast_seconds": 3.0}
        )
        assert main(["bench-diff", str(base), str(same)]) == 0
        assert "bench-diff: OK" in capsys.readouterr().out
        assert (
            main(["bench-diff", str(base), str(worse), "--fail-over", "10"])
            == 1
        )
        assert "REGRESSED" in capsys.readouterr().out


class TestParserAndRender:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_render_empty_registry(self):
        snapshot = MetricsRegistry().snapshot()
        assert "empty registry" in render_snapshot(snapshot)
