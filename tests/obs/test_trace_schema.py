"""Trace writer, deterministic sampler, and the schema validators."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    SchemaError,
    TraceSampler,
    TraceWriter,
    validate_trace_file,
    validate_trace_record,
)


class TestSampler:
    def test_decision_is_pure_function_of_seed_and_index(self):
        a = TraceSampler(rate=0.5, seed=9)
        b = TraceSampler(rate=0.5, seed=9)
        assert [a.wants(i) for i in range(500)] == [
            b.wants(i) for i in range(500)
        ]

    def test_different_seeds_select_different_subsets(self):
        a = TraceSampler(rate=0.5, seed=1)
        b = TraceSampler(rate=0.5, seed=2)
        assert [a.wants(i) for i in range(500)] != [
            b.wants(i) for i in range(500)
        ]

    def test_rate_extremes_are_exact(self):
        assert all(TraceSampler(rate=1.0).wants(i) for i in range(100))
        assert not any(TraceSampler(rate=0.0).wants(i) for i in range(100))

    def test_rate_roughly_honored(self):
        sampler = TraceSampler(rate=0.25, seed=0)
        picked = sum(sampler.wants(i) for i in range(4000))
        assert 800 < picked < 1200

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            TraceSampler(rate=1.5)


class TestWriterRoundtrip:
    def _write(self, buffer):
        writer = TraceWriter(buffer, TraceSampler(rate=1.0, seed=3))
        writer.write_header("EDGE", "symmetric", 100, 20)
        writer.emit_request(
            index=20, pop=1, leaf=9, obj=4, serving=9,
            origin_pop=None, cost=0.0, size=1.0, coop=False, fallback=False,
        )
        writer.emit_request(
            index=21, pop=0, leaf=8, obj=7, serving=0,
            origin_pop=2, cost=3.0, size=2.5, coop=False, fallback=True,
        )
        writer.flush()
        return writer

    def test_every_line_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            writer = self._write(fh)
        assert writer.headers == 1 and writer.emitted == 2
        stats = validate_trace_file(path)
        assert stats.headers == 1
        assert stats.requests == 2

    def test_records_are_canonical_json(self):
        buffer = io.StringIO()
        self._write(buffer)
        for line in buffer.getvalue().splitlines():
            record = json.loads(line)
            canonical = json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )
            assert line == canonical
            validate_trace_record(record)

    def test_path_destination_opens_lazily(self, tmp_path):
        path = tmp_path / "lazy.jsonl"
        writer = TraceWriter(path)
        assert not path.exists()
        writer.write_header("EDGE", "symmetric", 10, 0)
        writer.close()
        assert validate_trace_file(path).headers == 1


class TestValidatorRejections:
    def test_wrong_version_rejected(self):
        with pytest.raises(SchemaError, match="version"):
            validate_trace_record({"v": 99, "kind": "header"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            validate_trace_record({"v": 1, "kind": "mystery"})

    def test_missing_field_rejected(self):
        record = {
            "v": 1, "kind": "request", "i": 0, "pop": 0, "leaf": 0,
            "object": 0, "serving": 0, "origin": None, "cost": 0.0,
            "size": 1.0, "coop": False,
            # "fallback" missing
        }
        with pytest.raises(SchemaError, match="fallback"):
            validate_trace_record(record)

    def test_extra_field_rejected(self):
        record = {
            "v": 1, "kind": "request", "i": 0, "pop": 0, "leaf": 0,
            "object": 0, "serving": 0, "origin": None, "cost": 0.0,
            "size": 1.0, "coop": False, "fallback": False, "extra": 1,
        }
        with pytest.raises(SchemaError, match="extra"):
            validate_trace_record(record)

    def test_non_finite_cost_rejected(self):
        record = {
            "v": 1, "kind": "request", "i": 0, "pop": 0, "leaf": 0,
            "object": 0, "serving": 0, "origin": None, "cost": float("inf"),
            "size": 1.0, "coop": False, "fallback": False,
        }
        with pytest.raises(SchemaError):
            validate_trace_record(record)

    def test_file_must_open_with_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        record = {
            "v": 1, "kind": "request", "i": 0, "pop": 0, "leaf": 0,
            "object": 0, "serving": 0, "origin": None, "cost": 0.0,
            "size": 1.0, "coop": False, "fallback": False,
        }
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(SchemaError, match="header"):
            validate_trace_file(path)
