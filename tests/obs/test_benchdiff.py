"""The bench regression gate: pairing, direction, noise floor, exits."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.benchdiff import (
    HIGHER_BETTER,
    LOWER_BETTER,
    collect_metrics,
    diff_reports,
    format_deltas,
    load_report,
    run_bench_diff,
)


def _report(**overrides):
    base = {
        "schema": "bench_core/v1",
        "scale": 0.2,
        "seed": 2013,
        "workers": 2,
        "figure6": {
            "reference_seconds": 10.0,
            "fast_seconds": 2.0,
            "speedup": 5.0,
            "fast_requests_per_second": 5000,
        },
        "phase_seconds": {"figure6_fast": 2.0, "tiny": 0.001},
    }
    for path, value in overrides.items():
        cursor = base
        *parents, leaf = path.split("__")
        for parent in parents:
            cursor = cursor[parent]
        cursor[leaf] = value
    return base


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return path


class TestCollection:
    def test_directions_classified(self):
        directions = collect_metrics(_report())
        assert (
            directions["figure6/fast_requests_per_second"] == HIGHER_BETTER
        )
        assert directions["figure6/speedup"] == HIGHER_BETTER
        assert directions["figure6/fast_seconds"] == LOWER_BETTER
        assert directions["phase_seconds/figure6_fast"] == LOWER_BETTER

    def test_non_numeric_and_bool_leaves_skipped(self):
        report = _report()
        report["engines_identical"] = True
        report["label_seconds"] = "not a number"
        directions = collect_metrics(report)
        assert "engines_identical" not in directions
        assert "label_seconds" not in directions

    def test_unpaired_metrics_dropped(self):
        current = _report()
        current["figure6"]["extra_seconds"] = 1.0
        deltas = diff_reports(_report(), current)
        assert "figure6/extra_seconds" not in {d.name for d in deltas}


class TestDeltas:
    def test_throughput_drop_regresses(self):
        current = _report(figure6__fast_requests_per_second=4000)
        deltas = {d.name: d for d in diff_reports(_report(), current)}
        delta = deltas["figure6/fast_requests_per_second"]
        assert delta.change_pct == pytest.approx(20.0)
        assert delta.regressed(10.0)
        assert not delta.regressed(25.0)

    def test_seconds_increase_regresses(self):
        current = _report(figure6__fast_seconds=2.6)
        deltas = {d.name: d for d in diff_reports(_report(), current)}
        delta = deltas["figure6/fast_seconds"]
        assert delta.change_pct == pytest.approx(30.0)
        assert delta.regressed(10.0)

    def test_improvement_never_regresses(self):
        current = _report(
            figure6__fast_seconds=1.0, figure6__speedup=10.0
        )
        for delta in diff_reports(_report(), current):
            assert not delta.regressed(0.5)

    def test_zero_baseline_growth_is_infinite_regression(self):
        baseline = _report(phase_seconds__tiny=0.0)
        current = _report(phase_seconds__tiny=1.0)
        deltas = {d.name: d for d in diff_reports(baseline, current)}
        assert math.isinf(deltas["phase_seconds/tiny"].change_pct)

    def test_noise_floor_ungates_tiny_phases(self):
        current = _report(phase_seconds__tiny=0.004)  # 4x worse, sub-floor
        deltas = {d.name: d for d in diff_reports(_report(), current)}
        tiny = deltas["phase_seconds/tiny"]
        assert not tiny.gated
        assert not tiny.regressed(10.0)
        # But a real phase at the same ratio is gated.
        assert deltas["phase_seconds/figure6_fast"].gated

    def test_format_worst_first(self):
        current = _report(
            figure6__fast_seconds=2.2,
            figure6__fast_requests_per_second=2500,
        )
        text = format_deltas(diff_reports(_report(), current), 10.0)
        lines = [l for l in text.splitlines() if "figure6/" in l]
        assert "fast_requests_per_second" in lines[0]
        assert "REGRESSED" in lines[0]


class TestGateExits:
    def test_identical_reports_pass(self, tmp_path):
        base = _write(tmp_path, "base.json", _report())
        cur = _write(tmp_path, "cur.json", _report())
        assert run_bench_diff(base, cur, 10.0, out=lambda _: None) == 0

    def test_injected_regression_fails(self, tmp_path):
        base = _write(tmp_path, "base.json", _report())
        cur = _write(
            tmp_path, "cur.json",
            _report(figure6__fast_requests_per_second=4000),
        )
        assert (
            run_bench_diff(base, cur, 10.0, out=lambda _: None)
            == 1
        )

    def test_scale_mismatch_refused_unless_allowed(self, tmp_path):
        base = _write(tmp_path, "base.json", _report())
        cur = _write(tmp_path, "cur.json", _report(scale=1.0))
        assert run_bench_diff(base, cur, 10.0, out=lambda _: None) == 2
        assert (
            run_bench_diff(
                base, cur, 10.0,
                allow_scale_mismatch=True, out=lambda _: None,
            )
            == 0
        )

    def test_no_comparable_metrics_is_an_error(self, tmp_path):
        base = _write(tmp_path, "base.json", {"schema": "x", "note": "a"})
        cur = _write(tmp_path, "cur.json", {"schema": "x", "note": "b"})
        assert run_bench_diff(base, cur, 10.0, out=lambda _: None) == 2

    def test_load_report_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_report(path)
