"""Tests for the composite router-level network and its oracles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import AccessTree, HopCosts, Network, Pop, PopTopology


class TestNodeIds:
    def test_counts(self, small_network):
        assert small_network.tree_size == 7
        assert small_network.num_nodes == 28
        assert small_network.num_core_links == 4
        assert small_network.num_links == 32

    def test_gid_roundtrip(self, small_network):
        for pop in range(4):
            for local in range(7):
                gid = small_network.gid(pop, local)
                assert small_network.pop_of(gid) == pop
                assert small_network.local_of(gid) == local

    def test_root_gid_is_pop_node(self, small_network):
        assert small_network.root_gid(2) == 14
        assert small_network.depth_of(14) == 0

    def test_leaf_gids(self, small_network):
        leaves = list(small_network.leaf_gids(1))
        assert leaves == [10, 11, 12, 13]
        assert all(small_network.depth_of(g) == 2 for g in leaves)


class TestCorePaths:
    def test_core_distance_diamond(self, small_network):
        assert small_network.core_distance(0, 0) == 0
        assert small_network.core_distance(0, 3) == 2
        assert small_network.core_distance(1, 2) == 2

    def test_core_path_endpoints(self, small_network):
        path = small_network.core_path(0, 3)
        assert path[0] == 0
        assert path[-1] == 3
        assert len(path) == 3

    def test_core_path_links_length(self, small_network):
        links = small_network.core_path_links(0, 3)
        assert len(links) == 2
        assert all(link >= small_network.num_nodes for link in links)

    def test_core_path_to_self_is_trivial(self, small_network):
        assert small_network.core_path(2, 2) == (2,)
        assert small_network.core_path_links(2, 2) == ()


class TestDistancesAndPaths:
    def test_same_pop_distance_is_tree_distance(self, small_network):
        a = small_network.gid(1, 3)
        b = small_network.gid(1, 4)
        assert small_network.distance(a, b) == 2

    def test_cross_pop_distance(self, small_network):
        a = small_network.gid(0, 3)  # leaf, depth 2
        b = small_network.gid(3, 0)  # root of pop 3
        assert small_network.distance(a, b) == 2 + 2 + 0

    def test_path_nodes_matches_distance(self, small_network):
        a = small_network.gid(0, 3)
        b = small_network.gid(3, 5)
        path = small_network.path_nodes(a, b)
        assert path[0] == a
        assert path[-1] == b
        assert len(path) == small_network.distance(a, b) + 1

    def test_path_links_count_matches_distance(self, small_network):
        a = small_network.gid(0, 3)
        b = small_network.gid(3, 5)
        links = small_network.path_links(a, b)
        assert len(links) == small_network.distance(a, b)
        assert len(set(links)) == len(links)

    def test_chain_to_root(self, small_network):
        chain = small_network.chain_to_root(small_network.gid(2, 5))
        assert chain == [19, 16, 14]

    def test_unit_path_cost_equals_distance(self, small_network):
        costs = small_network.unit_hop_costs()
        a = small_network.gid(0, 3)
        for b in [small_network.gid(0, 4), small_network.gid(3, 6),
                  small_network.gid(2, 0)]:
            assert small_network.path_cost(a, b, costs) == pytest.approx(
                small_network.distance(a, b)
            )

    def test_custom_hop_costs(self, small_network):
        # Tree hops cost 1 but core hops cost 10.
        costs = HopCosts(
            tree_to_root=tuple(
                float(small_network.tree.depth_of(i)) for i in range(7)
            ),
            core_hop=10.0,
        )
        a = small_network.gid(0, 3)
        b = small_network.root_gid(3)
        assert small_network.path_cost(a, b, costs) == pytest.approx(2 + 20)


# ---------------------------------------------------------------------------
# Property-based consistency between the three path oracles
# ---------------------------------------------------------------------------


@st.composite
def network_and_nodes(draw):
    num_pops = draw(st.integers(min_value=2, max_value=5))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_pops - 1), st.integers(0, num_pops - 1)
            ),
            max_size=4,
        )
    )
    edges = {(i, i + 1) for i in range(num_pops - 1)}
    for a, b in extra:
        if a != b:
            edges.add((min(a, b), max(a, b)))
    topo = PopTopology(
        name="h",
        pops=tuple(Pop(i, f"p{i}", 100 + i) for i in range(num_pops)),
        edges=tuple(sorted(edges)),
    )
    tree = AccessTree(
        arity=draw(st.integers(2, 3)), depth=draw(st.integers(1, 3))
    )
    network = Network(topo, tree)
    a = draw(st.integers(0, network.num_nodes - 1))
    b = draw(st.integers(0, network.num_nodes - 1))
    return network, a, b


@settings(max_examples=60, deadline=None)
@given(network_and_nodes())
def test_paths_links_costs_agree(case):
    network, a, b = case
    distance = network.distance(a, b)
    path = network.path_nodes(a, b)
    links = network.path_links(a, b)
    cost = network.path_cost(a, b, network.unit_hop_costs())
    assert len(path) == distance + 1
    assert len(links) == distance
    assert cost == pytest.approx(distance)
    assert path[0] == a and path[-1] == b


@settings(max_examples=60, deadline=None)
@given(network_and_nodes())
def test_distance_symmetry(case):
    network, a, b = case
    assert network.distance(a, b) == network.distance(b, a)
