"""Tests for the PoP-level topology container."""

import networkx as nx
import pytest

from repro.topology import Pop, PopTopology


def make(pops, edges, name="t"):
    return PopTopology(
        name=name,
        pops=tuple(Pop(i, f"p{i}", population) for i, population in enumerate(pops)),
        edges=tuple(edges),
    )


class TestValidation:
    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            PopTopology(name="x", pops=(), edges=())

    def test_nonpositive_population_rejected(self):
        with pytest.raises(ValueError):
            Pop(0, "x", 0)

    def test_misindexed_pop_rejected(self):
        with pytest.raises(ValueError):
            PopTopology(name="x", pops=(Pop(1, "a", 10),), edges=())

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            make([10, 10], [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            make([10, 10], [(0, 1), (1, 0)])

    def test_dangling_edge_rejected(self):
        with pytest.raises(ValueError):
            make([10, 10], [(0, 2)])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            make([10, 10, 10, 10], [(0, 1), (2, 3)])

    def test_single_pop_is_fine(self):
        topo = make([10], [])
        assert topo.num_pops == 1


class TestAccessors:
    def test_neighbors_are_sorted_and_symmetric(self, small_topology):
        assert small_topology.neighbors(0) == (1, 2)
        assert small_topology.neighbors(3) == (1, 2)
        for a, b in small_topology.edges:
            assert b in small_topology.neighbors(a)
            assert a in small_topology.neighbors(b)

    def test_population_weights_sum_to_one(self, small_topology):
        weights = small_topology.population_weights()
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] == pytest.approx(0.5)

    def test_totals(self, small_topology):
        assert small_topology.total_population == 8_000_000
        assert small_topology.num_edges == 4
        assert small_topology.populations == (
            4_000_000, 2_000_000, 1_000_000, 1_000_000,
        )

    def test_to_networkx_preserves_structure(self, small_topology):
        graph = small_topology.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert nx.is_connected(graph)
        assert graph.nodes[0]["population"] == 4_000_000
        assert graph.nodes[0]["name"] == "A"
