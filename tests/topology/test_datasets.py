"""Tests for the eight embedded evaluation topologies."""

import pytest

from repro.topology import TOPOLOGY_NAMES, all_topologies, topology


class TestRegistry:
    def test_canonical_order_matches_figures(self):
        assert TOPOLOGY_NAMES == (
            "abilene", "geant", "telstra", "sprint",
            "verio", "tiscali", "level3", "att",
        )

    def test_all_topologies_returns_eight(self):
        topologies = all_topologies()
        assert [t.name for t in topologies] == list(TOPOLOGY_NAMES)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            topology("arpanet")

    def test_lookup_is_case_insensitive(self):
        assert topology("Abilene").name == "abilene"


class TestShapes:
    def test_abilene_is_the_published_map(self):
        abilene = topology("abilene")
        assert abilene.num_pops == 11
        assert abilene.num_edges == 14
        names = {pop.name for pop in abilene.pops}
        assert {"Seattle", "New York", "Chicago", "Houston"} <= names

    def test_att_is_the_largest_topology(self):
        sizes = {name: topology(name).num_pops for name in TOPOLOGY_NAMES}
        assert sizes["att"] == max(sizes.values())

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_every_topology_is_valid(self, name):
        topo = topology(name)
        # PopTopology validates connectivity at construction; re-check
        # basic sanity here.
        assert topo.num_pops >= 10
        assert topo.num_edges >= topo.num_pops - 1
        assert all(pop.population > 0 for pop in topo.pops)

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_deterministic_regeneration(self, name):
        first = topology(name)
        second = topology(name)
        assert first.edges == second.edges
        assert first.populations == second.populations

    def test_synthetic_isps_have_hub_and_stub_structure(self):
        att = topology("att")
        degrees = [len(att.neighbors(i)) for i in range(att.num_pops)]
        # Preferential attachment: a few hubs, many low-degree stubs.
        assert max(degrees) >= 8
        assert sorted(degrees)[att.num_pops // 2] <= 4
