"""Tests for the k-ary access-tree index arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import AccessTree, arity_for_leaf_count


class TestConstruction:
    def test_binary_depth5_matches_paper_baseline(self):
        tree = AccessTree(arity=2, depth=5)
        assert tree.size == 63
        assert tree.num_leaves == 32

    def test_single_node_tree(self):
        tree = AccessTree(arity=2, depth=0)
        assert tree.size == 1
        assert tree.num_leaves == 1
        assert list(tree.leaves) == [0]
        assert tree.is_leaf(0)

    def test_arity_one_is_a_path(self):
        tree = AccessTree(arity=1, depth=4)
        assert tree.size == 5
        assert tree.num_leaves == 1

    @pytest.mark.parametrize("arity,depth", [(0, 1), (2, -1)])
    def test_invalid_parameters_rejected(self, arity, depth):
        with pytest.raises(ValueError):
            AccessTree(arity=arity, depth=depth)

    @pytest.mark.parametrize(
        "arity,depth,size", [(2, 3, 15), (3, 2, 13), (4, 2, 21), (64, 1, 65)]
    )
    def test_size_formula(self, arity, depth, size):
        assert AccessTree(arity=arity, depth=depth).size == size


class TestStructure:
    def test_root_has_no_parent(self):
        tree = AccessTree(arity=2, depth=2)
        with pytest.raises(ValueError):
            tree.parent(0)

    def test_children_of_root(self):
        tree = AccessTree(arity=3, depth=2)
        assert list(tree.children(0)) == [1, 2, 3]

    def test_leaves_have_no_children(self):
        tree = AccessTree(arity=2, depth=2)
        for leaf in tree.leaves:
            assert list(tree.children(leaf)) == []

    def test_siblings_of_root_empty(self):
        tree = AccessTree(arity=2, depth=2)
        assert tree.siblings(0) == []

    def test_siblings_share_parent_and_exclude_self(self):
        tree = AccessTree(arity=3, depth=2)
        siblings = tree.siblings(5)
        assert 5 not in siblings
        assert all(tree.parent(s) == tree.parent(5) for s in siblings)
        assert len(siblings) == 2

    def test_level_nodes_partition_the_tree(self):
        tree = AccessTree(arity=2, depth=3)
        seen = []
        for depth in range(tree.depth + 1):
            seen.extend(tree.level_nodes(depth))
        assert sorted(seen) == list(range(tree.size))

    def test_ancestors_end_at_root(self):
        tree = AccessTree(arity=2, depth=3)
        for leaf in tree.leaves:
            assert tree.ancestors(leaf)[-1] == 0
            assert len(tree.ancestors(leaf)) == tree.depth

    def test_subtree_leaves_of_root_is_all_leaves(self):
        tree = AccessTree(arity=2, depth=3)
        assert list(tree.subtree_leaves(0)) == list(tree.leaves)

    def test_subtree_leaves_of_leaf_is_itself(self):
        tree = AccessTree(arity=2, depth=3)
        leaf = tree.leaves[0]
        assert list(tree.subtree_leaves(leaf)) == [leaf]

    def test_out_of_range_node_rejected(self):
        tree = AccessTree(arity=2, depth=2)
        with pytest.raises(ValueError):
            tree.depth_of(tree.size)
        with pytest.raises(ValueError):
            tree.depth_of(-1)


class TestDistances:
    def test_distance_to_self_is_zero(self):
        tree = AccessTree(arity=2, depth=3)
        assert tree.distance(5, 5) == 0

    def test_sibling_leaves_are_two_apart(self):
        tree = AccessTree(arity=2, depth=2)
        assert tree.distance(3, 4) == 2

    def test_opposite_leaves_cross_the_root(self):
        tree = AccessTree(arity=2, depth=2)
        assert tree.distance(3, 6) == 4
        assert tree.lca(3, 6) == 0

    def test_path_endpoints_and_length(self):
        tree = AccessTree(arity=2, depth=3)
        path = tree.path(7, 14)
        assert path[0] == 7
        assert path[-1] == 14
        assert len(path) == tree.distance(7, 14) + 1

    def test_path_consecutive_nodes_are_adjacent(self):
        tree = AccessTree(arity=3, depth=3)
        path = tree.path(15, 39)
        for a, b in zip(path, path[1:]):
            adjacent = (a != 0 and tree.parent(a) == b) or (
                b != 0 and tree.parent(b) == a
            )
            assert adjacent


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

tree_strategy = st.builds(
    AccessTree,
    arity=st.integers(min_value=2, max_value=5),
    depth=st.integers(min_value=1, max_value=4),
)


@settings(max_examples=50)
@given(tree=tree_strategy, data=st.data())
def test_parent_child_roundtrip(tree, data):
    node = data.draw(st.integers(min_value=0, max_value=tree.size - 1))
    for child in tree.children(node):
        assert tree.parent(child) == node
        assert tree.depth_of(child) == tree.depth_of(node) + 1


@settings(max_examples=50)
@given(tree=tree_strategy, data=st.data())
def test_distance_is_symmetric_and_triangle_tight(tree, data):
    a = data.draw(st.integers(min_value=0, max_value=tree.size - 1))
    b = data.draw(st.integers(min_value=0, max_value=tree.size - 1))
    assert tree.distance(a, b) == tree.distance(b, a)
    lca = tree.lca(a, b)
    # On a tree the path through the LCA is the unique shortest path.
    assert tree.distance(a, b) == tree.distance(a, lca) + tree.distance(lca, b)


@settings(max_examples=50)
@given(tree=tree_strategy, data=st.data())
def test_path_matches_distance(tree, data):
    a = data.draw(st.integers(min_value=0, max_value=tree.size - 1))
    b = data.draw(st.integers(min_value=0, max_value=tree.size - 1))
    path = tree.path(a, b)
    assert len(path) == tree.distance(a, b) + 1
    assert len(set(path)) == len(path)  # simple path, no repeats


@settings(max_examples=30)
@given(tree=tree_strategy)
def test_lca_of_leaf_pairs_is_common_ancestor(tree):
    leaves = list(tree.leaves)
    a, b = leaves[0], leaves[-1]
    lca = tree.lca(a, b)
    assert lca in [a, *tree.ancestors(a)]
    assert lca in [b, *tree.ancestors(b)]


class TestArityForLeafCount:
    @pytest.mark.parametrize("leaves,arity,depth", [(32, 2, 5), (64, 64, 1),
                                                    (64, 8, 2), (64, 4, 3)])
    def test_exact_powers(self, leaves, arity, depth):
        assert arity_for_leaf_count(leaves, arity) == depth

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            arity_for_leaf_count(48, 4)

    def test_single_leaf(self):
        assert arity_for_leaf_count(1, 2) == 0
