"""Tests for the synthetic ISP topology generator."""

import numpy as np
import pytest

from repro.topology import (
    preferential_attachment_edges,
    synthetic_isp,
    zipf_city_populations,
)


class TestPreferentialAttachment:
    def test_edge_count(self, rng):
        edges = preferential_attachment_edges(20, 2, rng)
        # Initial clique of 3 has 3 edges; 17 later nodes add 2 each.
        assert len(edges) == 3 + 17 * 2

    def test_no_duplicate_edges(self, rng):
        edges = preferential_attachment_edges(30, 3, rng)
        normalized = {(min(a, b), max(a, b)) for a, b in edges}
        assert len(normalized) == len(edges)

    def test_no_self_loops(self, rng):
        edges = preferential_attachment_edges(30, 2, rng)
        assert all(a != b for a, b in edges)

    def test_connected(self, rng):
        edges = preferential_attachment_edges(40, 2, rng)
        adjacency = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        seen = {0}
        stack = [0]
        while stack:
            for nbr in adjacency[stack.pop()]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        assert len(seen) == 40

    def test_too_few_nodes_rejected(self, rng):
        with pytest.raises(ValueError):
            preferential_attachment_edges(2, 2, rng)

    def test_deterministic_given_seed(self):
        a = preferential_attachment_edges(25, 2, np.random.default_rng(9))
        b = preferential_attachment_edges(25, 2, np.random.default_rng(9))
        assert a == b


class TestCityPopulations:
    def test_follows_zipf_law(self):
        pops = zipf_city_populations(10, 1_000_000)
        assert pops[0] == 1_000_000
        assert pops[1] == 500_000
        assert pops[4] == 200_000

    def test_monotone_nonincreasing(self):
        pops = zipf_city_populations(50, 5_000_000)
        assert all(a >= b for a, b in zip(pops, pops[1:]))

    def test_minimum_population_is_one(self):
        pops = zipf_city_populations(100, 100)
        assert min(pops) >= 1

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            zipf_city_populations(0, 100)
        with pytest.raises(ValueError):
            zipf_city_populations(10, 5)


class TestSyntheticIsp:
    def test_builds_valid_topology(self):
        topo = synthetic_isp("test", [f"city{i}" for i in range(12)], seed=3)
        assert topo.num_pops == 12
        assert topo.pops[0].name == "city0"
        assert topo.pops[0].population >= topo.pops[1].population

    def test_largest_city_is_best_connected_region(self):
        topo = synthetic_isp("test", [f"city{i}" for i in range(30)], seed=3)
        degrees = [len(topo.neighbors(i)) for i in range(topo.num_pops)]
        # Node 0 is in the initial clique so it accretes degree.
        assert degrees[0] >= sorted(degrees)[len(degrees) // 2]
