"""Cross-module integration tests: the full pipelines a user would run."""

import numpy as np
import pytest

from repro.core import (
    BASELINE_ARCHITECTURES,
    EDGE,
    ICN_NR,
    ExperimentConfig,
    build_network,
    build_workload,
    run_experiment,
)
from repro.workload import (
    fit_zipf_mle,
    object_ids_by_popularity,
    rank_frequency,
    read_trace,
    synthetic_cdn_trace,
    write_trace,
)


class TestTracePipeline:
    """CDN log file -> ids -> trace-driven simulation (the Figure 6 path)."""

    def test_end_to_end(self, tmp_path, rng):
        records = synthetic_cdn_trace("asia", rng, scale=0.005)
        path = tmp_path / "asia.tsv"
        write_trace(path, records)

        loaded = list(read_trace(path))
        objects, url_to_id, _ = object_ids_by_popularity(loaded)
        assert len(loaded) == len(records)

        config = ExperimentConfig(
            topology="abilene",
            num_objects=len(url_to_id),
            num_requests=len(objects),
            warmup_fraction=0.2,
            seed=1,
        )
        outcome = run_experiment(config, (ICN_NR, EDGE), objects=objects)
        assert outcome.improvements["ICN-NR"].latency > 0
        assert (
            outcome.improvements["ICN-NR"].latency
            >= outcome.improvements["EDGE"].latency
        )

    def test_fitted_alpha_reproduces_gap(self, tmp_path, rng):
        """The Table 3 methodology as an integration property."""
        records = synthetic_cdn_trace("us", rng, scale=0.01)
        objects, url_to_id, _ = object_ids_by_popularity(records)
        alpha = fit_zipf_mle(rank_frequency(objects),
                             num_objects=len(url_to_id))
        config = ExperimentConfig(
            topology="geant",
            num_objects=len(url_to_id),
            num_requests=len(objects),
            alpha=alpha,
            warmup_fraction=0.2,
            seed=2,
        )
        trace_gap = run_experiment(
            config, (ICN_NR, EDGE), objects=objects
        ).gap().latency
        synthetic_gap = run_experiment(config, (ICN_NR, EDGE)).gap().latency
        assert trace_gap == pytest.approx(synthetic_gap, abs=4.0)


class TestFullLineupSmall:
    def test_all_architectures_on_all_small_topologies(self):
        for topology in ("abilene", "geant"):
            config = ExperimentConfig(
                topology=topology,
                num_objects=150,
                num_requests=8000,
                warmup_fraction=0.25,
                seed=4,
            )
            outcome = run_experiment(config, BASELINE_ARCHITECTURES)
            improvements = outcome.improvements
            assert len(improvements) == 5
            # Conservation: every architecture measured the same stream.
            counts = {r.num_requests for r in outcome.results.values()}
            assert counts == {outcome.baseline.num_requests}

    def test_network_and_workload_builders_compose(self):
        config = ExperimentConfig(
            topology="tiscali", arity=4, tree_depth=2,
            num_objects=100, num_requests=2000, seed=5,
        )
        network = build_network(config)
        workload = build_workload(config, network)
        assert network.tree.num_leaves == 16
        assert workload.leaves.min() >= network.tree.leaves.start
