"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import AccessTree, Network, Pop, PopTopology


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG."""
    return np.random.default_rng(42)


@pytest.fixture
def small_topology() -> PopTopology:
    """A 4-PoP diamond with skewed populations."""
    return PopTopology(
        name="diamond",
        pops=(
            Pop(0, "A", 4_000_000),
            Pop(1, "B", 2_000_000),
            Pop(2, "C", 1_000_000),
            Pop(3, "D", 1_000_000),
        ),
        edges=((0, 1), (0, 2), (1, 3), (2, 3)),
    )


@pytest.fixture
def small_tree() -> AccessTree:
    """A binary tree of depth 2 (7 nodes, 4 leaves)."""
    return AccessTree(arity=2, depth=2)


@pytest.fixture
def small_network(small_topology: PopTopology, small_tree: AccessTree) -> Network:
    """The composite of the diamond PoP map and depth-2 binary trees."""
    return Network(small_topology, small_tree)
