"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import AccessTree, Network, Pop, PopTopology
from repro.workload import Workload


def make_workload(
    network: Network,
    seed: int,
    num_requests: int | None = None,
    num_objects: int | None = None,
    heterogeneous_sizes: bool = False,
) -> Workload:
    """Hand-rolled random workload generator (no hypothesis required).

    Everything derives from one integer seed, so a test case is
    reproducible from its parametrization alone.  Popularity is skewed
    by squaring a uniform draw (low object ids are hot), mimicking the
    Zipf head without pulling in scipy.
    """
    rng = np.random.default_rng(seed)
    if num_objects is None:
        num_objects = int(rng.integers(1, 16))
    if num_requests is None:
        num_requests = int(rng.integers(1, 120))
    leaves_range = network.tree.leaves
    sizes = np.ones(num_objects)
    if heterogeneous_sizes:
        sizes = rng.uniform(0.2, 3.0, size=num_objects)
    return Workload(
        num_objects=num_objects,
        pops=rng.integers(0, network.num_pops, size=num_requests,
                          dtype=np.int64),
        leaves=rng.integers(leaves_range.start, leaves_range.stop,
                            size=num_requests, dtype=np.int64),
        objects=(rng.random(num_requests) ** 2 * num_objects).astype(np.int64),
        sizes=sizes,
        origins=rng.integers(0, network.num_pops, size=num_objects,
                             dtype=np.int64),
    )


def assert_results_identical(a, b) -> None:
    """Field-for-field equality of two SimulationResults (bit-identical)."""
    assert a.architecture == b.architecture
    assert a.num_requests == b.num_requests
    assert a.total_latency == b.total_latency
    assert a.max_link_transfers == b.max_link_transfers
    assert a.total_transfers == b.total_transfers
    assert a.max_origin_load == b.max_origin_load
    assert a.total_origin_load == b.total_origin_load
    assert a.cache_served == b.cache_served
    assert a.coop_served == b.coop_served
    assert a.fallback_served == b.fallback_served
    assert np.array_equal(a.link_transfers, b.link_transfers)
    assert np.array_equal(a.origin_serves, b.origin_serves)


@pytest.fixture
def random_workload():
    """The hand-rolled workload generator, as a fixture."""
    return make_workload


@pytest.fixture
def results_identical():
    """Field-for-field SimulationResult equality assertion."""
    return assert_results_identical


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG."""
    return np.random.default_rng(42)


@pytest.fixture
def small_topology() -> PopTopology:
    """A 4-PoP diamond with skewed populations."""
    return PopTopology(
        name="diamond",
        pops=(
            Pop(0, "A", 4_000_000),
            Pop(1, "B", 2_000_000),
            Pop(2, "C", 1_000_000),
            Pop(3, "D", 1_000_000),
        ),
        edges=((0, 1), (0, 2), (1, 3), (2, 3)),
    )


@pytest.fixture
def small_tree() -> AccessTree:
    """A binary tree of depth 2 (7 nodes, 4 leaves)."""
    return AccessTree(arity=2, depth=2)


@pytest.fixture
def small_network(small_topology: PopTopology, small_tree: AccessTree) -> Network:
    """The composite of the diamond PoP map and depth-2 binary trees."""
    return Network(small_topology, small_tree)
