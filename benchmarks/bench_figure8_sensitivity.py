"""Figure 8: single-dimension sensitivity of the ICN-NR-over-EDGE gap.

Three sweeps on the largest topology (AT&T), synthetic workloads, fixed
total cache budget, reporting ``RelImprov(ICN-NR) - RelImprov(EDGE)``
per metric:

* (a) Zipf alpha — the gap shrinks as alpha grows;
* (b) per-cache budget — non-monotone, peaking at a few percent;
* (c) spatial skew — the gap grows with skew.
"""

from functools import partial

from conftest import ENGINE, SCALE, WORKERS, emit, leaf_scaled_config
from repro.analysis import format_series
from repro.analysis import sweep_gap as _sweep_gap
from repro.core import EDGE, ICN_NR

#: Every Figure 8 sweep goes through the parallel sweep runner with the
#: bench-wide engine/worker knobs.
sweep_gap = partial(_sweep_gap, engine=ENGINE, workers=WORKERS)

ALPHAS = (0.1, 0.4, 0.7, 1.0, 1.2, 1.4, 1.6)
BUDGETS = (1e-5, 1e-4, 1e-3, 0.01, 0.02, 0.05, 0.2, 1.0)
SKEWS = (0.0, 0.25, 0.5, 0.75, 1.0)


# The paper sweeps on AT&T and notes "the results are similar across
# topologies"; we sweep on Abilene (whose leaf count keeps the sweep
# fast) after establishing the cross-topology orderings in Figures 6-7.
SWEEP_TOPOLOGY = "abilene"


def _config(**overrides):
    return leaf_scaled_config(SWEEP_TOPOLOGY, **overrides)


def _coverage_config(**overrides):
    """Figure 8(b) regime: per-leaf volume covers the catalog.

    The published budget curve returns to ~0 at 100% cache sizes, which
    requires every leaf to see (nearly) the whole catalog during the
    trace — otherwise cold per-leaf misses keep EDGE behind at any
    budget.  See EXPERIMENTS.md.
    """
    return leaf_scaled_config(
        SWEEP_TOPOLOGY, per_leaf=1200, requests_per_object=600, **overrides
    )


def test_figure8a_zipf_alpha(once):
    sweep = once(
        sweep_gap, "alpha", ALPHAS, lambda a: _config(alpha=a), ICN_NR, EDGE
    )
    emit(
        "figure8a_alpha",
        format_series(
            "alpha", sweep.values,
            {m: g for m, g in sweep.gaps.items()},
            title="Figure 8(a): ICN-NR gain over EDGE vs Zipf alpha "
                  "(paper: gap becomes less positive as alpha grows)",
        ),
    )
    latency = sweep.gaps["latency"]
    # Shape: the gap at high alpha is well below the peak gap.
    assert latency[-1] < max(latency) - 2.0
    assert max(latency) > 0.0


def test_figure8b_cache_budget(once):
    sweep = once(
        sweep_gap, "budget", BUDGETS,
        lambda f: _coverage_config(budget_fraction=f), ICN_NR, EDGE,
    )
    emit(
        "figure8b_budget",
        format_series(
            "cache size (fraction of objects)", sweep.values,
            {m: g for m, g in sweep.gaps.items()},
            title="Figure 8(b): ICN-NR gain over EDGE vs per-cache budget "
                  "(paper: non-monotone, peak ~10% near 2%)",
        ),
    )
    latency = sweep.gaps["latency"]
    # Non-monotone shape: interior peak above both endpoints.
    assert max(latency) > latency[0] + 1.0
    assert max(latency) > latency[-1] + 1.0
    # With tiny caches nothing works; with huge ones EDGE catches up.
    assert latency[0] < 3.0


def test_figure8c_spatial_skew(once):
    sweep = once(
        sweep_gap, "skew", SKEWS,
        lambda s: _config(spatial_skew=s), ICN_NR, EDGE,
    )
    emit(
        "figure8c_skew",
        format_series(
            "spatial skew", sweep.values,
            {m: g for m, g in sweep.gaps.items()},
            title="Figure 8(c): ICN-NR gain over EDGE vs spatial skew "
                  "(paper: gap grows with skew)",
        ),
    )
    origin = sweep.gaps["origin_load"]
    # Shape: full skew should not erode ICN-NR's advantage — nearby
    # replicas are the only way to chase objects whose popularity moved.
    assert origin[-1] > origin[0] - 3.0
