"""Figure 9: the best-case scenario for ICN-NR.

Starting from the Section 4 baseline, progressively set each parameter
to its most ICN-favourable value: Alpha* (alpha = 0.1), Skew* (spatial
skew = 1), Budget-Dist* (uniform budgeting), Node-Budget* (F = 2%).
The paper: even the best combination gives ICN-NR at most ~17% over
EDGE.
"""

from conftest import ENGINE, WORKERS, emit, leaf_scaled_config
from repro.analysis import format_table
from repro.core import EDGE, ICN_NR, SweepPoint, run_sweep

def test_figure9_progressive_best_case(once):
    def run():
        steps = []
        config = leaf_scaled_config("abilene")
        steps.append(("Baseline", config))
        config = config.with_(alpha=0.1)
        steps.append(("Alpha*", config))
        config = config.with_(spatial_skew=1.0)
        steps.append(("Skew*", config))
        config = config.with_(budget_split="uniform")
        steps.append(("Budget-Dist*", config))
        config = config.with_(budget_fraction=0.02)
        steps.append(("Node-Budget*", config))

        outcome = run_sweep(
            [
                SweepPoint(key=label, config=step_config,
                           architectures=(ICN_NR, EDGE))
                for label, step_config in steps
            ],
            workers=WORKERS,
            engine=ENGINE,
        )
        outcome.raise_on_failure()
        rows = []
        for label, _ in steps:
            gap = outcome.results[label].gap()
            rows.append(
                [label, gap.latency, gap.congestion, gap.origin_load]
            )
        return rows

    rows = once(run)
    emit(
        "figure9_best_case",
        format_table(
            ["configuration", "latency gap %", "congestion gap %",
             "origin-load gap %"],
            rows,
            title="Figure 9: progressively ICN-favourable configurations "
                  "(paper: best case tops out around 17%)",
        ),
    )
    baseline_gap = max(rows[0][1:])
    best_gap = max(max(row[1:]) for row in rows)
    # Shape: the favourable settings widen the gap, but it stays bounded.
    assert best_gap > baseline_gap
    assert best_gap < 45.0
