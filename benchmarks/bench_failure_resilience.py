"""Section 7 discussion: resilience to cache-node failures.

The paper argues an incrementally deployable edge-cache design keeps
"most of the gain" of pervasive ICN; here we stress that claim under
infrastructure failures.  A seeded fraction of each architecture's
cache nodes is crashed (they hold no cache, serve nothing, and take no
copies — requests route around them), and we measure how hit ratio and
origin load degrade at 0%, 10%, and 30% failures for EDGE vs ICN-NR.

Origins never fail (the always-available origin model), so every
request is eventually served; the ``fallback`` column reports how many
measured requests had to skip at least one dead cache on the way.
"""

import numpy as np

from conftest import emit, leaf_scaled_config
from repro.analysis import format_table
from repro.cache.budget import node_budgets
from repro.core import EDGE, ICN_NR, Simulator
from repro.core.experiment import build_network, build_workload

FAILURE_FRACTIONS = (0.0, 0.1, 0.3)


def _failed_nodes(network, arch, fraction, seed):
    """A seeded sample of ``fraction`` of the architecture's cache gids."""
    tree_size = network.tree_size
    gids = np.array(
        [
            pop * tree_size + local
            for pop in range(network.num_pops)
            for local in arch.cache_locals(network.tree)
        ]
    )
    count = int(len(gids) * fraction)
    if count == 0:
        return frozenset()
    rng = np.random.default_rng(seed)
    return frozenset(int(g) for g in rng.choice(gids, size=count, replace=False))


def test_failure_resilience_degradation(once):
    def run():
        config = leaf_scaled_config("abilene", per_leaf=150,
                                    budget_split="uniform")
        network = build_network(config)
        workload = build_workload(config, network)
        budgets = node_budgets(network, config.budget_fraction,
                               config.num_objects, config.budget_split)
        rows = []
        for arch in (EDGE, ICN_NR):
            for fraction in FAILURE_FRACTIONS:
                failed = _failed_nodes(
                    network, arch, fraction,
                    seed=config.seed + int(fraction * 100),
                )
                simulator = Simulator(
                    network, arch, workload, budgets,
                    warmup_fraction=config.warmup_fraction,
                    failed_nodes=failed,
                )
                result = simulator.run()
                rows.append(
                    [
                        arch.name,
                        100.0 * fraction,
                        100.0 * result.cache_hit_ratio,
                        result.total_origin_load,
                        100.0 * result.fallback_ratio,
                        100.0 * result.availability,
                    ]
                )
        return rows

    rows = once(run)
    emit(
        "failure_resilience",
        format_table(
            ["architecture", "failed caches %", "hit ratio %",
             "origin requests", "fallback %", "availability %"],
            rows,
            title="Section 7: hit-ratio and origin-load degradation as "
                  "cache nodes fail (origins never fail; requests route "
                  "around dead caches)",
        ),
    )
    by_key = {(row[0], row[1]): row for row in rows}
    for arch in (EDGE, ICN_NR):
        healthy = by_key[(arch.name, 0.0)]
        worst = by_key[(arch.name, 30.0)]
        # A healthy network records no fallbacks...
        assert healthy[4] == 0.0, arch.name
        # ...failures do get routed around (some requests fall back)...
        assert worst[4] > 0.0, arch.name
        # ...and degradation is monotone in the expected direction.
        assert worst[2] <= healthy[2], arch.name
        assert worst[3] >= healthy[3], arch.name
