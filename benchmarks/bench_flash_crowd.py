"""Section 7: flash-crowd degradation, EDGE vs ICN-NR, PIT ablation.

The paper argues that keeping edge caches keeps most of pervasive ICN's
flood resilience.  We drive a seeded flash crowd (Zipf over a hot set,
Gaussian burst) through the event-driven deployment and sweep the burst
intensity for both architectures, with and without pending-interest
coalescing:

* **EDGE** — browsers go through their AD edge proxies (WPAD), so the
  crowd is absorbed at the edge and the reverse proxy sees the residue;
* **ICN-NR (direct)** — browsers resolve via DNS straight to the
  provider's reverse proxy, which bears the full crowd alone.

The headline number is upstream load under the crowd: with coalescing
enabled, concurrent requests for a hot object collapse into one fetch
per PIT window, and the reduction grows with intensity.  We also report
the degradation ladder's fates (ok/stale/shed) to show overload being
absorbed gracefully rather than failed.
"""

import json

from conftest import SCALE, SEED, RESULTS_DIR, emit

from repro.analysis import format_table
from repro.idicn import (
    AdmissionControl,
    FlashCrowdScenario,
    LinkSpec,
    OverloadPolicy,
    run_flash_crowd,
)

INTENSITIES = (20.0, 40.0, 80.0)


def _scenario(intensity: float, direct: bool, pit: bool) -> FlashCrowdScenario:
    return FlashCrowdScenario(
        num_requests=max(500, int(3000 * SCALE)),
        duration=30.0,
        intensity=intensity,
        max_age=0.5,
        direct=direct,
        seed=SEED,
        overload=OverloadPolicy(
            coalesce=pit,
            queue_capacity=512,
            service_time=0.005,
            admission=AdmissionControl(
                stale_depth=6, shed_depth=40, retry_after=5.0
            ),
            link=LinkSpec(latency=0.002, bandwidth=1_000_000),
            rp_cache_capacity=16,
        ),
    )


def test_flash_crowd_pit_coalescing(once):
    def run():
        rows = []
        records = []
        for direct in (False, True):
            arch = "ICN-NR" if direct else "EDGE"
            for intensity in INTENSITIES:
                for pit in (True, False):
                    result = run_flash_crowd(
                        _scenario(intensity, direct, pit)
                    )
                    rows.append([
                        arch,
                        intensity,
                        "on" if pit else "off",
                        result.ok,
                        result.stale,
                        result.shed,
                        result.failed,
                        result.coalesced,
                        result.upstream_requests,
                        result.origin_fetches,
                        result.p99_latency,
                    ])
                    records.append({
                        "arch": arch,
                        "intensity": intensity,
                        "pit": pit,
                        **result.to_dict(),
                    })
        return rows, records

    rows, records = once(run)
    emit(
        "flash_crowd",
        format_table(
            ["architecture", "intensity", "PIT", "ok", "stale", "shed",
             "failed", "coalesced", "upstream reqs", "origin fetches",
             "p99 latency s"],
            rows,
            title="Section 7: flash-crowd resilience (PIT coalescing "
                  "collapses the thundering herd before it reaches the "
                  "upstream)",
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_flash_crowd.json").write_text(
        json.dumps(
            {
                "schema": "bench_flash_crowd/v1",
                "seed": SEED,
                "scale": SCALE,
                "intensities": list(INTENSITIES),
                "runs": records,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    by_key = {
        (r["arch"], r["intensity"], r["pit"]): r for r in records
    }
    top = max(INTENSITIES)
    # At the highest intensity, coalescing must cut the load that
    # escapes the caches by at least 2x — upstream requests for the
    # EDGE arm (what leaks past the edge), origin fetches for the
    # direct arm (what leaks past the reverse proxy).
    edge_on = by_key[("EDGE", top, True)]["upstream_requests"]
    edge_off = by_key[("EDGE", top, False)]["upstream_requests"]
    assert edge_off >= 2 * edge_on, (edge_off, edge_on)
    nr_on = by_key[("ICN-NR", top, True)]["origin_fetches"]
    nr_off = by_key[("ICN-NR", top, False)]["origin_fetches"]
    assert nr_off >= 2 * nr_on, (nr_off, nr_on)
    # Every run classifies every request exactly once.
    for record in records:
        assert (
            record["ok"] + record["stale"] + record["shed"]
            + record["failed"] == record["num_requests"]
        ), record
