"""Section 7 discussion: request-flood (DoS) resilience.

"Note that an architecture based on edge caching, such as idICN,
provides approximately the same hit-ratios as a pervasively deployed
ICN, indicating that such an edge cache deployment can provide much of
the same request flood protection as pervasively deployed ICNs."

We synthesize a request flood — a large burst of extra requests for a
handful of already-published objects, arriving across all leaves — and
measure how much of the flood each architecture absorbs before it
reaches the origin.
"""

import numpy as np

from conftest import emit, leaf_scaled_config
from repro.analysis import format_table
from repro.cache.budget import node_budgets
from repro.core import EDGE, EDGE_COOP, ICN_NR, ICN_SP, Simulator
from repro.core.experiment import build_network, build_workload
from repro.workload import Workload

FLOOD_OBJECTS = 4
FLOOD_FACTOR = 3  # flood adds 3x the legitimate volume


def _with_flood(workload: Workload, rng: np.random.Generator) -> Workload:
    """Append a flood phase targeting the most popular objects."""
    n = workload.num_requests
    flood_n = n * FLOOD_FACTOR
    targets = rng.integers(0, FLOOD_OBJECTS, size=flood_n)
    pops = rng.choice(workload.pops, size=flood_n)
    leaves = rng.choice(workload.leaves, size=flood_n)
    return Workload(
        num_objects=workload.num_objects,
        pops=np.concatenate([workload.pops, pops]),
        leaves=np.concatenate([workload.leaves, leaves]),
        objects=np.concatenate([workload.objects, targets]),
        sizes=workload.sizes,
        origins=workload.origins,
    )


def test_dos_request_flood_absorption(once):
    def run():
        config = leaf_scaled_config("abilene", per_leaf=150,
                            budget_split="uniform")
        network = build_network(config)
        legitimate = build_workload(config, network)
        rng = np.random.default_rng(config.seed + 99)
        flooded = _with_flood(legitimate, rng)
        budgets = node_budgets(network, config.budget_fraction,
                               config.num_objects, config.budget_split)
        rows = []
        flood_requests = flooded.num_requests - legitimate.num_requests
        for arch in (EDGE, EDGE_COOP, ICN_SP, ICN_NR):
            # Measure only the flood phase (warmup = legitimate phase).
            simulator = Simulator(
                network, arch, flooded, budgets,
                warmup_fraction=legitimate.num_requests
                / flooded.num_requests,
            )
            result = simulator.run()
            absorbed = 100.0 * result.cache_hit_ratio
            rows.append(
                [arch.name, absorbed,
                 result.total_origin_load,
                 100.0 * result.total_origin_load / flood_requests]
            )
        return rows

    rows = once(run)
    emit(
        "dos_resilience",
        format_table(
            ["architecture", "flood absorbed by caches %",
             "flood requests at origins", "origin leakage %"],
            rows,
            title="Section 7: request-flood absorption (paper: edge "
                  "caching gives much the same flood protection as "
                  "pervasive ICN)",
        ),
    )
    by_name = {row[0]: row[1] for row in rows}
    # Every architecture absorbs nearly the whole flood...
    for name, absorbed in by_name.items():
        assert absorbed > 95.0, name
    # ...and EDGE is within a whisker of pervasive ICN.
    assert by_name["ICN-NR"] - by_name["EDGE"] < 3.0
