"""Figure 10: bridging ICN-NR's best case with simple EDGE extensions.

Under the most ICN-favourable configuration from Figure 9, compare
ICN-NR against successively richer EDGE variants: 2-Levels, Coop,
2-Levels-Coop, Norm, Norm-Coop, Double-Budget-Coop — plus the two
reference points the paper plots: the Section 4 baseline configuration
and the hypothetical infinite-budget setting.  The paper: normalized
budgets plus cooperation shrink even the best case to ~6%, and a
doubled edge budget can make EDGE beat ICN-NR.
"""

from conftest import ENGINE, emit, leaf_scaled_config
from repro.analysis import format_table
from repro.core import (
    EDGE,
    EDGE_INF,
    EDGE_VARIANTS,
    ICN_NR,
    ICN_NR_INF,
    run_experiment,
)

def best_case_config():
    return leaf_scaled_config(
        "abilene",
        alpha=0.1,
        spatial_skew=1.0,
        budget_split="uniform",
        budget_fraction=0.02,
    )


def test_figure10_edge_variants_bridge_the_gap(once):
    def run():
        config = best_case_config()
        outcome = run_experiment(config, (ICN_NR, *EDGE_VARIANTS),
                                 engine=ENGINE)
        rows = []
        for variant in EDGE_VARIANTS:
            gap = outcome.gap("ICN-NR", variant.name)
            rows.append(
                [variant.name, gap.latency, gap.congestion, gap.origin_load]
            )
        # Reference point 1: the Section 4 baseline configuration.
        section4 = run_experiment(leaf_scaled_config("abilene"),
                                  (ICN_NR, EDGE), engine=ENGINE).gap()
        rows.append(
            ["Section-4", section4.latency, section4.congestion,
             section4.origin_load]
        )
        # Reference point 2: infinite caches on both sides.
        infinite = run_experiment(config, (ICN_NR_INF, EDGE_INF),
                                  engine=ENGINE).gap(
            "ICN-NR-Inf", "EDGE-Inf"
        )
        rows.append(
            ["Inf-Budget", infinite.latency, infinite.congestion,
             infinite.origin_load]
        )
        return rows

    rows = once(run)
    emit(
        "figure10_bridging",
        format_table(
            ["EDGE variant", "latency gap %", "congestion gap %",
             "origin-load gap %"],
            rows,
            title="Figure 10: ICN-NR's best case vs EDGE extensions "
                  "(paper: Norm-Coop brings the gap to ~6%)",
        ),
    )
    by_name = {row[0]: row[1] for row in rows}
    # Shape: each extension narrows the latency gap.
    assert by_name["Coop"] <= by_name["Baseline"]
    assert by_name["Norm"] <= by_name["Baseline"]
    assert by_name["Norm-Coop"] <= by_name["Coop"] + 0.5
    assert by_name["Double-Budget-Coop"] <= by_name["Norm-Coop"] + 0.5
    # Doubling the budget should roughly erase (or invert) the gap.
    assert by_name["Double-Budget-Coop"] < by_name["Baseline"] / 2
