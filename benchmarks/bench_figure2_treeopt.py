"""Figure 2: utility of cache levels on a binary tree (Section 2.2).

Regenerates the fraction of requests served at each level of a 6-level
binary distribution tree under the optimal static placement, for
alpha in {0.7, 1.1, 1.5}, plus the paper's alpha = 0.7 walkthrough
("the latency improvement attributed to universal caching is only 25%")
and the budget-allocation extension (majority of budget at the leaves).
"""

from conftest import emit
from repro.analysis import format_series, format_table
from repro.treeopt import (
    TreeModel,
    budget_share_per_level,
    expected_hops,
    expected_hops_edge_only,
    lp_expected_hops,
    optimize_level_allocation,
    universal_caching_latency_gain,
)

NUM_OBJECTS = 1000
CACHE_SIZE = 60  # sized so alpha=0.7 serves ~40% at the edge, as in §2.2


def test_figure2_fraction_served_per_level(once):
    def run():
        series = {}
        gains = {}
        for alpha in (0.7, 1.1, 1.5):
            model = TreeModel(levels=6, cache_size=CACHE_SIZE,
                              num_objects=NUM_OBJECTS, alpha=alpha)
            from repro.treeopt import fraction_served_per_level

            series[f"alpha={alpha}"] = list(fraction_served_per_level(model))
            gains[alpha] = (
                expected_hops(model),
                expected_hops_edge_only(model),
                universal_caching_latency_gain(model),
                lp_expected_hops(model),
            )
        return series, gains

    series, gains = once(run)
    text = format_series(
        "cache level (6=origin)", [1, 2, 3, 4, 5, 6], series,
        title="Figure 2: fraction of requests served per tree level "
              "(optimal static placement)",
        )
    rows = [
        [alpha, hops, edge_only, gain, lp]
        for alpha, (hops, edge_only, gain, lp) in gains.items()
    ]
    text += "\n\n" + format_table(
        ["alpha", "E[hops] all levels", "E[hops] edge-only",
         "universal caching gain %", "LP bound"],
        rows,
        title="Section 2.2 walkthrough (paper: ~3 vs ~4 hops, ~25% gain "
              "at alpha=0.7)",
    )
    emit("figure2_treeopt", text)

    # Shape checks from the paper.
    for label, fractions in series.items():
        assert fractions[0] == max(fractions[:5]), (
            "the edge level must dominate all intermediate levels"
        )
        assert sum(fractions[1:5]) < 0.45
    edge_07 = series["alpha=0.7"][0]
    assert 0.30 < edge_07 < 0.50
    hops, edge_only, gain, lp = gains[0.7]
    assert abs(hops - lp) < 1e-6, "LP relaxation must match the greedy"
    assert 10.0 < gain < 35.0


def test_figure2_extension_budget_allocation(once):
    def run():
        model = TreeModel(levels=6, cache_size=0, num_objects=NUM_OBJECTS,
                          alpha=1.1)
        allocation = optimize_level_allocation(model, total_budget=16_000)
        return allocation, budget_share_per_level(model, allocation)

    allocation, shares = once(run)
    rows = [
        [level, allocation.sizes[level - 1], shares[level - 1] * 100]
        for level in range(1, 6)
    ]
    emit(
        "figure2_budget_allocation",
        format_table(
            ["level (1=leaves)", "per-node slots", "budget share %"],
            rows,
            title="Section 2.2 extension: optimal budget split across "
                  "levels (paper: majority at the leaves)",
        ),
    )
    assert shares[0] > 0.5
