"""End-to-end streamed replay of a synthetic CDN log: 100M requests, O(1) RSS.

The streaming contract the tentpole sells — replay a trace of *any*
length in constant memory — is only credible if something actually
replays a huge trace and watches the memory.  This bench does exactly
that: it generates a 100M-request synthetic CDN workload (Zipf over a
fixed catalog, population-weighted arrivals) as a chunked stream and
replays it end to end through the fast engine — the no-cache baseline
pass plus a full ICN-SP cache simulation — without ever materializing
a request column.

Each replay runs in a child process so ``ru_maxrss`` measures that
replay alone, not the parent's pytest/history.  Two trace lengths 10x
apart share one fixed catalog and network; peak RSS must agree within
10% (plus a small allocator-noise floor), which is what "independent
of trace length" means operationally.  An absolute ceiling
(``REPRO_STREAM_RSS_CEILING_MB``, default 4096 MB) backstops the ratio
against both runs bloating together.

Throughput and peak RSS land in the ``stream_replay`` section of
``BENCH_core.json`` (merged into the existing report; the section
carries its own ``scale``).  The ``*_seconds`` /
``*_requests_per_second`` entries are gated by ``bench-diff`` in CI;
the RSS numbers are reported there but asserted here.

Scale with ``REPRO_BENCH_SCALE`` as usual: 1.0 replays the full 100M
requests (the committed numbers), 0.2 is the CI smoke run (20M).
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: The full-scale trace length (requests) at SCALE = 1.
BASE_REQUESTS = 100_000_000

#: Catalog size — deliberately *not* scaled with the trace: per-object
#: tables (sizes, origins, cache state) are the legitimate O(catalog)
#: memory, so holding the catalog fixed isolates the O(trace) leaks the
#: RSS ratio is hunting.
NUM_OBJECTS = 50_000

#: Absolute peak-RSS backstop for the *long* replay (MB).
RSS_CEILING_MB = float(os.environ.get("REPRO_STREAM_RSS_CEILING_MB", "4096"))

#: Long-vs-short RSS tolerance: ratio plus an allocator-noise floor.
RSS_RATIO_LIMIT = 1.10
RSS_SLACK_MB = 32.0


def _child(num_requests: int, seed: int, chunk_size: int) -> None:
    """Replay ``num_requests`` streamed requests and report on stdout."""
    import numpy as np

    from repro.cache.budget import node_budgets
    from repro.core import ICN_SP, Simulator, simulate_no_cache
    from repro.topology import AccessTree, Network, topology
    from repro.workload.stream import stream_workload

    network = Network(topology("abilene"), AccessTree(arity=2, depth=3))
    workload = stream_workload(
        network, NUM_OBJECTS, num_requests, 1.04,
        np.random.default_rng(seed), chunk_size=chunk_size,
    )
    budgets = node_budgets(network, 0.05, NUM_OBJECTS, "proportional")

    start = time.perf_counter()
    baseline = simulate_no_cache(network, workload, engine="fast")
    no_cache_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cached = Simulator(
        network, ICN_SP, workload, budgets, engine="fast"
    ).run()
    icn_sp_seconds = time.perf_counter() - start

    assert baseline.num_requests == num_requests
    assert cached.num_requests == num_requests
    assert cached.total_latency < baseline.total_latency

    # Linux reports ru_maxrss in kilobytes.
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    json.dump(
        {
            "requests": num_requests,
            "no_cache_seconds": no_cache_seconds,
            "icn_sp_seconds": icn_sp_seconds,
            "peak_rss_mb": peak_rss_kb / 1024.0,
        },
        sys.stdout,
    )


def _replay_in_child(num_requests: int, seed: int, chunk_size: int) -> dict:
    """Run one replay in a fresh interpreter; return its JSON report."""
    proc = subprocess.run(
        [
            sys.executable, __file__, "--child",
            str(num_requests), str(seed), str(chunk_size),
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def _merge_into_report(section: dict, scale: float, seed: int) -> None:
    """Attach ``section`` to BENCH_core.json, preserving other sections.

    The stream section records its own ``scale``, so merging into a
    report produced at a different scale never lies about either.  A
    missing or unreadable report is rebuilt fresh (this is how the CI
    stream-smoke job isolates its gate to the stream metrics).
    """
    report: dict = {}
    if BENCH_JSON.exists():
        try:
            loaded = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            loaded = None
        if isinstance(loaded, dict) and loaded.get("schema") == "bench_core/v1":
            report = loaded
    if not report:
        report = {
            "schema": "bench_core/v1",
            "scale": scale,
            "seed": seed,
            "workers": 0,
        }
    report["stream_replay"] = section
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")


def test_stream_replay_constant_memory(once):
    from conftest import SCALE, SEED, emit

    long_requests = max(1_000_000, int(BASE_REQUESTS * SCALE))
    short_requests = long_requests // 10
    # Both runs must sit in the steady-state regime (trace >> chunk),
    # or the short run's peak never reaches the per-chunk footprint and
    # the ratio measures chunk fill, not trace-length dependence.
    chunk_size = max(65_536, min(1 << 20, short_requests // 4))

    def run():
        return (
            _replay_in_child(short_requests, SEED, chunk_size),
            _replay_in_child(long_requests, SEED, chunk_size),
        )

    short, long = once(run)

    def totals(report):
        seconds = report["no_cache_seconds"] + report["icn_sp_seconds"]
        # Two full passes over the stream (baseline + ICN-SP).
        return seconds, 2 * report["requests"] / seconds

    short_seconds, short_rps = totals(short)
    long_seconds, long_rps = totals(long)
    section = {
        "scale": SCALE,
        "seed": SEED,
        "network": "abilene",
        "tree_depth": 3,
        "num_objects": NUM_OBJECTS,
        "chunk_size": chunk_size,
        "requests": long_requests,
        "replay_seconds": round(long_seconds, 3),
        "replay_requests_per_second": round(long_rps),
        "no_cache_seconds": round(long["no_cache_seconds"], 3),
        "icn_sp_seconds": round(long["icn_sp_seconds"], 3),
        "peak_rss_mb": round(long["peak_rss_mb"], 1),
        "short_requests": short_requests,
        "short_replay_seconds": round(short_seconds, 3),
        "short_replay_requests_per_second": round(short_rps),
        "short_peak_rss_mb": round(short["peak_rss_mb"], 1),
        "rss_ratio": round(long["peak_rss_mb"] / short["peak_rss_mb"], 3),
    }
    _merge_into_report(section, SCALE, SEED)

    emit(
        "stream_replay",
        "\n".join(
            [
                "Streamed CDN-log replay (fast engine, no-cache + ICN-SP)",
                f"  scale {SCALE}, seed {SEED}, catalog {NUM_OBJECTS} objects",
                f"  long:  {long_requests:>12,} requests  "
                f"{long_seconds:8.1f}s  {long_rps:>9,.0f} req/s  "
                f"peak RSS {long['peak_rss_mb']:7.1f} MB",
                f"  short: {short_requests:>12,} requests  "
                f"{short_seconds:8.1f}s  {short_rps:>9,.0f} req/s  "
                f"peak RSS {short['peak_rss_mb']:7.1f} MB",
                f"  RSS ratio (long/short): {section['rss_ratio']}",
                f"  written to {BENCH_JSON.name} (stream_replay)",
            ]
        ),
    )

    # The contract: a 10x longer trace must not cost more memory.
    assert long["peak_rss_mb"] <= (
        RSS_RATIO_LIMIT * short["peak_rss_mb"] + RSS_SLACK_MB
    ), (
        f"peak RSS grew with trace length: {long['peak_rss_mb']:.1f} MB "
        f"at {long_requests:,} requests vs {short['peak_rss_mb']:.1f} MB "
        f"at {short_requests:,}"
    )
    assert long["peak_rss_mb"] <= RSS_CEILING_MB, (
        f"peak RSS {long['peak_rss_mb']:.1f} MB exceeds the "
        f"{RSS_CEILING_MB:.0f} MB ceiling"
    )


if __name__ == "__main__":
    if len(sys.argv) == 5 and sys.argv[1] == "--child":
        _child(int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
    else:  # pragma: no cover - manual invocation guard
        raise SystemExit("run via pytest, or with --child N SEED CHUNK")
