"""Ablation: on-path insertion policies for pervasive caching.

The paper's pervasive designs leave a copy *everywhere* on the response
path (LCE), which maximizes redundancy and churn.  The ICN literature's
standard alternatives — leave-copy-down and probabilistic insertion —
reduce cache pollution.  If smarter insertion substantially improved
pervasive caching, the paper's edge-vs-pervasive comparison would be
understating ICN; this bench checks that it does not.
"""

import dataclasses

from conftest import emit, leaf_scaled_config
from repro.analysis import format_table
from repro.core import EDGE, ICN_SP, run_experiment

POLICIES = (
    ICN_SP,
    dataclasses.replace(ICN_SP, name="ICN-SP/LCD", insertion="lcd"),
    dataclasses.replace(ICN_SP, name="ICN-SP/prob-0.3",
                        insertion="probabilistic",
                        insertion_probability=0.3),
)


def test_ablation_insertion_policies(once):
    def run():
        config = leaf_scaled_config("abilene")
        outcome = run_experiment(config, (*POLICIES, EDGE))
        rows = []
        for arch in POLICIES:
            imp = outcome.improvements[arch.name]
            gap = outcome.gap(arch.name, "EDGE")
            rows.append([arch.name, imp.latency, imp.origin_load,
                         gap.latency])
        edge = outcome.improvements["EDGE"]
        rows.append(["EDGE (reference)", edge.latency, edge.origin_load,
                     0.0])
        return rows

    rows = once(run)
    emit(
        "ablation_insertion",
        format_table(
            ["architecture", "latency +%", "origin load +%",
             "gap over EDGE (latency)"],
            rows,
            title="Ablation: on-path insertion policies for pervasive "
                  "caching (LCE is the paper's choice)",
        ),
    )
    gaps = {row[0]: row[3] for row in rows}
    # No insertion policy changes the edge-vs-pervasive conclusion: the
    # alternatives stay within a few points of LCE.
    assert abs(gaps["ICN-SP/LCD"] - gaps["ICN-SP"]) < 8.0
    assert abs(gaps["ICN-SP/prob-0.3"] - gaps["ICN-SP"]) < 8.0