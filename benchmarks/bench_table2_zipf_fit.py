"""Table 2: Zipf parameters fitted per CDN region.

Paper row format: location, number of requests, best-fit Zipf exponent
(US 1.1M/0.99, Europe 3.1M/0.92, Asia 1.8M/1.04).  The bench fits the
MLE estimator on the synthetic logs and checks it recovers the
published exponents.
"""

import numpy as np

from conftest import SCALE, emit
from repro.analysis import format_table
from repro.workload import (
    REGIONS,
    fit_zipf_mle,
    rank_frequency,
    region_object_stream,
)

TRACE_SCALE = 0.05 * SCALE


def test_table2_zipf_parameters(once):
    def run():
        rows = []
        for region, profile in REGIONS.items():
            rng = np.random.default_rng(hash(region) % 2**32)
            objects, num_objects = region_object_stream(
                region, rng, scale=TRACE_SCALE
            )
            fitted = fit_zipf_mle(rank_frequency(objects),
                                  num_objects=num_objects)
            rows.append(
                [region, profile.num_requests, profile.alpha, fitted,
                 abs(fitted - profile.alpha)]
            )
        return rows

    rows = once(run)
    emit(
        "table2_zipf_fit",
        format_table(
            ["location", "requests (full trace)", "paper alpha",
             "fitted alpha", "|error|"],
            rows,
            title="Table 2: Zipf fits per CDN region (paper vs measured)",
        ),
    )
    for row in rows:
        assert row[4] < 0.08, f"{row[0]}: fitted alpha too far from paper"
