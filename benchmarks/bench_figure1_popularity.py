"""Figure 1: request popularity distributions across three regions.

Regenerates the log-log rank-frequency curves for the US, Europe, and
Asia CDN logs (synthetic twins with the published Table 2 fits) and the
straight-line check ("each curve is almost linear on a log-log plot").
"""

import numpy as np

from conftest import SCALE, bench_config, emit
from repro.analysis import format_table, loglog_popularity
from repro.workload import (
    REGIONS,
    fit_zipf_regression,
    rank_frequency,
    region_object_stream,
)

TRACE_SCALE = 0.05 * SCALE


def test_figure1_popularity_curves(once):
    def run():
        rows = []
        curves = {}
        for region in ("us", "europe", "asia"):
            rng = np.random.default_rng(hash(region) % 2**32)
            objects, _ = region_object_stream(region, rng, scale=TRACE_SCALE)
            counts = rank_frequency(objects)
            fit = fit_zipf_regression(counts)
            rows.append(
                [region, len(objects), int(counts.size),
                 fit.alpha, fit.r_squared]
            )
            curves[region] = loglog_popularity(counts, points=12)
        return rows, curves

    rows, curves = once(run)
    text = format_table(
        ["region", "requests", "distinct objects", "loglog slope (alpha)",
         "R^2 (linearity)"],
        rows,
        title="Figure 1: popularity is Zipfian in all three regions",
    )
    for region, curve in curves.items():
        lines = [f"\nFigure 1({region}): rank -> request count (log-spaced)"]
        lines.append("  ".join(f"{int(rank)}:{int(count)}"
                               for rank, count in curve))
        text += "\n" + "\n".join(lines)
    emit("figure1_popularity", text)
    # Shape checks: heavy tail, near-linear in log-log.
    for row in rows:
        assert row[4] > 0.85, "log-log curve should be nearly linear"
        assert 0.7 < row[3] < 1.3
