"""Section 6 prototype: idICN end-to-end behaviour.

Not a paper figure, but the prototype claims of Section 6 made
measurable: the Figure 11 step count per request (7 steps on a cold
path, 3 on a warm one), proxy cache effectiveness across clients of an
AD, end-to-end verification overhead, and request throughput of the
simulated deployment.
"""

from conftest import SCALE, emit
from repro.analysis import format_table
from repro.idicn import build_deployment

OBJECTS = max(10, int(40 * SCALE))
FETCHES = max(50, int(2000 * SCALE))


def test_idicn_end_to_end_throughput(once):
    def run():
        deployment = build_deployment(
            num_domains=2, browsers_per_domain=2, proxy_capacity=OBJECTS
        )
        provider = deployment.providers[0]
        domains = [
            provider.publish(f"obj{i}", f"content {i}".encode() * 20)
            for i in range(OBJECTS)
        ]
        messages_before = deployment.net.messages_sent
        for i in range(FETCHES):
            domain_obj = domains[i % OBJECTS]
            ad = deployment.domains[i % 2]
            browser = ad.browsers[i % 2]
            response = browser.get(f"http://{domain_obj}/")
            assert response.ok
        messages = deployment.net.messages_sent - messages_before
        proxies = [ad.proxy for ad in deployment.domains]
        return deployment, messages, proxies

    deployment, messages, proxies = once(run)
    hits = sum(p.hits for p in proxies)
    misses = sum(p.misses for p in proxies)
    origin_fetches = deployment.providers[0].reverse_proxy.origin_fetches
    rows = [
        ["client fetches", FETCHES],
        ["edge-proxy hits", hits],
        ["edge-proxy misses", misses],
        ["edge hit ratio %", 100.0 * hits / (hits + misses)],
        ["origin fetches (should be ~#objects)", origin_fetches],
        ["network messages per fetch", messages / FETCHES],
        ["verification failures", sum(p.verification_failures
                                      for p in proxies)],
    ]
    emit(
        "idicn_prototype",
        format_table(
            ["metric", "value"], rows,
            title="Section 6: idICN prototype end-to-end measurements",
        ),
    )
    assert hits + misses == FETCHES
    # Warm paths dominate: each object misses once per AD at most.
    assert misses <= 2 * OBJECTS
    # Publishing fetched each object from the origin exactly once.
    assert origin_fetches == OBJECTS
    # Warm requests take 2 messages (client->proxy, none upstream).
    assert messages / FETCHES < 4.0
