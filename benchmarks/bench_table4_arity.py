"""Table 4: effect of access-tree arity on the ICN-over-EDGE gap.

Arity k in {2, 4, 8, 64} with tree depth adjusted to keep 64 leaves per
tree.  The paper's mechanism: EDGE's share of the total cache budget is
(k-1)/k, so as arity grows the pervasive designs lose their budget
advantage and the gap collapses (10.29/9.14/6.27 at k=2 down to
~1.8/0.9/0.3 at k=64).

We report both ICN-SP and ICN-NR against EDGE.  The ICN-SP series shows
the paper's pure budget-ratio effect.  Our scoped nearest-replica search
includes a node's siblings, so at arity 64 ICN-NR's scope spans the
whole tree and it retains a sharing advantage the paper's ICN-NR
evidently did not have — see EXPERIMENTS.md.
"""

from conftest import emit, leaf_scaled_config
from repro.analysis import format_table
from repro.core import EDGE, ICN_NR, ICN_SP, run_experiment
from repro.topology import arity_for_leaf_count

LEAVES = 64
ARITIES = (2, 4, 8, 64)


def test_table4_arity(once):
    def run():
        rows = []
        for arity in ARITIES:
            depth = arity_for_leaf_count(LEAVES, arity)
            config = leaf_scaled_config(
                "abilene", arity=arity, tree_depth=depth
            )
            outcome = run_experiment(config, (ICN_SP, ICN_NR, EDGE))
            sp_gap = outcome.gap("ICN-SP", "EDGE")
            nr_gap = outcome.gap("ICN-NR", "EDGE")
            rows.append(
                [arity, depth,
                 sp_gap.latency, sp_gap.congestion, sp_gap.origin_load,
                 nr_gap.latency, nr_gap.congestion, nr_gap.origin_load]
            )
        return rows

    rows = once(run)
    emit(
        "table4_arity",
        format_table(
            ["arity", "depth",
             "SP latency %", "SP congestion %", "SP origin %",
             "NR latency %", "NR congestion %", "NR origin %"],
            rows,
            title="Table 4: ICN gain over EDGE vs access-tree arity "
                  "(paper: k=2 gives 10.3/9.1/6.3; k=64 gives ~1.8/0.9/0.3)",
        ),
    )
    sp_latency = [row[2] for row in rows]
    # The paper's budget-ratio effect: the ICN-SP advantage collapses
    # as arity grows.
    assert sp_latency[0] > sp_latency[-1] + 2.0
    assert sp_latency[-1] < 8.0
