"""Figure 6: trace-driven baseline comparison, population-proportional
budgets.

Panels (a)-(c): query latency / congestion / origin-load improvement
over no caching, for ICN-SP, ICN-NR, EDGE, EDGE-Coop, EDGE-Norm across
the eight topologies, driven by the (synthetic twin of the) Asia CDN
trace with population-proportional cache budgets and origin assignment.
"""

from conftest import emit
from harness import improvement_table, max_pairwise_gap, run_topologies
from repro.core import BASELINE_ARCHITECTURES


def test_figure6_baseline_improvements(once):
    outcomes = once(
        run_topologies,
        BASELINE_ARCHITECTURES,
        budget_split="proportional",
        origin_mode="proportional",
    )
    panels = {
        "latency": "(a) query latency improvement % over no caching",
        "congestion": "(b) congestion improvement % (max link)",
        "origin_load": "(c) origin server load improvement % (max origin)",
    }
    text = "\n\n".join(
        improvement_table(outcomes, metric, f"Figure 6{title}")
        for metric, title in panels.items()
    )
    worst = max_pairwise_gap(outcomes)
    text += (
        f"\n\nMax architecture gap across all topologies/metrics: "
        f"{worst:.2f}% (paper reports at most ~9%)"
    )
    emit("figure6_baseline", text)

    for topology, outcome in outcomes.items():
        imp = outcome.improvements
        # Ordering claims of Section 4.2.
        assert imp["ICN-NR"].latency >= imp["EDGE"].latency, topology
        assert imp["ICN-NR"].latency - imp["ICN-SP"].latency < 8.0, (
            "nearest-replica routing adds marginal value over ICN-SP"
        )
        assert imp["EDGE-Coop"].latency >= imp["EDGE"].latency, topology
        # Everything helps a lot relative to no caching.
        assert imp["EDGE"].min() > 20.0, topology
