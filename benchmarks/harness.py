"""Shared runners for the simulation benches (Figures 6-10, Tables 3-4)."""

from __future__ import annotations

import numpy as np

from conftest import ENGINE, WORKERS, bench_config, leaf_scaled_config
from repro.analysis import format_table
from repro.core import (
    ExperimentConfig,
    ExperimentResult,
    SweepPoint,
    run_experiment,
    run_sweep,
)
from repro.core.metrics import METRIC_NAMES
from repro.topology import TOPOLOGY_NAMES
from repro.workload import region_object_stream

#: Full-size Asia trace request count (Table 2) for scale conversion.
ASIA_REQUESTS = 1_800_000


def asia_trace_objects(config: ExperimentConfig) -> np.ndarray:
    """The paper's baseline workload: the Asia CDN log, scaled down.

    Returns the object-id sequence of a synthetic Asia log with the
    bench catalog size, so trace-driven runs consume exactly
    ``config.num_requests`` requests over ``config.num_objects`` objects.
    """
    rng = np.random.default_rng(config.seed + 1)
    objects, _ = region_object_stream(
        "asia",
        rng,
        scale=config.num_requests / ASIA_REQUESTS,
        num_objects=config.num_objects,
    )
    return objects


def run_topologies(
    architectures,
    topologies=TOPOLOGY_NAMES,
    trace_driven: bool = True,
    engine: str = ENGINE,
    workers: int = WORKERS,
    **config_overrides,
) -> dict[str, ExperimentResult]:
    """Run the architecture line-up on each topology over one workload.

    Each topology is one :class:`SweepPoint`; the sweep runner executes
    them (in parallel when ``workers`` > 1) and a failing topology is
    raised rather than silently missing from a figure.  Every point's
    workload derives from the single bench seed (``REPRO_BENCH_SEED``).
    """
    points = []
    for name in topologies:
        config = leaf_scaled_config(name, **config_overrides)
        objects = asia_trace_objects(config) if trace_driven else None
        points.append(
            SweepPoint(
                key=name,
                config=config,
                architectures=tuple(architectures),
                objects=objects,
            )
        )
    outcome = run_sweep(points, workers=workers, engine=engine)
    outcome.raise_on_failure()
    return {name: outcome.results[name] for name in topologies}


def improvement_table(
    outcomes: dict[str, ExperimentResult], metric: str, title: str
) -> str:
    """One Figure 6/7 panel: topologies x architectures for one metric."""
    architectures = list(next(iter(outcomes.values())).improvements)
    rows = []
    for topology, outcome in outcomes.items():
        rows.append(
            [topology]
            + [getattr(outcome.improvements[a], metric) for a in architectures]
        )
    return format_table(["topology", *architectures], rows, title=title)


def gap_table(
    outcomes: dict[str, ExperimentResult],
    arch_a: str,
    arch_b: str,
    title: str,
) -> str:
    """Per-topology per-metric gap rows (Table 3 / Table 4 style)."""
    rows = []
    for topology, outcome in outcomes.items():
        gap = outcome.gap(arch_a, arch_b)
        rows.append([topology, gap.latency, gap.congestion, gap.origin_load])
    return format_table(
        ["topology", "latency gap %", "congestion gap %",
         "origin-load gap %"],
        rows,
        title=title,
    )


def max_pairwise_gap(outcomes: dict[str, ExperimentResult]) -> float:
    """The paper's headline number: the largest architecture gap on any
    metric over any topology."""
    worst = 0.0
    for outcome in outcomes.values():
        for metric in METRIC_NAMES:
            values = [
                getattr(imp, metric) for imp in outcome.improvements.values()
            ]
            worst = max(worst, max(values) - min(values))
    return worst
