"""Section 5.1 "Other parameters": latency models, serving capacity,
heterogeneous object sizes.

The paper reports each of these changes the ICN-NR-over-EDGE picture by
less than ~2% (sizes: <1%): (1) per-hop latency growing toward the
core, or core hops d times more expensive, (2) per-node serving
capacity with overflow redirection, (3) heavy-tailed object sizes
uncorrelated with popularity.
"""

from conftest import emit, leaf_scaled_config
from repro.analysis import format_table
from repro.core import EDGE, ICN_NR, CapacityModel, run_experiment

def _gap(config):
    return run_experiment(config, (ICN_NR, EDGE)).gap()


def test_section5_other_parameters(once):
    def run():
        base = leaf_scaled_config("abilene")
        rows = []
        reference = _gap(base)
        rows.append(["baseline (unit hops)", reference.latency,
                     reference.congestion, reference.origin_load])
        for label, config in [
            ("arithmetic latency toward core",
             base.with_(latency_model="arithmetic")),
            ("core hops 4x more expensive",
             base.with_(latency_model="core_weighted",
                        core_latency_factor=4.0)),
            ("serving capacity limited",
             base.with_(capacity=CapacityModel(
                 per_window=max(20, base.num_requests // 2000),
                 window=1000))),
            ("heterogeneous object sizes",
             base.with_(heterogeneous_sizes=True)),
        ]:
            gap = _gap(config)
            rows.append([label, gap.latency, gap.congestion,
                         gap.origin_load])
        return rows, reference

    rows, reference = once(run)
    emit(
        "section5_other_params",
        format_table(
            ["scenario", "latency gap %", "congestion gap %",
             "origin-load gap %"],
            rows,
            title="Section 5.1 'other parameters': ICN-NR over EDGE under "
                  "alternative models (paper: each moves the gap < ~2%)",
        ),
    )
    baseline_latency = rows[0][1]
    for row in rows[1:]:
        # Shape: none of these models changes the picture materially.
        assert abs(row[1] - baseline_latency) < 8.0, row[0]
