"""Table 3: trace-driven vs best-fit-Zipf synthetic simulations.

For each topology, run ICN-NR and EDGE twice — once driven by the Asia
trace and once by a synthetic request log with the best-fit Zipf — and
compare the predicted ICN-NR-over-EDGE latency gap.  The paper finds
the two agree within 1.67 percentage points, validating synthetic
workloads for the sensitivity analysis.
"""

from conftest import emit, leaf_scaled_config
from harness import asia_trace_objects
from repro.analysis import format_table
from repro.core import EDGE, ICN_NR, run_experiment
from repro.topology import TOPOLOGY_NAMES
from repro.workload import fit_zipf_mle, rank_frequency


def test_table3_trace_vs_synthetic(once):
    def run():
        rows = []
        for topology in TOPOLOGY_NAMES:
            config = leaf_scaled_config(topology)
            objects = asia_trace_objects(config)
            trace_outcome = run_experiment(
                config, (ICN_NR, EDGE), objects=objects
            )
            trace_gap = trace_outcome.gap().latency
            fitted_alpha = fit_zipf_mle(
                rank_frequency(objects), num_objects=config.num_objects
            )
            synthetic_outcome = run_experiment(
                config.with_(alpha=fitted_alpha), (ICN_NR, EDGE)
            )
            synthetic_gap = synthetic_outcome.gap().latency
            rows.append(
                [topology, trace_gap, synthetic_gap,
                 abs(trace_gap - synthetic_gap)]
            )
        return rows

    rows = once(run)
    emit(
        "table3_synthetic",
        format_table(
            ["topology", "trace gap %", "synthetic gap %", "difference"],
            rows,
            title="Table 3: ICN-NR over EDGE latency gap, trace vs "
                  "best-fit synthetic (paper: difference <= 1.67)",
        ),
    )
    for row in rows:
        assert row[3] < 3.0, (
            f"{row[0]}: synthetic workload should predict the trace gap"
        )
