"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper and emits the
same rows/series the paper reports — both to the terminal (bypassing
pytest capture) and to ``benchmarks/results/<name>.txt`` so the numbers
can be diffed across runs.

Scale knob: set ``REPRO_BENCH_SCALE`` (default 1.0) to shrink or grow
every workload; 0.2 gives a quick smoke run, 1.0 the reported numbers.

Engine knobs: ``REPRO_BENCH_ENGINE`` picks the simulation engine
("fast" by default — bit-identical to "reference", just quicker),
``REPRO_BENCH_WORKERS`` fans sweep points out over that many processes
(0 = serial), and ``REPRO_BENCH_SEED`` is the single base seed every
bench derives its workloads from.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.core import ExperimentConfig

#: Workload scale multiplier for every bench.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Simulation engine for every bench ("fast" and "reference" produce
#: identical results; tests/core/test_fastpath_equivalence.py pins this).
ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "fast")

#: Worker processes for sweep-shaped benches (0 = serial in-process).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))

#: The single base seed every bench workload derives from.
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2013"))

#: Baseline request volume and catalog size at SCALE = 1.  The ratio is
#: calibrated (see DESIGN.md) so per-leaf request volumes resemble the
#: paper's daily-trace regime.
BASE_REQUESTS = 400_000
BASE_OBJECTS = 2_000

#: Requests per access-tree leaf at SCALE = 1.  The paper replays one
#: 1.8M-request trace against every topology; normalizing by leaf count
#: keeps every topology in the same cache-warmth regime (ATT has 4x the
#: leaves of Abilene, so a fixed request count would leave its edge
#: caches cold and overstate ICN's advantage).
PER_LEAF_REQUESTS = 400

#: Requests per catalog object (sets the cold-miss mass).
REQUESTS_PER_OBJECT = 200

RESULTS_DIR = Path(__file__).parent / "results"


def bench_config(**overrides) -> ExperimentConfig:
    """The benches' shared baseline configuration (paper Section 4.1)."""
    params = dict(
        num_requests=max(1000, int(BASE_REQUESTS * SCALE)),
        num_objects=max(100, int(BASE_OBJECTS * SCALE)),
        warmup_fraction=0.2,
        seed=SEED,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def leaf_scaled_config(
    topology_name: str,
    per_leaf: float = PER_LEAF_REQUESTS,
    requests_per_object: float = REQUESTS_PER_OBJECT,
    **overrides,
) -> ExperimentConfig:
    """A config whose workload size tracks the topology's leaf count."""
    from repro.topology import topology as load_topology

    arity = overrides.get("arity", 2)
    depth = overrides.get("tree_depth", 5)
    leaves = load_topology(topology_name).num_pops * arity**depth
    num_requests = max(1000, int(leaves * per_leaf * SCALE))
    num_objects = max(100, int(num_requests / requests_per_object))
    return bench_config(
        topology=topology_name,
        num_requests=num_requests,
        num_objects=num_objects,
        **overrides,
    )


def emit(name: str, text: str) -> None:
    """Print a result table to the real stdout and persist it."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are slow and
    deterministic; repeated rounds add nothing)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
