"""Ablation: LRU vs the optimal static edge placement (Section 3).

"Given that prior work (e.g., [39]) and our own experiments show that
the LRU policy performs near-optimally in practical scenarios, we use
LRU for the rest of this paper."

We evaluate EDGE twice over the same workload: (1) LRU as in the paper,
and (2) a *static* placement where every leaf cache is pre-filled with
the most popular objects and never updated — the per-leaf optimum for
an i.i.d. stream.  If LRU is near-optimal, the two improvements should
be close.  We also run LFU, which under i.i.d. traffic converges to the
top-B placement, to separate policy effects from placement effects.
"""

from conftest import emit, leaf_scaled_config
from repro.analysis import format_table
from repro.cache.budget import node_budgets
from repro.core import EDGE, Simulator, improvements, simulate_no_cache
from repro.core.experiment import build_network, build_workload


def test_ablation_lru_vs_optimal_static(once):
    def run():
        config = leaf_scaled_config("abilene")
        network = build_network(config)
        workload = build_workload(config, network)
        budgets = node_budgets(network, config.budget_fraction,
                               config.num_objects, config.budget_split)
        baseline = simulate_no_cache(
            network, workload, warmup_fraction=config.warmup_fraction
        )
        lru = Simulator(
            network, EDGE, workload, budgets,
            warmup_fraction=config.warmup_fraction,
        ).run()
        lfu = Simulator(
            network, EDGE, workload, budgets, policy="lfu",
            warmup_fraction=config.warmup_fraction,
        ).run()
        # Optimal static placement: each leaf holds the top-B objects
        # (object ids are global popularity ranks in our workloads).
        preload = {}
        for pop in range(network.num_pops):
            for local in EDGE.cache_locals(network.tree):
                node = network.gid(pop, local)
                preload[node] = list(range(int(budgets[node])))
        static = Simulator(
            network, EDGE, workload, budgets,
            warmup_fraction=config.warmup_fraction,
            preload=preload, frozen_caches=True,
        ).run()
        return (
            improvements(lru, baseline),
            improvements(lfu, baseline),
            improvements(static, baseline),
        )

    lru_imp, lfu_imp, static_imp = once(run)
    rows = [
        ["EDGE / LRU", lru_imp.latency, lru_imp.congestion,
         lru_imp.origin_load],
        ["EDGE / LFU", lfu_imp.latency, lfu_imp.congestion,
         lfu_imp.origin_load],
        ["EDGE / optimal static", static_imp.latency, static_imp.congestion,
         static_imp.origin_load],
        ["LRU shortfall vs optimal", static_imp.latency - lru_imp.latency,
         static_imp.congestion - lru_imp.congestion,
         static_imp.origin_load - lru_imp.origin_load],
    ]
    emit(
        "ablation_optimal_static",
        format_table(
            ["placement", "latency +%", "congestion +%", "origin load +%"],
            rows,
            title="Ablation: LRU vs optimal static edge placement "
                  "(paper: LRU is near-optimal)",
        ),
    )
    # Reproduction note (EXPERIMENTS.md): under *i.i.d.* Zipf the static
    # optimum beats LRU by ~10-13 points at these cache sizes — the
    # paper's "near-optimal" claim leans on real-trace temporal locality
    # that i.i.d. sampling removes.  LFU, which converges to the top-B
    # set under i.i.d. traffic, closes most of that shortfall.
    assert static_imp.latency >= lru_imp.latency - 1.0
    assert static_imp.latency - lru_imp.latency < 20.0
    assert abs(static_imp.latency - lfu_imp.latency) < abs(
        static_imp.latency - lru_imp.latency
    ) + 1.0


def test_ablation_lru_recovers_under_temporal_locality(once):
    """With PoP-local request bursts (as in real CDN logs), LRU closes
    most of its shortfall against the static optimum — supporting the
    paper's claim for *practical* scenarios."""
    from repro.workload import generate_temporal_workload
    import numpy as np

    def run():
        config = leaf_scaled_config("abilene")
        network = build_network(config)
        rows = []
        for locality in (0.0, 0.6):
            workload = generate_temporal_workload(
                network, config.num_objects, config.num_requests,
                config.alpha, np.random.default_rng(config.seed),
                locality=locality, window=300,
            )
            budgets = node_budgets(network, config.budget_fraction,
                                   config.num_objects, config.budget_split)
            baseline = simulate_no_cache(
                network, workload, warmup_fraction=config.warmup_fraction
            )
            lru = Simulator(
                network, EDGE, workload, budgets,
                warmup_fraction=config.warmup_fraction,
            ).run()
            preload = {}
            for pop in range(network.num_pops):
                for local in EDGE.cache_locals(network.tree):
                    node = network.gid(pop, local)
                    preload[node] = list(range(int(budgets[node])))
            static = Simulator(
                network, EDGE, workload, budgets,
                warmup_fraction=config.warmup_fraction,
                preload=preload, frozen_caches=True,
            ).run()
            lru_imp = improvements(lru, baseline)
            static_imp = improvements(static, baseline)
            rows.append([locality, lru_imp.latency, static_imp.latency,
                         static_imp.latency - lru_imp.latency])
        return rows

    rows = once(run)
    emit(
        "ablation_temporal_locality",
        format_table(
            ["locality", "LRU latency +%", "static-opt latency +%",
             "LRU shortfall"],
            rows,
            title="Ablation: temporal locality restores LRU's "
                  "near-optimality (paper Section 3)",
        ),
    )
    iid_shortfall = rows[0][3]
    bursty_shortfall = rows[1][3]
    # Locality shrinks (or eliminates) LRU's gap to the static optimum.
    assert bursty_shortfall < iid_shortfall - 3.0
