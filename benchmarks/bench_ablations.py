"""Ablation benches for the design choices called out in DESIGN.md.

1. **NR scope** — the paper's reported ICN-NR numbers are consistent
   with a path-scoped nearest-replica search (our default); a true
   network-wide oracle makes ICN look far better than the paper
   credits.  This bench quantifies that difference.
2. **Replacement policy** — Section 3 claims LRU is near-optimal and
   LFU behaves similarly; this bench compares LRU/LFU/FIFO.
"""

from conftest import SCALE, bench_config, emit
from repro.analysis import format_table
from repro.core import EDGE, ICN_NR, ICN_NR_GLOBAL, run_experiment

REQUESTS = max(1000, int(100_000 * SCALE))


def test_ablation_nr_scope(once):
    def run():
        config = bench_config(topology="abilene", num_requests=REQUESTS)
        outcome = run_experiment(config, (ICN_NR, ICN_NR_GLOBAL, EDGE))
        rows = []
        for name in ("EDGE", "ICN-NR", "ICN-NR-Global"):
            imp = outcome.improvements[name]
            rows.append([name, imp.latency, imp.congestion, imp.origin_load])
        return rows

    rows = once(run)
    emit(
        "ablation_nr_scope",
        format_table(
            ["architecture", "latency %", "congestion %", "origin load %"],
            rows,
            title="Ablation: scoped nearest-replica (paper-consistent) vs "
                  "global oracle",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # The oracle dominates scoped NR, which dominates EDGE.
    assert by_name["ICN-NR-Global"][3] >= by_name["ICN-NR"][3]
    assert by_name["ICN-NR"][1] >= by_name["EDGE"][1]
    # And the oracle's origin-load advantage is dramatic — this is why
    # scoped NR is the paper-consistent default (see DESIGN.md).
    assert by_name["ICN-NR-Global"][3] - by_name["EDGE"][3] > 10.0


def test_ablation_replacement_policies(once):
    def run():
        rows = []
        for policy in ("lru", "lfu", "fifo"):
            config = bench_config(
                topology="abilene", num_requests=REQUESTS, policy=policy
            )
            outcome = run_experiment(config, (ICN_NR, EDGE))
            gap = outcome.gap()
            edge = outcome.improvements["EDGE"]
            rows.append(
                [policy, edge.latency, gap.latency, gap.origin_load]
            )
        return rows

    rows = once(run)
    emit(
        "ablation_policies",
        format_table(
            ["policy", "EDGE latency improvement %",
             "NR-EDGE latency gap %", "NR-EDGE origin gap %"],
            rows,
            title="Ablation: replacement policies (paper: LFU ~= LRU)",
        ),
    )
    by_policy = {row[0]: row for row in rows}
    # LFU close to LRU on the headline gap (qualitatively similar).
    assert abs(by_policy["lfu"][2] - by_policy["lru"][2]) < 8.0
