"""Core engine performance: fast vs reference on the Figure 6 sweep.

Builds every Figure 6 world (topology, network, trace-driven workload,
budgets) once, then times the *simulations* — the no-cache baseline
plus all five baseline architectures per topology — under both engines.
The shared setup is identical work regardless of engine, so it is
measured separately and reported alongside; the headline ``speedup`` is
engine-vs-engine on exactly the Figure 6 request streams.  Outputs are
asserted identical before any number is written.

The report lands in ``BENCH_core.json`` at the repository root so the
perf trajectory (wall-clock, requests/sec, speedup, per-figure
timings) is tracked in version control from run to run.  Phase timings
come from the :class:`repro.obs.PhaseTimer` profiling hook, so the
bench exercises the same instrumentation the observability CLI ships.

Scale with ``REPRO_BENCH_SCALE`` as usual; the committed numbers use
scale 1.0.  The speedup floor asserted here is the PR's acceptance bar
(>= 3x) at full scale, relaxed at smoke scales where per-run fixed
costs (path memoization, cache allocation) eat into the win.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import SCALE, SEED, WORKERS, emit, leaf_scaled_config
from harness import asia_trace_objects, run_topologies
from repro.analysis import sweep_gap
from repro.cache.budget import node_budgets
from repro.core import (
    BASELINE_ARCHITECTURES,
    EDGE,
    ICN_NR,
    Simulator,
    build_network,
    build_workload,
    simulate_no_cache,
)
from repro.core.latency import hop_costs as build_hop_costs
from repro.obs import PhaseTimer, SpanTracker, validate_span_file
from repro.topology import TOPOLOGY_NAMES

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Deterministic span export for the bench (structure + request counts,
#: never timings — those live in BENCH_core.json's phase_seconds).
SPANS_JSONL = Path(__file__).parent / "results" / "bench_core_spans.jsonl"

#: Acceptance floor for fast-vs-reference on the Figure 6 simulations.
FULL_SCALE_SPEEDUP = 3.0
SMOKE_SPEEDUP = 1.5


def _build_worlds():
    """Everything Figure 6 needs, shared by both engines."""
    worlds = []
    for name in TOPOLOGY_NAMES:
        config = leaf_scaled_config(
            name, budget_split="proportional", origin_mode="proportional"
        )
        network = build_network(config)
        workload = build_workload(
            config, network, objects=asia_trace_objects(config)
        )
        costs = build_hop_costs(
            network, config.latency_model, config.core_latency_factor
        )
        budgets = node_budgets(
            network, config.budget_fraction, config.num_objects,
            config.budget_split,
        )
        worlds.append((name, config, network, workload, costs, budgets))
    return worlds


def _simulate_all(worlds, engine):
    """Run the Figure 6 simulations (baseline + architectures) timed."""
    results = {}
    start = time.perf_counter()
    for name, config, network, workload, costs, budgets in worlds:
        per = {
            "NO-CACHE": simulate_no_cache(
                network, workload, costs,
                warmup_fraction=config.warmup_fraction, engine=engine,
            )
        }
        for arch in BASELINE_ARCHITECTURES:
            per[arch.name] = Simulator(
                network, arch, workload, budgets,
                policy=config.policy,
                hop_costs=costs,
                capacity=config.capacity,
                warmup_fraction=config.warmup_fraction,
                engine=engine,
            ).run()
        results[name] = per
    return results, time.perf_counter() - start


def _fingerprint(result):
    return (
        result.num_requests,
        result.total_latency,
        result.max_link_transfers,
        result.total_transfers,
        result.max_origin_load,
        result.total_origin_load,
        result.cache_served,
        result.coop_served,
        result.fallback_served,
    )


def test_core_engine_speedup(once):
    def run():
        timer = PhaseTimer()
        tracker = SpanTracker(SEED)
        bench_span = tracker.open(
            "bench_core_fastpath", "run", scale=SCALE, seed=SEED
        )
        with tracker.span("figure6_setup", "phase") as setup_span:
            with timer.phase("figure6_setup"):
                worlds = _build_worlds()
            setup_span.annotate(topologies=len(worlds))
        setup_seconds = timer.timings["figure6_setup"]
        runs_per_world = len(BASELINE_ARCHITECTURES) + 1
        requests = sum(
            world[1].num_requests * runs_per_world for world in worlds
        )
        bench_span.annotate(requests=requests)

        with tracker.span(
            "figure6_reference", "phase",
            engine="reference", requests=requests,
        ):
            with timer.phase("figure6_reference"):
                reference, ref_seconds = _simulate_all(worlds, "reference")
        with tracker.span(
            "figure6_fast", "phase", engine="fast", requests=requests
        ):
            with timer.phase("figure6_fast"):
                fast, fast_seconds = _simulate_all(worlds, "fast")
        # Differential check at bench scale: every aggregate the two
        # engines produced must coincide exactly.
        for name in reference:
            for arch, result in reference[name].items():
                assert _fingerprint(result) == _fingerprint(
                    fast[name][arch]
                ), (name, arch)

        with tracker.span("figure8a_2pt_fast", "phase", points=2):
            with timer.phase("figure8a_2pt_fast"):
                sweep_gap(
                    "alpha", (0.4, 1.04),
                    lambda a: leaf_scaled_config("abilene", alpha=a),
                    ICN_NR, EDGE, engine="fast", workers=WORKERS,
                )

        tracker.close(bench_span)
        SPANS_JSONL.parent.mkdir(exist_ok=True)
        tracker.write(SPANS_JSONL)
        validate_span_file(SPANS_JSONL)

        return {
            "schema": "bench_core/v1",
            "scale": SCALE,
            "seed": SEED,
            "workers": WORKERS,
            "figure6": {
                "topologies": list(TOPOLOGY_NAMES),
                "architectures": [a.name for a in BASELINE_ARCHITECTURES],
                "simulated_requests": requests,
                "setup_seconds": round(setup_seconds, 3),
                "reference_seconds": round(ref_seconds, 3),
                "fast_seconds": round(fast_seconds, 3),
                "speedup": round(ref_seconds / fast_seconds, 2),
                "end_to_end_speedup": round(
                    (setup_seconds + ref_seconds)
                    / (setup_seconds + fast_seconds),
                    2,
                ),
                "reference_requests_per_second": round(
                    requests / ref_seconds
                ),
                "fast_requests_per_second": round(requests / fast_seconds),
            },
            # Wall-clock phases from the repro.obs profiling hook.
            "phase_seconds": timer.as_dict(),
            "engines_identical": True,
        }

    report = once(run)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    fig6 = report["figure6"]
    emit(
        "bench_core",
        "\n".join(
            [
                "Fast engine vs reference on the Figure 6 baseline sweep",
                f"  scale {report['scale']}, seed {report['seed']}",
                f"  shared setup (workloads, networks): "
                f"{fig6['setup_seconds']}s",
                f"  reference: {fig6['reference_seconds']}s "
                f"({fig6['reference_requests_per_second']} req/s)",
                f"  fast:      {fig6['fast_seconds']}s "
                f"({fig6['fast_requests_per_second']} req/s)",
                f"  speedup:   {fig6['speedup']}x engine-vs-engine "
                f"({fig6['end_to_end_speedup']}x end to end)",
                f"  written to {BENCH_JSON.name}",
            ]
        ),
    )
    floor = FULL_SCALE_SPEEDUP if SCALE >= 1.0 else SMOKE_SPEEDUP
    assert fig6["speedup"] >= floor, (
        f"fast engine speedup {fig6['speedup']}x below the {floor}x floor"
    )


def test_parallel_sweep_matches_serial_figure6():
    """The harness path: worker fan-out must not change a single number."""
    kwargs = dict(
        budget_split="proportional",
        origin_mode="proportional",
        topologies=("abilene", "geant"),
    )
    serial = run_topologies(BASELINE_ARCHITECTURES, engine="fast",
                            workers=0, **kwargs)
    parallel = run_topologies(BASELINE_ARCHITECTURES, engine="fast",
                              workers=2, **kwargs)
    for name in serial:
        assert serial[name].improvements == parallel[name].improvements
