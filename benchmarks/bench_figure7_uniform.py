"""Figure 7: the Figure 6 comparison under uniform budgets.

"Figure 7 shows the latency improvements for the case of uniform budget
assignment across PoPs.  We see no major change in the relative
performances of the different architectures."
"""

from conftest import emit
from harness import improvement_table, max_pairwise_gap, run_topologies
from repro.core import BASELINE_ARCHITECTURES


def test_figure7_uniform_budgets(once):
    outcomes = once(
        run_topologies,
        BASELINE_ARCHITECTURES,
        budget_split="uniform",
        origin_mode="uniform",
    )
    panels = {
        "latency": "(a) query latency improvement %",
        "congestion": "(b) congestion improvement %",
        "origin_load": "(c) origin server load improvement %",
    }
    text = "\n\n".join(
        improvement_table(outcomes, metric, f"Figure 7{title}")
        for metric, title in panels.items()
    )
    text += (
        f"\n\nMax architecture gap: {max_pairwise_gap(outcomes):.2f}%"
    )
    emit("figure7_uniform", text)

    # The paper's claim: provisioning does not change relative ordering.
    for topology, outcome in outcomes.items():
        imp = outcome.improvements
        assert imp["ICN-NR"].latency >= imp["EDGE"].latency - 0.5, topology
        assert imp["ICN-SP"].latency >= imp["EDGE"].latency - 0.5, topology
        assert imp["EDGE-Coop"].latency >= imp["EDGE"].latency - 0.5, topology
