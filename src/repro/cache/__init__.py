"""Cache substrate: replacement policies and provisioning splits."""

from .base import Cache
from .budget import (
    DEFAULT_BUDGET_FRACTION,
    node_budgets,
    proportional_node_budgets,
    total_budget,
    uniform_node_budgets,
)
from .fast import (
    FastFIFO,
    FastInfinite,
    FastLFU,
    FastLRU,
    make_fast_cache,
)
from .fifo import FIFOCache
from .infinite import InfiniteCache
from .lfu import LFUCache
from .lru import LRUCache

POLICIES = {
    "lru": LRUCache,
    "lfu": LFUCache,
    "fifo": FIFOCache,
}


def make_cache(policy: str, capacity: float) -> Cache:
    """Instantiate a bounded cache by policy name ('lru', 'lfu', 'fifo')."""
    try:
        cls = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(capacity)


__all__ = [
    "Cache",
    "DEFAULT_BUDGET_FRACTION",
    "FIFOCache",
    "FastFIFO",
    "FastInfinite",
    "FastLFU",
    "FastLRU",
    "InfiniteCache",
    "LFUCache",
    "LRUCache",
    "POLICIES",
    "make_cache",
    "make_fast_cache",
    "node_budgets",
    "proportional_node_budgets",
    "total_budget",
    "uniform_node_budgets",
]
