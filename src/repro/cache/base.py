"""Cache interface shared by all replacement policies.

Caches store opaque hashable object ids with an optional size (unit size
by default, byte sizes for the heterogeneous-size experiments of
Section 5.1).  ``insert`` reports evictions so the nearest-replica
directory (:mod:`repro.core.routing`) can stay consistent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterator


class Cache(ABC):
    """Abstract size-bounded cache."""

    def __init__(self, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    @abstractmethod
    def lookup(self, obj: Hashable) -> bool:
        """Check for ``obj``, updating both hit counters and policy state."""

    @abstractmethod
    def insert(self, obj: Hashable, size: float = 1.0) -> list[Hashable]:
        """Add ``obj``; return the objects evicted to make room.

        Objects larger than the whole cache are not admitted (and nothing
        is evicted for them).  Re-inserting a cached object refreshes its
        policy state and returns no evictions.
        """

    @abstractmethod
    def __contains__(self, obj: Hashable) -> bool:
        """Check for ``obj`` without updating any state."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached objects."""

    @abstractmethod
    def __iter__(self) -> Iterator[Hashable]:
        """Iterate over cached object ids (order is policy-specific)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all cached objects (hit/miss counters are kept)."""

    @property
    def hit_ratio(self) -> float:
        """Fraction of ``lookup`` calls that hit (0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _record(self, hit: bool) -> bool:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit
