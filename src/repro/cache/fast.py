"""Flat-state cache structs for the fast simulation engine.

The reference policies (:mod:`repro.cache.lru` et al.) are small
classes built on ``OrderedDict`` — ideal for clarity, but the
per-request simulator spends most of its time inside them.  The fast
engine replaces each cache node's state with a struct of preallocated
flat arrays plus one insertion-ordered mapping:

* ``member`` — a ``bytearray`` of length ``num_objects``: O(1)
  membership tests with no hashing (object ids are dense ints);
* ``order`` — a plain ``dict`` keyed by object id whose *insertion
  order* is the eviction order (CPython dicts preserve it); LRU
  refreshes an entry by pop-and-reinsert, FIFO never reorders;
* LFU additionally keeps a flat frequency table and per-frequency
  insertion-ordered buckets, mirroring the reference's O(1)
  frequency-class scheme with LRU tie-breaking.

Every struct reproduces the reference policy's observable behaviour
exactly — same eviction victims in the same order, same state after any
interleaving of ``lookup``/``insert`` — which the differential suite
(``tests/core/test_fastpath_equivalence.py``) pins down engine-to-engine.
Object sizes are global per object id (the simulator never re-inserts an
object with a different size), so sizes live in one shared list instead
of per-node maps.
"""

from __future__ import annotations

__all__ = [
    "FastFIFO",
    "FastInfinite",
    "FastLFU",
    "FastLRU",
    "make_fast_cache",
]


class FastLRU:
    """LRU over a membership bitmap and an insertion-ordered dict."""

    __slots__ = ("capacity", "member", "order", "sizes", "used")

    def __init__(
        self, capacity: float, num_objects: int, sizes: list[float]
    ) -> None:
        self.capacity = capacity
        self.member = bytearray(num_objects)
        self.order: dict[int, None] = {}
        self.sizes = sizes
        self.used = 0.0

    def lookup(self, obj: int) -> bool:
        if self.member[obj]:
            order = self.order
            del order[obj]
            order[obj] = None
            return True
        return False

    def insert(self, obj: int) -> list[int]:
        member = self.member
        order = self.order
        if member[obj]:
            del order[obj]
            order[obj] = None
            return []
        size = self.sizes[obj]
        if size > self.capacity:
            return []
        evicted = []
        used = self.used
        capacity = self.capacity
        while used + size > capacity:
            victim = next(iter(order))
            del order[victim]
            member[victim] = 0
            used -= self.sizes[victim]
            evicted.append(victim)
        order[obj] = None
        member[obj] = 1
        self.used = used + size
        return evicted

    def __contains__(self, obj: int) -> bool:
        return bool(self.member[obj])

    def __len__(self) -> int:
        return len(self.order)


class FastFIFO:
    """FIFO: same layout as LRU, but hits never refresh the order."""

    __slots__ = ("capacity", "member", "order", "sizes", "used")

    def __init__(
        self, capacity: float, num_objects: int, sizes: list[float]
    ) -> None:
        self.capacity = capacity
        self.member = bytearray(num_objects)
        self.order: dict[int, None] = {}
        self.sizes = sizes
        self.used = 0.0

    def lookup(self, obj: int) -> bool:
        return bool(self.member[obj])

    def insert(self, obj: int) -> list[int]:
        member = self.member
        if member[obj]:
            return []
        size = self.sizes[obj]
        if size > self.capacity:
            return []
        order = self.order
        evicted = []
        used = self.used
        capacity = self.capacity
        while used + size > capacity:
            victim = next(iter(order))
            del order[victim]
            member[victim] = 0
            used -= self.sizes[victim]
            evicted.append(victim)
        order[obj] = None
        member[obj] = 1
        self.used = used + size
        return evicted

    def __contains__(self, obj: int) -> bool:
        return bool(self.member[obj])

    def __len__(self) -> int:
        return len(self.order)


class FastLFU:
    """LFU with a flat frequency table and insertion-ordered buckets.

    ``freq`` is a preallocated per-object frequency array (0 = absent);
    ``buckets[f]`` holds the objects at frequency ``f`` in insertion
    order, so eviction pops the least-recently-promoted member of the
    lowest occupied class — exactly the reference's tie-break.
    """

    __slots__ = ("buckets", "capacity", "freq", "min_freq", "sizes", "used")

    def __init__(
        self, capacity: float, num_objects: int, sizes: list[float]
    ) -> None:
        self.capacity = capacity
        self.freq = [0] * num_objects
        self.buckets: dict[int, dict[int, None]] = {}
        self.min_freq = 0
        self.sizes = sizes
        self.used = 0.0

    def _bump(self, obj: int) -> None:
        freq = self.freq[obj]
        buckets = self.buckets
        bucket = buckets[freq]
        del bucket[obj]
        if not bucket:
            del buckets[freq]
            if self.min_freq == freq:
                self.min_freq = freq + 1
        self.freq[obj] = freq + 1
        nxt = buckets.get(freq + 1)
        if nxt is None:
            buckets[freq + 1] = {obj: None}
        else:
            nxt[obj] = None

    def lookup(self, obj: int) -> bool:
        if self.freq[obj]:
            self._bump(obj)
            return True
        return False

    def _evict_one(self) -> int:
        bucket = self.buckets[self.min_freq]
        victim = next(iter(bucket))
        del bucket[victim]
        if not bucket:
            del self.buckets[self.min_freq]
        self.used -= self.sizes[victim]
        self.freq[victim] = 0
        if not self.buckets:
            self.min_freq = 0
        elif self.min_freq not in self.buckets:
            self.min_freq = min(self.buckets)
        return victim

    def insert(self, obj: int) -> list[int]:
        if self.freq[obj]:
            self._bump(obj)
            return []
        size = self.sizes[obj]
        if size > self.capacity:
            return []
        evicted = []
        while self.used + size > self.capacity:
            evicted.append(self._evict_one())
        self.freq[obj] = 1
        bucket = self.buckets.get(1)
        if bucket is None:
            self.buckets[1] = {obj: None}
        else:
            bucket[obj] = None
        self.min_freq = 1
        self.used += size
        return evicted

    def __contains__(self, obj: int) -> bool:
        return bool(self.freq[obj])

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())


class FastInfinite:
    """Unbounded cache: a membership bitmap, nothing else."""

    __slots__ = ("member",)

    def __init__(self, num_objects: int) -> None:
        self.member = bytearray(num_objects)

    def lookup(self, obj: int) -> bool:
        return bool(self.member[obj])

    def insert(self, obj: int) -> list[int]:
        self.member[obj] = 1
        return []

    def __contains__(self, obj: int) -> bool:
        return bool(self.member[obj])

    def __len__(self) -> int:
        return sum(self.member)


_FAST_POLICIES = {
    "lru": FastLRU,
    "lfu": FastLFU,
    "fifo": FastFIFO,
}


def make_fast_cache(
    policy: str, capacity: float, num_objects: int, sizes: list[float]
) -> "FastLRU | FastLFU | FastFIFO":
    """Instantiate flat cache state by policy name ('lru', 'lfu', 'fifo')."""
    try:
        cls = _FAST_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {sorted(_FAST_POLICIES)}"
        ) from None
    return cls(capacity, num_objects, sizes)
