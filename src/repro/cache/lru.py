"""Least-recently-used cache.

LRU is the paper's default replacement policy: "prior work and our own
experiments show that the LRU policy performs near-optimally in practical
scenarios" (Section 3).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterator

from .base import Cache


class LRUCache(Cache):
    """Size-aware LRU cache.

    Stores object sizes; eviction removes least-recently-used entries
    until the new object fits.  With the default unit sizes this is the
    classic count-bounded LRU.
    """

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._entries: OrderedDict[Hashable, float] = OrderedDict()
        self._used = 0.0

    def lookup(self, obj: Hashable) -> bool:
        if obj in self._entries:
            self._entries.move_to_end(obj)
            return self._record(True)
        return self._record(False)

    def insert(self, obj: Hashable, size: float = 1.0) -> list[Hashable]:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if obj in self._entries:
            self._used += size - self._entries[obj]
            self._entries[obj] = size
            self._entries.move_to_end(obj)
            return self._evict_to_fit(exclude=obj)
        if size > self.capacity:
            return []
        evicted = []
        while self._used + size > self.capacity:
            victim, victim_size = self._entries.popitem(last=False)
            self._used -= victim_size
            evicted.append(victim)
        self._entries[obj] = size
        self._used += size
        return evicted

    def _evict_to_fit(self, exclude: Hashable) -> list[Hashable]:
        evicted = []
        while self._used > self.capacity:
            victim = next(iter(self._entries))
            if victim == exclude:
                # The grown object itself no longer fits; drop it.
                pass
            self._used -= self._entries.pop(victim)
            evicted.append(victim)
        return evicted

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0

    @property
    def used(self) -> float:
        """Total size of cached objects."""
        return self._used
