"""Least-frequently-used cache (O(1) frequency-bucket implementation).

The paper notes LFU "yielded qualitatively similar results" to LRU
(Section 3); we provide it so that claim can be checked.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterator

from .base import Cache


class LFUCache(Cache):
    """Size-aware LFU with LRU tie-breaking inside a frequency class."""

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._size: dict[Hashable, float] = {}
        self._freq: dict[Hashable, int] = {}
        # frequency -> insertion-ordered set of objects at that frequency.
        self._buckets: dict[int, OrderedDict[Hashable, None]] = {}
        self._min_freq = 0
        self._used = 0.0

    def lookup(self, obj: Hashable) -> bool:
        if obj in self._size:
            self._bump(obj)
            return self._record(True)
        return self._record(False)

    def insert(self, obj: Hashable, size: float = 1.0) -> list[Hashable]:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if obj in self._size:
            self._used += size - self._size[obj]
            self._size[obj] = size
            self._bump(obj)
            return self._shrink(exclude=obj)
        if size > self.capacity:
            return []
        evicted = []
        while self._used + size > self.capacity:
            evicted.append(self._evict_one())
        self._size[obj] = size
        self._freq[obj] = 1
        self._buckets.setdefault(1, OrderedDict())[obj] = None
        self._min_freq = 1
        self._used += size
        return evicted

    def _bump(self, obj: Hashable) -> None:
        freq = self._freq[obj]
        bucket = self._buckets[freq]
        del bucket[obj]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[obj] = freq + 1
        self._buckets.setdefault(freq + 1, OrderedDict())[obj] = None

    def _evict_one(self) -> Hashable:
        bucket = self._buckets[self._min_freq]
        victim, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_freq]
        self._used -= self._size.pop(victim)
        del self._freq[victim]
        if not self._size:
            self._min_freq = 0
        elif self._min_freq not in self._buckets:
            self._min_freq = min(self._buckets)
        return victim

    def _shrink(self, exclude: Hashable) -> list[Hashable]:
        evicted = []
        while self._used > self.capacity:
            evicted.append(self._evict_one())
        return evicted

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._size

    def __len__(self) -> int:
        return len(self._size)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._size)

    def clear(self) -> None:
        self._size.clear()
        self._freq.clear()
        self._buckets.clear()
        self._min_freq = 0
        self._used = 0.0

    @property
    def used(self) -> float:
        """Total size of cached objects."""
        return self._used

    def frequency(self, obj: Hashable) -> int:
        """Access count of a cached object (0 if absent)."""
        return self._freq.get(obj, 0)
