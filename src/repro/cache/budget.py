"""Cache provisioning policies (Section 4.1, "Cache provisioning").

With ``O`` objects and ``R`` routers, the network-wide cache budget is
``F * R * O`` for a fraction ``F`` (the paper's baseline is F = 5%,
"based roughly on the CDN provisioning we observe").  Two splits:

* **uniform** — every router gets ``F * O`` slots;
* **population-proportional** — each PoP gets a share of the total
  proportional to its metro population, divided equally inside its
  access tree.

Budgets are returned as a per-global-node-id list of slot counts; the
architecture layer decides which of those nodes actually instantiate a
cache (that asymmetry is exactly why EDGE sees roughly half the total
budget of the pervasive designs on binary trees, and why EDGE-Norm
rescales it back).
"""

from __future__ import annotations

from ..topology.network import Network

#: The paper's baseline provisioning fraction (F = 5%).
DEFAULT_BUDGET_FRACTION = 0.05


def total_budget(fraction: float, num_routers: int, num_objects: int) -> float:
    """Network-wide cache budget ``F * R * O`` in object slots."""
    if fraction < 0:
        raise ValueError(f"fraction must be >= 0, got {fraction}")
    return fraction * num_routers * num_objects


def uniform_node_budgets(
    network: Network, fraction: float, num_objects: int
) -> list[float]:
    """Per-node budgets under the uniform split: every router gets F*O."""
    per_node = fraction * num_objects
    if per_node < 0:
        raise ValueError("budget fraction must be >= 0")
    return [per_node] * network.num_nodes


def proportional_node_budgets(
    network: Network, fraction: float, num_objects: int
) -> list[float]:
    """Per-node budgets under the population-proportional split."""
    total = total_budget(fraction, network.num_nodes, num_objects)
    weights = network.pop_topology.population_weights()
    budgets = [0.0] * network.num_nodes
    for pop in range(network.num_pops):
        per_node = total * weights[pop] / network.tree_size
        base = network.root_gid(pop)
        for local in range(network.tree_size):
            budgets[base + local] = per_node
    return budgets


def node_budgets(
    network: Network,
    fraction: float,
    num_objects: int,
    split: str = "proportional",
) -> list[float]:
    """Dispatch on the split policy name ('uniform' or 'proportional')."""
    if split == "uniform":
        return uniform_node_budgets(network, fraction, num_objects)
    if split == "proportional":
        return proportional_node_budgets(network, fraction, num_objects)
    raise ValueError(f"unknown budget split {split!r}")
