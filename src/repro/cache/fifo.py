"""First-in-first-out cache.

Not used by the paper's headline results, but a useful ablation point:
FIFO ignores recency, so comparing it against LRU isolates how much the
Zipf workload's temporal locality matters.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterator

from .base import Cache


class FIFOCache(Cache):
    """Size-aware FIFO cache: eviction order is insertion order."""

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._entries: OrderedDict[Hashable, float] = OrderedDict()
        self._used = 0.0

    def lookup(self, obj: Hashable) -> bool:
        return self._record(obj in self._entries)

    def insert(self, obj: Hashable, size: float = 1.0) -> list[Hashable]:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if obj in self._entries:
            self._used += size - self._entries[obj]
            self._entries[obj] = size
            evicted = []
            while self._used > self.capacity:
                victim, victim_size = self._entries.popitem(last=False)
                self._used -= victim_size
                evicted.append(victim)
            return evicted
        if size > self.capacity:
            return []
        evicted = []
        while self._used + size > self.capacity:
            victim, victim_size = self._entries.popitem(last=False)
            self._used -= victim_size
            evicted.append(victim)
        self._entries[obj] = size
        self._used += size
        return evicted

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0

    @property
    def used(self) -> float:
        """Total size of cached objects."""
        return self._used
