"""Unbounded cache, used for the Inf-Budget reference point of Figure 10
and for the origin stores (a PoP "as an origin server ... has a very
large cache to host all the objects it owns", Section 4.1).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterator

from .base import Cache


class InfiniteCache(Cache):
    """A cache that never evicts."""

    def __init__(self) -> None:
        super().__init__(capacity=math.inf)
        self._entries: dict[Hashable, float] = {}

    def lookup(self, obj: Hashable) -> bool:
        return self._record(obj in self._entries)

    def insert(self, obj: Hashable, size: float = 1.0) -> list[Hashable]:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._entries[obj] = size
        return []

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
