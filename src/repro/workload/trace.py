"""CDN request-log format (Section 2.2, "Dataset").

Each log entry carries the four fields the paper uses: an anonymized
client IP, an anonymized request URL, the object size, and whether the
request was served locally or forwarded.  We serialize one record per
line as tab-separated values with a ``#``-comment header.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

_FIELDS = ("timestamp", "client", "url", "size", "served_locally")

#: Counter mirroring lines dropped by :func:`read_trace` (label
#: ``reason`` distinguishes truncated field counts from unparsable
#: field values).
SKIPPED_LINES_METRIC = "repro_trace_skipped_lines_total"


@dataclass(frozen=True)
class TraceRecord:
    """One CDN log entry."""

    timestamp: float
    client: str
    url: str
    size: int
    served_locally: bool

    def to_line(self) -> str:
        """Serialize as one TSV line."""
        return "\t".join(
            (
                f"{self.timestamp:.3f}",
                self.client,
                self.url,
                str(self.size),
                "1" if self.served_locally else "0",
            )
        )

    @classmethod
    def from_line(cls, line: str) -> TraceRecord:
        """Parse one TSV line (raises ``ValueError`` on malformed input)."""
        parts = line.rstrip("\n").split("\t")
        if len(parts) != len(_FIELDS):
            raise ValueError(f"expected {len(_FIELDS)} fields, got {len(parts)}")
        timestamp, client, url, size, served = parts
        return cls(
            timestamp=float(timestamp),
            client=client,
            url=url,
            size=int(size),
            served_locally=served == "1",
        )


def anonymize(value: str, salt: str = "repro") -> str:
    """Deterministic anonymization: the truncated SHA-256 of salt+value."""
    return hashlib.sha256(f"{salt}:{value}".encode()).hexdigest()[:16]


def write_trace(path: str | Path, records: Iterable[TraceRecord]) -> int:
    """Write records to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# " + "\t".join(_FIELDS) + "\n")
        for record in records:
            fh.write(record.to_line() + "\n")
            count += 1
    return count


def read_trace(
    path: str | Path,
    registry: "MetricsRegistry | None" = None,
    errors: str = "skip",
) -> Iterator[TraceRecord]:
    """Stream records from ``path``, skipping comments and blank lines.

    Real CDN logs are collected from live machines and routinely end in
    a truncated final line or carry the odd corrupted record, so a
    malformed data line is *skipped and counted* rather than aborting
    the stream mid-file (the old behaviour, which lost every record
    after the first bad byte).  Skips are mirrored into ``registry``
    (when given) as ``repro_trace_skipped_lines_total{reason}``, where
    ``reason`` is ``"truncated"`` for a wrong field count and
    ``"malformed"`` for fields that fail to parse.  Pass
    ``errors="raise"`` to restore strict parsing; the ``ValueError``
    then names the offending line number.
    """
    if errors not in ("skip", "raise"):
        raise ValueError(f"errors must be 'skip' or 'raise', got {errors!r}")
    if registry is not None:
        # Pre-register both reasons so a clean file still exports zeros.
        for reason in ("truncated", "malformed"):
            registry.counter(
                SKIPPED_LINES_METRIC,
                help="malformed CDN-log lines skipped by read_trace",
                reason=reason,
            )
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip() or line.startswith("#"):
                continue
            try:
                record = TraceRecord.from_line(line)
            except ValueError as exc:
                if errors == "raise":
                    raise ValueError(f"{path}:{lineno}: {exc}") from exc
                fields = line.rstrip("\n").split("\t")
                reason = (
                    "truncated" if len(fields) != len(_FIELDS) else "malformed"
                )
                if registry is not None:
                    registry.inc(SKIPPED_LINES_METRIC, reason=reason)
                continue
            yield record


def object_ids_by_popularity(
    records: Iterable[TraceRecord],
) -> tuple[np.ndarray, dict[str, int], np.ndarray]:
    """Densify trace URLs into popularity-ranked object ids.

    Returns ``(objects, url_to_id, sizes)`` where id 0 is the most
    requested URL (so ids double as global popularity ranks, matching
    :func:`repro.workload.generator.workload_from_objects`), ``objects``
    is the per-request id sequence in log order, and ``sizes`` holds the
    last observed size per object.
    """
    records = list(records)
    counts = Counter(record.url for record in records)
    ordered = [url for url, _ in counts.most_common()]
    url_to_id = {url: i for i, url in enumerate(ordered)}
    objects = np.fromiter(
        (url_to_id[record.url] for record in records),
        dtype=np.int64,
        count=len(records),
    )
    sizes = np.ones(len(ordered), dtype=np.float64)
    for record in records:
        sizes[url_to_id[record.url]] = record.size
    return objects, url_to_id, sizes
