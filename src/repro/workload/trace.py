"""CDN request-log format (Section 2.2, "Dataset").

Each log entry carries the four fields the paper uses: an anonymized
client IP, an anonymized request URL, the object size, and whether the
request was served locally or forwarded.  We serialize one record per
line as tab-separated values with a ``#``-comment header.
"""

from __future__ import annotations

import hashlib
import math
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

_FIELDS = ("timestamp", "client", "url", "size", "served_locally")

#: Counter mirroring lines dropped by :func:`read_trace` (label
#: ``reason`` distinguishes truncated field counts from unparsable
#: field values).
SKIPPED_LINES_METRIC = "repro_trace_skipped_lines_total"


@dataclass(frozen=True)
class TraceRecord:
    """One CDN log entry."""

    timestamp: float
    client: str
    url: str
    size: int
    served_locally: bool

    def to_line(self) -> str:
        """Serialize as one TSV line."""
        return "\t".join(
            (
                f"{self.timestamp:.3f}",
                self.client,
                self.url,
                str(self.size),
                "1" if self.served_locally else "0",
            )
        )

    @classmethod
    def from_line(cls, line: str) -> TraceRecord:
        """Parse one TSV line (raises ``ValueError`` on malformed input).

        Field *values* are validated, not just parsed: ``float("nan")``
        and ``int("-5")`` both succeed, but a non-finite timestamp or a
        negative size is corrupt log data that would later poison
        size-weighted budgets and inter-arrival math, so both are
        rejected here (and therefore skip-counted by :func:`read_trace`
        under ``reason="malformed"``).
        """
        parts = line.rstrip("\n").split("\t")
        if len(parts) != len(_FIELDS):
            raise ValueError(f"expected {len(_FIELDS)} fields, got {len(parts)}")
        timestamp, client, url, size, served = parts
        parsed_timestamp = float(timestamp)
        if not math.isfinite(parsed_timestamp):
            raise ValueError(f"non-finite timestamp {timestamp!r}")
        parsed_size = int(size)
        if parsed_size < 0:
            raise ValueError(f"negative size {size!r}")
        return cls(
            timestamp=parsed_timestamp,
            client=client,
            url=url,
            size=parsed_size,
            served_locally=served == "1",
        )


def anonymize(value: str, salt: str = "repro") -> str:
    """Deterministic anonymization: the truncated SHA-256 of salt+value."""
    return hashlib.sha256(f"{salt}:{value}".encode()).hexdigest()[:16]


def write_trace(path: str | Path, records: Iterable[TraceRecord]) -> int:
    """Write records to ``path``; returns the number written.

    The write is atomic (tmp file + ``os.replace``, the same pattern as
    :class:`repro.obs.progress.ProgressReporter`): a crash mid-write —
    including one raised by the ``records`` iterable itself — leaves any
    existing file at ``path`` untouched instead of a header-only stub
    that would later read back as a valid empty trace.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    count = 0
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("# " + "\t".join(_FIELDS) + "\n")
            for record in records:
                fh.write(record.to_line() + "\n")
                count += 1
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return count


def read_trace(
    path: str | Path,
    registry: "MetricsRegistry | None" = None,
    errors: str = "skip",
) -> Iterator[TraceRecord]:
    """Stream records from ``path``, skipping comments and blank lines.

    Real CDN logs are collected from live machines and routinely end in
    a truncated final line or carry the odd corrupted record, so a
    malformed data line is *skipped and counted* rather than aborting
    the stream mid-file (the old behaviour, which lost every record
    after the first bad byte).  Skips are mirrored into ``registry``
    (when given) as ``repro_trace_skipped_lines_total{reason}``, where
    ``reason`` is ``"truncated"`` for a wrong field count and
    ``"malformed"`` for fields that fail to parse.  Pass
    ``errors="raise"`` to restore strict parsing; the ``ValueError``
    then names the offending line number.
    """
    if errors not in ("skip", "raise"):
        raise ValueError(f"errors must be 'skip' or 'raise', got {errors!r}")
    if registry is not None:
        # Pre-register both reasons so a clean file still exports zeros.
        for reason in ("truncated", "malformed"):
            registry.counter(
                SKIPPED_LINES_METRIC,
                help="malformed CDN-log lines skipped by read_trace",
                reason=reason,
            )
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            # Strip before the comment test: an indented "  # comment"
            # is a comment, not a truncated record to skip-count.
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                record = TraceRecord.from_line(line)
            except ValueError as exc:
                if errors == "raise":
                    raise ValueError(f"{path}:{lineno}: {exc}") from exc
                fields = line.rstrip("\n").split("\t")
                reason = (
                    "truncated" if len(fields) != len(_FIELDS) else "malformed"
                )
                if registry is not None:
                    registry.inc(SKIPPED_LINES_METRIC, reason=reason)
                continue
            yield record


#: Per-request ids accumulate in int64 blocks of this many entries, so
#: :func:`object_ids_by_popularity` holds at most one partially-filled
#: block of Python overhead at a time.
_ID_CHUNK = 1 << 16


def object_ids_by_popularity(
    records: Iterable[TraceRecord],
) -> tuple[np.ndarray, dict[str, int], np.ndarray]:
    """Densify trace URLs into popularity-ranked object ids.

    Returns ``(objects, url_to_id, sizes)`` where id 0 is the most
    requested URL (so ids double as global popularity ranks, matching
    :func:`repro.workload.generator.workload_from_objects`), ``objects``
    is the per-request id sequence in log order, and ``sizes`` holds the
    last observed size per object.

    The input is consumed in a single pass and records are never
    retained: each record updates per-URL tallies and appends a
    provisional (first-appearance) id to a flat int64 buffer, and the
    popularity ranking is applied to the buffered ids at the end.
    Memory is O(catalog + output), never O(records); a generator input
    works and each record is released as soon as it is processed.
    Ranking ties keep first-appearance order — the same stable order
    ``Counter.most_common`` produced when this function materialized
    the stream.
    """
    first_seen: dict[str, int] = {}
    counts: list[int] = []
    last_size: list[float] = []
    id_chunks: list[np.ndarray] = []
    buf = np.empty(_ID_CHUNK, dtype=np.int64)
    fill = 0
    for record in records:
        pid = first_seen.setdefault(record.url, len(first_seen))
        if pid == len(counts):
            counts.append(0)
            last_size.append(1.0)
        counts[pid] += 1
        last_size[pid] = float(record.size)
        if fill == _ID_CHUNK:
            id_chunks.append(buf)
            buf = np.empty(_ID_CHUNK, dtype=np.int64)
            fill = 0
        buf[fill] = pid
        fill += 1
    id_chunks.append(buf[:fill])
    # Stable descending sort over first-appearance ids == most_common.
    order = sorted(range(len(counts)), key=counts.__getitem__, reverse=True)
    rank_of = np.empty(len(counts), dtype=np.int64)
    rank_of[np.asarray(order, dtype=np.int64)] = np.arange(
        len(counts), dtype=np.int64
    )
    urls = list(first_seen)
    url_to_id = {urls[pid]: rank for rank, pid in enumerate(order)}
    objects = np.concatenate([rank_of[chunk] for chunk in id_chunks])
    sizes = np.asarray(last_size, dtype=np.float64)[order]
    return objects, url_to_id, sizes
