"""Workload substrate: Zipf popularity, spatial skew, traces, CDN logs."""

from .cdn import (
    CONTENT_TYPES,
    OBJECTS_PER_REQUEST,
    REGIONS,
    RegionProfile,
    region_object_stream,
    region_profile,
    synthetic_cdn_trace,
)
from .fitting import (
    RegressionFit,
    fit_zipf_mle,
    fit_zipf_regression,
    rank_frequency,
)
from .generator import (
    Workload,
    assign_origins,
    generate_workload,
    workload_from_objects,
)
from .sizes import (
    DEFAULT_MEDIAN_BYTES,
    lognormal_sizes,
    normalized_sizes,
    unit_sizes,
)
from .spatial import measured_skew, ranks_from_rankings, skewed_rankings
from .stream import (
    DEFAULT_CHUNK_SIZE,
    RequestChunk,
    StreamingWorkload,
    pop_shard,
    region_object_chunks,
    stream_synthetic_cdn_trace,
    stream_trace_objects,
    stream_workload,
    stream_workload_from_objects,
)
from .temporal import (
    FlashCrowdProfile,
    flash_crowd_profile,
    generate_temporal_workload,
    repeat_distance_profile,
    temporal_objects,
)
from .trace import (
    SKIPPED_LINES_METRIC,
    TraceRecord,
    anonymize,
    object_ids_by_popularity,
    read_trace,
    write_trace,
)
from .zipf import SAMPLE_CHUNK, ZipfDistribution

__all__ = [
    "CONTENT_TYPES",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MEDIAN_BYTES",
    "OBJECTS_PER_REQUEST",
    "REGIONS",
    "SAMPLE_CHUNK",
    "FlashCrowdProfile",
    "RegionProfile",
    "RegressionFit",
    "RequestChunk",
    "SKIPPED_LINES_METRIC",
    "StreamingWorkload",
    "TraceRecord",
    "Workload",
    "ZipfDistribution",
    "anonymize",
    "assign_origins",
    "fit_zipf_mle",
    "fit_zipf_regression",
    "flash_crowd_profile",
    "generate_temporal_workload",
    "generate_workload",
    "lognormal_sizes",
    "measured_skew",
    "normalized_sizes",
    "object_ids_by_popularity",
    "pop_shard",
    "rank_frequency",
    "ranks_from_rankings",
    "read_trace",
    "repeat_distance_profile",
    "region_object_chunks",
    "region_object_stream",
    "region_profile",
    "skewed_rankings",
    "stream_synthetic_cdn_trace",
    "stream_trace_objects",
    "stream_workload",
    "stream_workload_from_objects",
    "synthetic_cdn_trace",
    "temporal_objects",
    "unit_sizes",
    "workload_from_objects",
    "write_trace",
]
