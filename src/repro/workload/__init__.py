"""Workload substrate: Zipf popularity, spatial skew, traces, CDN logs."""

from .cdn import (
    OBJECTS_PER_REQUEST,
    REGIONS,
    RegionProfile,
    region_object_stream,
    region_profile,
    synthetic_cdn_trace,
)
from .fitting import (
    RegressionFit,
    fit_zipf_mle,
    fit_zipf_regression,
    rank_frequency,
)
from .generator import (
    Workload,
    assign_origins,
    generate_workload,
    workload_from_objects,
)
from .sizes import (
    DEFAULT_MEDIAN_BYTES,
    lognormal_sizes,
    normalized_sizes,
    unit_sizes,
)
from .spatial import measured_skew, ranks_from_rankings, skewed_rankings
from .temporal import (
    FlashCrowdProfile,
    flash_crowd_profile,
    generate_temporal_workload,
    repeat_distance_profile,
    temporal_objects,
)
from .trace import (
    SKIPPED_LINES_METRIC,
    TraceRecord,
    anonymize,
    object_ids_by_popularity,
    read_trace,
    write_trace,
)
from .zipf import ZipfDistribution

__all__ = [
    "DEFAULT_MEDIAN_BYTES",
    "OBJECTS_PER_REQUEST",
    "REGIONS",
    "FlashCrowdProfile",
    "RegionProfile",
    "RegressionFit",
    "SKIPPED_LINES_METRIC",
    "TraceRecord",
    "Workload",
    "ZipfDistribution",
    "anonymize",
    "assign_origins",
    "fit_zipf_mle",
    "fit_zipf_regression",
    "flash_crowd_profile",
    "generate_temporal_workload",
    "generate_workload",
    "lognormal_sizes",
    "measured_skew",
    "normalized_sizes",
    "object_ids_by_popularity",
    "rank_frequency",
    "ranks_from_rankings",
    "read_trace",
    "repeat_distance_profile",
    "region_object_stream",
    "region_profile",
    "skewed_rankings",
    "synthetic_cdn_trace",
    "temporal_objects",
    "unit_sizes",
    "workload_from_objects",
    "write_trace",
]
