"""Spatial popularity skew across PoPs (Section 5.1).

A skew of 0 means every PoP ranks objects identically (one global
ranking); a skew of 1 means each PoP's ranking is an independent random
permutation ("the most popular object at one location may become the
least popular object at some other location").  Intermediate values blend
the global rank with per-PoP noise.

The paper's skew *metric* is also implemented: with ``r_op`` the rank of
object ``o`` at PoP ``p`` and ``S_o = stdev_p(r_op)``, the measured skew
is ``avg_o(S_o) / O``.
"""

from __future__ import annotations

import numpy as np


def skewed_rankings(
    num_objects: int,
    num_pops: int,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-PoP popularity orderings.

    Returns an ``(num_pops, num_objects)`` array where row ``p`` lists
    object ids from most to least popular at PoP ``p``.  Object ids are
    chosen so that the *global* rank of object ``o`` is ``o`` itself;
    with ``skew=0`` every row is ``[0, 1, 2, ...]``.
    """
    if not 0.0 <= skew <= 1.0:
        raise ValueError(f"skew must be in [0, 1], got {skew}")
    if num_objects < 1 or num_pops < 1:
        raise ValueError("need num_objects >= 1 and num_pops >= 1")
    global_rank = np.arange(num_objects, dtype=np.float64)
    if skew == 0.0:
        base = np.arange(num_objects, dtype=np.int64)
        return np.tile(base, (num_pops, 1))
    rankings = np.empty((num_pops, num_objects), dtype=np.int64)
    for pop in range(num_pops):
        noise = rng.random(num_objects) * num_objects
        keys = (1.0 - skew) * global_rank + skew * noise
        rankings[pop] = np.argsort(keys, kind="stable")
    return rankings


def ranks_from_rankings(rankings: np.ndarray) -> np.ndarray:
    """Invert orderings: ``ranks[p, o]`` is object ``o``'s rank at PoP ``p``."""
    num_pops, num_objects = rankings.shape
    ranks = np.empty_like(rankings)
    cols = np.arange(num_objects)
    for pop in range(num_pops):
        ranks[pop, rankings[pop]] = cols
    return ranks


def measured_skew(rankings: np.ndarray) -> float:
    """The paper's spatial-skew metric: ``avg_o(stdev_p(rank)) / O``."""
    ranks = ranks_from_rankings(rankings)
    num_objects = rankings.shape[1]
    per_object_std = ranks.std(axis=0)
    return float(per_object_std.mean() / num_objects)
