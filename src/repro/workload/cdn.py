"""Synthetic stand-ins for the paper's proprietary CDN request logs.

The paper uses daily logs from three CDN cache clusters (Table 2): US
(1.1M requests, best-fit Zipf 0.99), Europe (3.1M, 0.92), and Asia
(1.8M, 1.04).  Those logs are proprietary, so this module generates
synthetic logs with the *published* marginals: the fitted Zipf exponent,
the request volume (scaled by a single factor so experiments stay
laptop-sized), heavy-tailed object sizes spanning the CDN's mixed
content types, and the four log fields of Section 2.2.  The paper itself
validates this substitution: Table 3 shows best-fit-Zipf synthetic logs
reproduce trace-driven results to within ~1.7%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.lru import LRUCache
from .sizes import lognormal_sizes
from .trace import TraceRecord, anonymize
from .zipf import ZipfDistribution

#: Ratio of distinct objects to requests in the generated catalogs.
OBJECTS_PER_REQUEST = 0.05

#: Content-type labels baked into generated URLs (shared with the
#: chunked log producers in :mod:`repro.workload.stream`).
CONTENT_TYPES = ("text", "image", "video", "software", "misc")


@dataclass(frozen=True)
class RegionProfile:
    """Published per-region statistics from Table 2."""

    name: str
    alpha: float
    num_requests: int


REGIONS: dict[str, RegionProfile] = {
    "us": RegionProfile("us", alpha=0.99, num_requests=1_100_000),
    "europe": RegionProfile("europe", alpha=0.92, num_requests=3_100_000),
    "asia": RegionProfile("asia", alpha=1.04, num_requests=1_800_000),
}


def region_profile(region: str) -> RegionProfile:
    """Look up a region profile by name ('us', 'europe', 'asia')."""
    try:
        return REGIONS[region.lower()]
    except KeyError:
        raise KeyError(
            f"unknown region {region!r}; choose from {sorted(REGIONS)}"
        ) from None


def region_object_stream(
    region: str,
    rng: np.random.Generator,
    scale: float = 1.0,
    num_objects: int | None = None,
) -> tuple[np.ndarray, int]:
    """Just the object-id sequence of a region's log (the simulator input).

    Returns ``(objects, num_objects)`` where ids are global popularity
    ranks (0 = most popular).  ``scale`` multiplies the region's request
    count; the catalog size defaults to ``OBJECTS_PER_REQUEST`` of it.
    """
    profile = region_profile(region)
    num_requests = max(1, int(profile.num_requests * scale))
    if num_objects is None:
        num_objects = max(1, int(num_requests * OBJECTS_PER_REQUEST))
    zipf = ZipfDistribution(profile.alpha, num_objects)
    return zipf.sample(rng, num_requests), num_objects


def synthetic_cdn_trace(
    region: str,
    rng: np.random.Generator,
    scale: float = 1.0,
    num_objects: int | None = None,
    local_cache_fraction: float = 0.05,
    requests_per_second: float = 50.0,
) -> list[TraceRecord]:
    """A full synthetic CDN log with all four fields of Section 2.2.

    The served-locally flag is produced by replaying the stream through
    an LRU sized to ``local_cache_fraction`` of the catalog, mimicking
    the cluster's own cache.
    """
    objects, num_objects = region_object_stream(
        region, rng, scale=scale, num_objects=num_objects
    )
    num_requests = len(objects)
    sizes = np.maximum(1, lognormal_sizes(num_objects, rng)).astype(np.int64)
    content_type = rng.integers(0, len(CONTENT_TYPES), size=num_objects)
    num_clients = max(1, num_requests // 50)
    clients = rng.integers(0, num_clients, size=num_requests)
    gaps = rng.exponential(1.0 / requests_per_second, size=num_requests)
    timestamps = np.cumsum(gaps)
    cluster_cache = LRUCache(capacity=max(1.0, local_cache_fraction * num_objects))
    records = []
    for i in range(num_requests):
        obj = int(objects[i])
        served_locally = cluster_cache.lookup(obj)
        if not served_locally:
            cluster_cache.insert(obj)
        url = (
            f"https://cdn.example/{CONTENT_TYPES[content_type[obj]]}/"
            f"{anonymize(f'{region}-object-{obj}')}"
        )
        records.append(
            TraceRecord(
                timestamp=float(timestamps[i]),
                client=anonymize(f"{region}-client-{int(clients[i])}"),
                url=url,
                size=int(sizes[obj]),
                served_locally=served_locally,
            )
        )
    return records
