"""Synthetic request-stream generation (Section 4.1 setup).

A :class:`Workload` is everything the simulator consumes: one array row
per request (arrival PoP, arrival leaf, object id) plus per-object sizes
and the object→origin-PoP assignment.  Requests arrive at PoPs with
probability proportional to metro population and uniformly at random
among that PoP's access-tree leaves; object popularity is Zipf with
optional spatial skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..topology.network import Network
from .sizes import unit_sizes
from .spatial import skewed_rankings
from .zipf import ZipfDistribution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stream import RequestChunk


@dataclass(frozen=True)
class Workload:
    """A fully materialized request stream over a network.

    ``leaves`` holds tree-*local* leaf indices; combine with ``pops`` via
    ``Network.gid`` to get global node ids.  ``origins`` maps each object
    id to the PoP hosting it.  ``sizes`` is per-object (mean 1 keeps
    budgets comparable across size models).
    """

    num_objects: int
    pops: np.ndarray
    leaves: np.ndarray
    objects: np.ndarray
    sizes: np.ndarray
    origins: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.pops)
        if not (len(self.leaves) == len(self.objects) == n):
            raise ValueError("pops, leaves, and objects must be equally long")
        if len(self.sizes) != self.num_objects:
            raise ValueError("sizes must have one entry per object")
        if len(self.origins) != self.num_objects:
            raise ValueError("origins must have one entry per object")

    @property
    def num_requests(self) -> int:
        """Number of requests in the stream."""
        return len(self.objects)

    def chunks(self, chunk_size: int | None = None) -> "Iterator[RequestChunk]":
        """Iterate the request columns as :class:`~repro.workload.stream.RequestChunk` blocks.

        This is the shared engine-facing protocol with
        :class:`~repro.workload.stream.StreamingWorkload`: the engines
        only ever see chunks, and a materialized workload is simply the
        degenerate one-chunk stream (zero-copy views when
        ``chunk_size`` is ``None``).
        """
        from .stream import RequestChunk  # deferred: stream imports us

        if chunk_size is None:
            yield RequestChunk(
                pops=self.pops, leaves=self.leaves, objects=self.objects
            )
            return
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, self.num_requests, chunk_size):
            stop = min(start + chunk_size, self.num_requests)
            yield RequestChunk(
                pops=self.pops[start:stop],
                leaves=self.leaves[start:stop],
                objects=self.objects[start:stop],
            )


def assign_origins(
    network: Network,
    num_objects: int,
    rng: np.random.Generator,
    mode: str = "proportional",
) -> np.ndarray:
    """Assign each object's origin PoP.

    ``proportional`` (the paper's baseline) hosts a population-
    proportional share of the catalog at each PoP; ``uniform`` spreads it
    evenly ("we also experimented with ... uniform origin assignment and
    found consistent results").
    """
    if mode == "proportional":
        weights = np.asarray(network.pop_topology.population_weights())
    elif mode == "uniform":
        weights = np.full(network.num_pops, 1.0 / network.num_pops)
    else:
        raise ValueError(f"unknown origin assignment mode {mode!r}")
    return rng.choice(network.num_pops, size=num_objects, p=weights).astype(np.int64)


def generate_workload(
    network: Network,
    num_objects: int,
    num_requests: int,
    alpha: float,
    rng: np.random.Generator,
    spatial_skew: float = 0.0,
    sizes: np.ndarray | None = None,
    origin_mode: str = "proportional",
) -> Workload:
    """Generate a synthetic Zipf workload over ``network``."""
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")
    zipf = ZipfDistribution(alpha, num_objects)
    pop_weights = np.asarray(network.pop_topology.population_weights())
    pops = rng.choice(network.num_pops, size=num_requests, p=pop_weights).astype(
        np.int64
    )
    leaves_range = network.tree.leaves
    leaves = rng.integers(
        leaves_range.start, leaves_range.stop, size=num_requests, dtype=np.int64
    )
    ranks = zipf.sample(rng, num_requests)
    if spatial_skew > 0.0:
        rankings = skewed_rankings(num_objects, network.num_pops, spatial_skew, rng)
        objects = rankings[pops, ranks]
    else:
        objects = ranks
    if sizes is None:
        sizes = unit_sizes(num_objects)
    origins = assign_origins(network, num_objects, rng, mode=origin_mode)
    return Workload(
        num_objects=num_objects,
        pops=pops,
        leaves=leaves,
        objects=objects,
        sizes=np.asarray(sizes, dtype=np.float64),
        origins=origins,
    )


def workload_from_objects(
    network: Network,
    objects: np.ndarray,
    num_objects: int,
    rng: np.random.Generator,
    sizes: np.ndarray | None = None,
    origin_mode: str = "proportional",
) -> Workload:
    """Wrap a trace-derived object sequence in arrival and origin models.

    This is the paper's trace-driven mode: the object sequence comes from
    a request log ("we assume that this trace is the universe of all
    requests"), while arrival PoP (population-weighted), arrival leaf
    (uniform), and origins follow the standard setup.
    """
    objects = np.asarray(objects, dtype=np.int64)
    if objects.size and (objects.min() < 0 or objects.max() >= num_objects):
        raise ValueError("object ids out of range")
    num_requests = len(objects)
    pop_weights = np.asarray(network.pop_topology.population_weights())
    pops = rng.choice(network.num_pops, size=num_requests, p=pop_weights).astype(
        np.int64
    )
    leaves_range = network.tree.leaves
    leaves = rng.integers(
        leaves_range.start, leaves_range.stop, size=num_requests, dtype=np.int64
    )
    if sizes is None:
        sizes = unit_sizes(num_objects)
    origins = assign_origins(network, num_objects, rng, mode=origin_mode)
    return Workload(
        num_objects=num_objects,
        pops=pops,
        leaves=leaves,
        objects=objects,
        sizes=np.asarray(sizes, dtype=np.float64),
        origins=origins,
    )
