"""Temporal locality for synthetic request streams.

The paper's synthetic traces are i.i.d. Zipf draws, which discard the
temporal correlation present in real CDN logs (requests for an object
arrive in bursts).  i.i.d. sampling is exactly why our LRU-vs-optimal
ablation shows LRU trailing the static optimum (EXPERIMENTS.md note 5);
this module adds a minimal, well-understood burst model so that claim
can be tested under locality:

With probability ``locality`` a request repeats an object drawn from
the most recent ``window`` requests *at the same PoP* (uniformly over
that window, so recently-requested objects are over-represented exactly
as LRU likes); otherwise it is a fresh Zipf draw.  ``locality = 0``
recovers the i.i.d. model.
"""

from __future__ import annotations

import numpy as np

from ..topology.network import Network
from .generator import Workload, assign_origins
from .sizes import unit_sizes
from .zipf import ZipfDistribution


def temporal_objects(
    pops: np.ndarray,
    num_objects: int,
    alpha: float,
    locality: float,
    window: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-request object ids with PoP-local temporal bursts."""
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    zipf = ZipfDistribution(alpha, num_objects)
    n = len(pops)
    fresh = zipf.sample(rng, n)
    repeat_flags = rng.random(n) < locality
    picks = rng.integers(0, window, size=n)
    objects = np.empty(n, dtype=np.int64)
    history: dict[int, list[int]] = {}
    for i in range(n):
        pop = int(pops[i])
        recent = history.setdefault(pop, [])
        if repeat_flags[i] and recent:
            objects[i] = recent[-1 - (picks[i] % len(recent))]
        else:
            objects[i] = fresh[i]
        recent.append(int(objects[i]))
        if len(recent) > window:
            del recent[: len(recent) - window]
    return objects


def generate_temporal_workload(
    network: Network,
    num_objects: int,
    num_requests: int,
    alpha: float,
    rng: np.random.Generator,
    locality: float = 0.5,
    window: int = 200,
    origin_mode: str = "proportional",
) -> Workload:
    """A workload whose requests exhibit PoP-local temporal bursts."""
    pop_weights = np.asarray(network.pop_topology.population_weights())
    pops = rng.choice(network.num_pops, size=num_requests,
                      p=pop_weights).astype(np.int64)
    leaves_range = network.tree.leaves
    leaves = rng.integers(leaves_range.start, leaves_range.stop,
                          size=num_requests, dtype=np.int64)
    objects = temporal_objects(pops, num_objects, alpha, locality, window,
                               rng)
    return Workload(
        num_objects=num_objects,
        pops=pops,
        leaves=leaves,
        objects=objects,
        sizes=unit_sizes(num_objects),
        origins=assign_origins(network, num_objects, rng, mode=origin_mode),
    )


def repeat_distance_profile(objects: np.ndarray, max_lag: int) -> np.ndarray:
    """Fraction of requests whose previous occurrence is within each lag.

    ``profile[k]`` is the fraction of requests re-referencing an object
    last seen at most ``k+1`` requests ago — a simple stack-distance
    style locality fingerprint used by the tests.
    """
    last_seen: dict[int, int] = {}
    profile = np.zeros(max_lag, dtype=np.float64)
    for i, obj in enumerate(objects):
        previous = last_seen.get(int(obj))
        if previous is not None:
            lag = i - previous
            if lag <= max_lag:
                profile[lag - 1] += 1
        last_seen[int(obj)] = i
    if len(objects):
        profile = np.cumsum(profile) / len(objects)
    return profile
