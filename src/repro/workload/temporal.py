"""Temporal locality for synthetic request streams.

The paper's synthetic traces are i.i.d. Zipf draws, which discard the
temporal correlation present in real CDN logs (requests for an object
arrive in bursts).  i.i.d. sampling is exactly why our LRU-vs-optimal
ablation shows LRU trailing the static optimum (EXPERIMENTS.md note 5);
this module adds a minimal, well-understood burst model so that claim
can be tested under locality:

With probability ``locality`` a request repeats an object drawn from
the most recent ``window`` requests *at the same PoP* (uniformly over
that window, so recently-requested objects are over-represented exactly
as LRU likes); otherwise it is a fresh Zipf draw.  ``locality = 0``
recovers the i.i.d. model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.network import Network
from .generator import Workload, assign_origins
from .sizes import unit_sizes
from .zipf import ZipfDistribution


def temporal_objects(
    pops: np.ndarray,
    num_objects: int,
    alpha: float,
    locality: float,
    window: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-request object ids with PoP-local temporal bursts."""
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    zipf = ZipfDistribution(alpha, num_objects)
    n = len(pops)
    fresh = zipf.sample(rng, n)
    repeat_flags = rng.random(n) < locality
    picks = rng.integers(0, window, size=n)
    objects = np.empty(n, dtype=np.int64)
    history: dict[int, list[int]] = {}
    for i in range(n):
        pop = int(pops[i])
        recent = history.setdefault(pop, [])
        if repeat_flags[i] and recent:
            objects[i] = recent[-1 - (picks[i] % len(recent))]
        else:
            objects[i] = fresh[i]
        recent.append(int(objects[i]))
        if len(recent) > window:
            del recent[: len(recent) - window]
    return objects


def generate_temporal_workload(
    network: Network,
    num_objects: int,
    num_requests: int,
    alpha: float,
    rng: np.random.Generator,
    locality: float = 0.5,
    window: int = 200,
    origin_mode: str = "proportional",
) -> Workload:
    """A workload whose requests exhibit PoP-local temporal bursts."""
    pop_weights = np.asarray(network.pop_topology.population_weights())
    pops = rng.choice(network.num_pops, size=num_requests,
                      p=pop_weights).astype(np.int64)
    leaves_range = network.tree.leaves
    leaves = rng.integers(leaves_range.start, leaves_range.stop,
                          size=num_requests, dtype=np.int64)
    objects = temporal_objects(pops, num_objects, alpha, locality, window,
                               rng)
    return Workload(
        num_objects=num_objects,
        pops=pops,
        leaves=leaves,
        objects=objects,
        sizes=unit_sizes(num_objects),
        origins=assign_origins(network, num_objects, rng, mode=origin_mode),
    )


@dataclass(frozen=True)
class FlashCrowdProfile:
    """A seeded flash-crowd request schedule.

    ``times`` are sorted arrival offsets in ``[0, duration]`` seconds;
    ``objects``/``regions`` give each request's target object and
    originating region.  During the burst, arrivals concentrate around
    ``burst_time``, the ``hot_object`` dominates the object mix, and
    (with ``regional_correlation > 0``) requests concentrate in the
    crowd region — the correlated regional crowd of a viral event.
    """

    times: np.ndarray
    objects: np.ndarray
    regions: np.ndarray
    burst_time: float
    duration: float
    num_objects: int
    num_regions: int
    hot_object: int

    @property
    def num_requests(self) -> int:
        """Number of requests in the schedule."""
        return len(self.times)


def _burst_shape(
    t: np.ndarray, burst_time: float, onset: float, decay: float
) -> np.ndarray:
    """The burst envelope in (0, 1]: exponential ramp-up, then decay."""
    t = np.asarray(t, dtype=np.float64)
    before = np.exp(-(burst_time - t) / onset)
    after = np.exp(-(t - burst_time) / decay)
    return np.where(t <= burst_time, before, after)


def flash_crowd_profile(
    num_requests: int,
    duration: float,
    rng: np.random.Generator,
    burst_time: float | None = None,
    intensity: float = 10.0,
    onset: float | None = None,
    decay: float | None = None,
    num_objects: int = 100,
    alpha: float = 0.8,
    hot_object: int = 0,
    hot_fraction: float = 0.8,
    num_regions: int = 1,
    crowd_region: int = 0,
    regional_correlation: float = 0.0,
) -> FlashCrowdProfile:
    """A seeded thundering-herd schedule around a popularity spike.

    The arrival rate is ``1 + (intensity - 1) * s(t)`` where ``s`` is an
    exponential onset/decay envelope peaking at ``burst_time`` (defaults:
    burst at ``duration / 3``, onset ``duration / 20``, decay
    ``duration / 10``).  Arrival times are drawn by inverse-CDF sampling
    of that rate, so ``intensity`` is the peak-to-baseline rate ratio.

    Each request targets ``hot_object`` with probability
    ``hot_fraction * s(t)`` (the spike's subject), otherwise an i.i.d.
    Zipf(``alpha``) draw; its region is ``crowd_region`` with
    probability ``regional_correlation * s(t)``, otherwise uniform —
    off-burst the stream degenerates to the plain i.i.d. model.

    All draws flow through the injected ``rng``, so one seed yields a
    byte-identical schedule.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if intensity < 1.0:
        raise ValueError(f"intensity must be >= 1, got {intensity}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    if not 0.0 <= regional_correlation <= 1.0:
        raise ValueError(
            f"regional_correlation must be in [0, 1], "
            f"got {regional_correlation}"
        )
    if not 0 <= hot_object < num_objects:
        raise ValueError(f"hot_object {hot_object} outside [0, {num_objects})")
    if num_regions < 1:
        raise ValueError(f"num_regions must be >= 1, got {num_regions}")
    if not 0 <= crowd_region < num_regions:
        raise ValueError(
            f"crowd_region {crowd_region} outside [0, {num_regions})"
        )
    burst = duration / 3.0 if burst_time is None else burst_time
    if not 0.0 <= burst <= duration:
        raise ValueError(f"burst_time {burst} outside [0, {duration}]")
    onset = duration / 20.0 if onset is None else onset
    decay = duration / 10.0 if decay is None else decay
    if onset <= 0 or decay <= 0:
        raise ValueError("onset and decay must be > 0")

    # Inverse-CDF sampling of the time-varying arrival rate on a grid.
    grid = np.linspace(0.0, duration, 4096)
    rate = 1.0 + (intensity - 1.0) * _burst_shape(grid, burst, onset, decay)
    cdf = np.cumsum(rate)
    cdf = (cdf - cdf[0]) / (cdf[-1] - cdf[0])
    times = np.sort(np.interp(rng.random(num_requests), cdf, grid))

    weight = _burst_shape(times, burst, onset, decay)
    zipf = ZipfDistribution(alpha, num_objects).sample(rng, num_requests)
    hot = rng.random(num_requests) < hot_fraction * weight
    objects = np.where(hot, hot_object, zipf).astype(np.int64)
    base_regions = rng.integers(0, num_regions, size=num_requests,
                                dtype=np.int64)
    crowd = rng.random(num_requests) < regional_correlation * weight
    regions = np.where(crowd, crowd_region, base_regions).astype(np.int64)
    return FlashCrowdProfile(
        times=times,
        objects=objects,
        regions=regions,
        burst_time=burst,
        duration=duration,
        num_objects=num_objects,
        num_regions=num_regions,
        hot_object=hot_object,
    )


def repeat_distance_profile(objects: np.ndarray, max_lag: int) -> np.ndarray:
    """Fraction of requests whose previous occurrence is within each lag.

    ``profile[k]`` is the fraction of requests re-referencing an object
    last seen at most ``k+1`` requests ago — a simple stack-distance
    style locality fingerprint used by the tests.
    """
    last_seen: dict[int, int] = {}
    profile = np.zeros(max_lag, dtype=np.float64)
    for i, obj in enumerate(objects):
        previous = last_seen.get(int(obj))
        if previous is not None:
            lag = i - previous
            if lag <= max_lag:
                profile[lag - 1] += 1
        last_seen[int(obj)] = i
    if len(objects):
        profile = np.cumsum(profile) / len(objects)
    return profile
