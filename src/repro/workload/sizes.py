"""Object-size models.

The baseline experiments use unit sizes (the congestion metric counts
*object transfers*, Section 4.1).  Section 5.1 additionally checks
"request streams with heterogeneous object sizes (as observed in the
real traces)" and finds < 1% effect because size and popularity are
uncorrelated — which is exactly how the heterogeneous model here draws
its sizes.
"""

from __future__ import annotations

import numpy as np

#: Rough median web-object size used by the CDN-log generator, in bytes.
DEFAULT_MEDIAN_BYTES = 12_000


def unit_sizes(num_objects: int) -> np.ndarray:
    """All-ones size vector (the baseline model)."""
    if num_objects < 0:
        raise ValueError(f"num_objects must be >= 0, got {num_objects}")
    return np.ones(num_objects, dtype=np.float64)


def lognormal_sizes(
    num_objects: int,
    rng: np.random.Generator,
    median: float = DEFAULT_MEDIAN_BYTES,
    sigma: float = 1.5,
) -> np.ndarray:
    """Heavy-tailed web-like sizes, independent of popularity rank.

    Log-normal with the given median; sigma around 1.5 reproduces the
    orders-of-magnitude spread (small icons to multi-MB binaries) of the
    CDN's mixed content types.
    """
    if num_objects < 0:
        raise ValueError(f"num_objects must be >= 0, got {num_objects}")
    if median <= 0 or sigma <= 0:
        raise ValueError("median and sigma must be positive")
    return rng.lognormal(mean=np.log(median), sigma=sigma, size=num_objects)


def normalized_sizes(sizes: np.ndarray) -> np.ndarray:
    """Rescale so the mean size is 1, keeping cache budgets comparable.

    With mean-1 sizes, a cache of capacity B holds on average B objects,
    so heterogeneous-size runs are directly comparable to unit-size runs
    with the same budget.
    """
    mean = float(np.mean(sizes))
    if mean <= 0:
        raise ValueError("sizes must have positive mean")
    return sizes / mean
