"""Zipf parameter estimation (Figure 1 / Table 2 analysis).

Two estimators over rank-frequency data:

* **MLE** for the truncated discrete Zipf — the estimator used to
  produce the Table 2 exponents and the "best-fit Zipf" synthetic twins
  of Table 3;
* **log-log regression** of frequency on rank — the visual straight-line
  fit of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize


def rank_frequency(objects: np.ndarray) -> np.ndarray:
    """Request counts sorted most-popular-first from an object-id stream."""
    objects = np.asarray(objects)
    if objects.size == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(objects.astype(np.int64))
    counts = counts[counts > 0]
    return np.sort(counts)[::-1]


def fit_zipf_mle(
    counts: np.ndarray,
    num_objects: int | None = None,
    bounds: tuple[float, float] = (1e-3, 5.0),
) -> float:
    """Maximum-likelihood Zipf exponent for rank-frequency ``counts``.

    ``counts[r]`` is the number of requests for the rank-(r+1) object.
    ``num_objects`` sets the truncation of the normalizing constant
    (defaults to the number of observed ranks).

    Degenerate inputs raise :class:`ValueError` instead of returning a
    bound-clipped junk exponent: all-zero counts make the likelihood
    constant (any alpha "fits"), and a single observed rank leaves the
    exponent unidentifiable (the optimizer would ride the search bound).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        raise ValueError("counts must be non-empty")
    if not np.all(np.isfinite(counts)):
        raise ValueError("counts must be finite")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if not np.any(counts > 0):
        raise ValueError(
            "counts are all zero: the Zipf likelihood is constant and "
            "no exponent is identifiable"
        )
    if counts.size < 2:
        raise ValueError(
            "need at least two observed ranks to identify a Zipf exponent"
        )
    n = num_objects if num_objects is not None else counts.size
    if n < counts.size:
        raise ValueError("num_objects must be >= number of observed ranks")
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    log_ranks = np.log(ranks)
    all_log_ranks = np.log(np.arange(1, n + 1, dtype=np.float64))
    total = counts.sum()
    weighted_log_rank = float(np.dot(counts, log_ranks))

    def negative_log_likelihood(alpha: float) -> float:
        # log H_n(alpha) computed stably via logsumexp.
        exponents = -alpha * all_log_ranks
        peak = exponents.max()
        log_harmonic = peak + np.log(np.exp(exponents - peak).sum())
        return alpha * weighted_log_rank + total * log_harmonic

    result = optimize.minimize_scalar(
        negative_log_likelihood, bounds=bounds, method="bounded"
    )
    return float(result.x)


@dataclass(frozen=True)
class RegressionFit:
    """Result of a log-log rank-frequency regression."""

    alpha: float
    intercept: float
    r_squared: float


def fit_zipf_regression(counts: np.ndarray) -> RegressionFit:
    """Least-squares line through ``log(count)`` vs. ``log(rank)``.

    The slope's negation is the Zipf exponent; ``r_squared`` near 1 is
    the paper's "almost linear on a log-log plot" check for Figure 1.
    """
    counts = np.asarray(counts, dtype=np.float64)
    mask = counts > 0
    if mask.sum() < 2:
        raise ValueError("need at least two positive counts")
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)[mask]
    x = np.log(ranks)
    y = np.log(counts[mask])
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = slope * x + intercept
    residual = np.sum((y - predicted) ** 2)
    total = np.sum((y - y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return RegressionFit(
        alpha=float(-slope), intercept=float(intercept), r_squared=float(r_squared)
    )
