"""Truncated Zipf popularity distributions (Section 2.2).

The paper models request popularity as Zipfian: the i-th most popular of
``n`` objects is requested with probability proportional to ``1 / i**alpha``.
Ranks here are **0-indexed** (rank 0 is the most popular object).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

#: Upper bound on uniforms drawn per internal block by :meth:`sample`
#: (8 MB of float64 scratch instead of one request-stream-sized
#: allocation — 800 MB at 100M requests).  Chunked draws are
#: bit-identical to a single ``rng.random(size)``: ``Generator.random``
#: consumes exactly one double per output regardless of block shape,
#: so the uniforms (and the generator's end state) never change.
SAMPLE_CHUNK = 1 << 20


class ZipfDistribution:
    """A Zipf(alpha) distribution truncated to ``num_objects`` ranks."""

    def __init__(self, alpha: float, num_objects: int):
        if num_objects < 1:
            raise ValueError(f"num_objects must be >= 1, got {num_objects}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.num_objects = num_objects
        weights = np.arange(1, num_objects + 1, dtype=np.float64) ** -alpha
        self._probs = weights / weights.sum()
        self._cdf = np.cumsum(self._probs)
        # Guard against float round-off so searchsorted never overflows.
        self._cdf[-1] = 1.0

    @property
    def probabilities(self) -> np.ndarray:
        """Probability of each rank, most popular first (sums to 1)."""
        return self._probs.copy()

    def pmf(self, rank: int) -> float:
        """Request probability of the 0-indexed ``rank``."""
        if not 0 <= rank < self.num_objects:
            raise ValueError(f"rank {rank} out of range [0, {self.num_objects})")
        return float(self._probs[rank])

    def head_mass(self, top_k: int) -> float:
        """Total probability of the ``top_k`` most popular ranks."""
        if top_k <= 0:
            return 0.0
        top_k = min(top_k, self.num_objects)
        return float(self._cdf[top_k - 1])

    def _sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """One bounded inverse-CDF block (the shared sampling kernel)."""
        return np.searchsorted(self._cdf, rng.random(size), side="right").astype(
            np.int64
        )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` ranks by inverse-CDF sampling.

        Uniforms are drawn in :data:`SAMPLE_CHUNK`-bounded blocks so the
        scratch allocation stays fixed no matter how large ``size`` is;
        the returned ranks are bit-identical to a single one-shot draw.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if size <= SAMPLE_CHUNK:
            return self._sample_block(rng, size)
        out = np.empty(size, dtype=np.int64)
        for start in range(0, size, SAMPLE_CHUNK):
            stop = min(start + SAMPLE_CHUNK, size)
            out[start:stop] = self._sample_block(rng, stop - start)
        return out

    def sample_chunks(
        self,
        rng: np.random.Generator,
        size: int,
        chunk_size: int = SAMPLE_CHUNK,
    ) -> Iterator[np.ndarray]:
        """Yield the ranks of ``sample(rng, size)`` in bounded blocks.

        Concatenating the yielded blocks reproduces the one-shot draw
        exactly (same ranks, same generator end state) while holding
        only ``chunk_size`` entries at a time — the O(1)-memory
        producer for streaming replay.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, size, chunk_size):
            yield self._sample_block(rng, min(chunk_size, size - start))

    def expected_unique(self, num_requests: int) -> float:
        """Expected number of distinct objects in ``num_requests`` draws."""
        return float(np.sum(1.0 - (1.0 - self._probs) ** num_requests))

    def __repr__(self) -> str:
        return f"ZipfDistribution(alpha={self.alpha}, num_objects={self.num_objects})"
