"""Chunked, O(1)-memory streaming request pipelines.

The paper's evaluation replays daily CDN logs of 1-3M requests; the
north-star traces run 10-100x beyond that, and a fully materialized
request stream (three int64 columns) costs ~24 bytes per request —
2.4 GB at 100M requests before the engines even start.  This module
restructures every workload producer into fixed-size blocks so a trace
of any length replays under constant memory:

* :class:`RequestChunk` is the engine input unit: one block of
  ``pops`` / ``leaves`` / ``objects`` int64 columns.  Both simulation
  engines iterate ``workload.chunks()`` and fold per-chunk counters
  through the same ``SimulationResult.from_counters`` finalization, so
  a streamed replay is *bit-identical* to a materialized one (pinned
  by the differential suite).
* :class:`StreamingWorkload` pairs a re-iterable chunk factory with
  the per-object tables (``sizes``, ``origins``) that stay O(catalog).

Bit-identity with the one-shot producers rests on two NumPy
``Generator`` facts: drawing a column in blocks consumes the bit
generator exactly as one bulk draw does (``random``, ``integers``,
``choice(p=...)``, and ``exponential`` all verified by the seeded
tests), and ``bit_generator.state`` can be captured and restored.  A
producer therefore runs a *discarding prepass* that consumes the
caller's generator column by column — exactly as the materialized twin
would — capturing the state at each column boundary; the chunk factory
restores an independent generator per column and re-draws the same
values block by block.  Generation happens twice, but memory stays
O(chunk) and the caller's generator ends in the same state as the
one-shot call, so downstream draws never shift.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..cache.lru import LRUCache
from ..topology.network import Network
from .cdn import CONTENT_TYPES, OBJECTS_PER_REQUEST, region_profile
from .generator import assign_origins
from .sizes import lognormal_sizes, unit_sizes
from .spatial import skewed_rankings
from .trace import TraceRecord, anonymize, read_trace
from .zipf import ZipfDistribution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "RequestChunk",
    "StreamingWorkload",
    "pop_shard",
    "region_object_chunks",
    "stream_synthetic_cdn_trace",
    "stream_trace_objects",
    "stream_workload",
    "stream_workload_from_objects",
]

#: Default requests per chunk: 1M entries = 8 MB per int64 column, the
#: sweet spot between per-chunk Python overhead and peak scratch size.
DEFAULT_CHUNK_SIZE = 1 << 20

#: Placeholder seed for generators that are immediately re-pointed at a
#: captured bit-generator state; the seeded stream is never observed.
_STATE_RESTORE_SEED = 0


@dataclass(frozen=True)
class RequestChunk:
    """One fixed-size block of the request stream (the engine input unit)."""

    pops: np.ndarray
    leaves: np.ndarray
    objects: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.pops) == len(self.leaves) == len(self.objects)):
            raise ValueError("chunk columns must be equally long")

    def __len__(self) -> int:
        return len(self.objects)


@dataclass(frozen=True)
class StreamingWorkload:
    """A re-iterable chunked request stream plus its per-object tables.

    Everything the engines need besides the request columns stays
    O(catalog): ``sizes`` and ``origins`` are per-object arrays exactly
    as on :class:`~repro.workload.generator.Workload`.  ``chunk_factory``
    returns a *fresh* iterator of :class:`RequestChunk` blocks each
    call, so one workload can back multiple runs (baseline plus every
    architecture) just like a materialized one.

    ``num_requests`` is ``None`` when the stream length is unknown up
    front (e.g. a PoP-filtered shard built without counting); the
    engines then require ``warmup_fraction == 0`` because the warmup
    boundary is an absolute request index.
    """

    num_objects: int
    sizes: np.ndarray
    origins: np.ndarray
    chunk_factory: Callable[[], Iterator[RequestChunk]] = field(repr=False)
    num_requests: int | None = None

    def chunks(self) -> Iterator[RequestChunk]:
        """A fresh pass over the request stream, block by block."""
        return self.chunk_factory()


def _generator_at(state: dict) -> np.random.Generator:
    """A fresh generator positioned at a captured bit-generator state."""
    gen = np.random.default_rng(_STATE_RESTORE_SEED)
    gen.bit_generator.state = state
    return gen


def _blocks(total: int, chunk_size: int) -> Iterator[int]:
    """Block sizes covering ``total`` requests, ``chunk_size`` at a time."""
    for start in range(0, total, chunk_size):
        yield min(chunk_size, total - start)


def _check_chunk_size(chunk_size: int) -> None:
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")


def stream_workload(
    network: Network,
    num_objects: int,
    num_requests: int,
    alpha: float,
    rng: np.random.Generator,
    spatial_skew: float = 0.0,
    sizes: np.ndarray | None = None,
    origin_mode: str = "proportional",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> StreamingWorkload:
    """Streaming twin of :func:`~repro.workload.generator.generate_workload`.

    Same signature, same seed, same numbers: the chunked stream is
    bit-identical to the materialized workload's columns and the
    caller's ``rng`` finishes in the same state.  Peak memory is
    O(catalog + chunk) instead of O(requests); spatial skew keeps its
    O(objects x PoPs) ranking table, exactly as the one-shot path.
    """
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")
    _check_chunk_size(chunk_size)
    zipf = ZipfDistribution(alpha, num_objects)
    pop_weights = np.asarray(network.pop_topology.population_weights())
    num_pops = network.num_pops
    leaves_range = network.tree.leaves
    # Discarding prepass: consume rng column by column in the exact
    # one-shot order, capturing the state at each column boundary.
    pops_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        rng.choice(num_pops, size=block, p=pop_weights)
    leaves_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        rng.integers(
            leaves_range.start, leaves_range.stop, size=block, dtype=np.int64
        )
    ranks_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        zipf.sample(rng, block)
    if spatial_skew > 0.0:
        rankings = skewed_rankings(num_objects, num_pops, spatial_skew, rng)
    else:
        rankings = None
    if sizes is None:
        sizes = unit_sizes(num_objects)
    origins = assign_origins(network, num_objects, rng, mode=origin_mode)

    def factory() -> Iterator[RequestChunk]:
        g_pops = _generator_at(pops_state)
        g_leaves = _generator_at(leaves_state)
        g_ranks = _generator_at(ranks_state)
        for block in _blocks(num_requests, chunk_size):
            pops = g_pops.choice(num_pops, size=block, p=pop_weights).astype(
                np.int64
            )
            leaves = g_leaves.integers(
                leaves_range.start, leaves_range.stop, size=block,
                dtype=np.int64,
            )
            ranks = zipf.sample(g_ranks, block)
            objects = rankings[pops, ranks] if rankings is not None else ranks
            yield RequestChunk(pops=pops, leaves=leaves, objects=objects)

    return StreamingWorkload(
        num_objects=num_objects,
        sizes=np.asarray(sizes, dtype=np.float64),
        origins=origins,
        chunk_factory=factory,
        num_requests=num_requests,
    )


def stream_workload_from_objects(
    network: Network,
    object_chunks: Callable[[], Iterator[np.ndarray]],
    num_objects: int,
    num_requests: int,
    rng: np.random.Generator,
    sizes: np.ndarray | None = None,
    origin_mode: str = "proportional",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> StreamingWorkload:
    """Streaming twin of :func:`~repro.workload.generator.workload_from_objects`.

    ``object_chunks`` is a re-iterable factory yielding the trace's
    object-id blocks (any block sizes, totalling ``num_requests``);
    arrival PoPs and leaves are drawn per block from the standard
    models, bit-identical to the one-shot wrap of the concatenated
    sequence.  Object ids are range-checked as blocks stream through.
    """
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")
    _check_chunk_size(chunk_size)
    pop_weights = np.asarray(network.pop_topology.population_weights())
    num_pops = network.num_pops
    leaves_range = network.tree.leaves
    pops_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        rng.choice(num_pops, size=block, p=pop_weights)
    leaves_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        rng.integers(
            leaves_range.start, leaves_range.stop, size=block, dtype=np.int64
        )
    if sizes is None:
        sizes = unit_sizes(num_objects)
    origins = assign_origins(network, num_objects, rng, mode=origin_mode)

    def factory() -> Iterator[RequestChunk]:
        g_pops = _generator_at(pops_state)
        g_leaves = _generator_at(leaves_state)
        total = 0
        for raw in object_chunks():
            objects = np.asarray(raw, dtype=np.int64)
            if objects.size and (
                objects.min() < 0 or objects.max() >= num_objects
            ):
                raise ValueError("object ids out of range")
            block = len(objects)
            total += block
            if total > num_requests:
                raise ValueError(
                    f"object stream longer than the declared {num_requests} "
                    "requests"
                )
            pops = g_pops.choice(num_pops, size=block, p=pop_weights).astype(
                np.int64
            )
            leaves = g_leaves.integers(
                leaves_range.start, leaves_range.stop, size=block,
                dtype=np.int64,
            )
            yield RequestChunk(pops=pops, leaves=leaves, objects=objects)
        if total != num_requests:
            raise ValueError(
                f"object stream yielded {total} requests, declared "
                f"{num_requests}"
            )

    return StreamingWorkload(
        num_objects=num_objects,
        sizes=np.asarray(sizes, dtype=np.float64),
        origins=origins,
        chunk_factory=factory,
        num_requests=num_requests,
    )


def pop_shard(
    workload: StreamingWorkload,
    shard: int,
    num_shards: int,
    count: bool = True,
) -> StreamingWorkload:
    """The sub-stream of requests arriving at PoPs of one shard.

    Request order within the shard is preserved (``pop % num_shards ==
    shard`` filtering), so the ``num_shards`` shards partition the
    parent stream exactly: additive counters (e.g. the no-cache
    baseline at ``warmup_fraction=0``) merge back to the whole-stream
    run bit for bit.  With ``count`` the parent stream is consumed once
    up front — O(chunk) memory — so the shard knows its length (and
    therefore supports warmup); pass ``count=False`` to skip that pass
    and leave ``num_requests`` unknown.
    """
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard must be in [0, {num_shards}), got {shard}")
    shard_requests: int | None = None
    if count:
        shard_requests = 0
        for chunk in workload.chunks():
            shard_requests += int(
                np.count_nonzero(chunk.pops % num_shards == shard)
            )

    def factory() -> Iterator[RequestChunk]:
        for chunk in workload.chunks():
            keep = chunk.pops % num_shards == shard
            if not keep.any():
                continue
            yield RequestChunk(
                pops=chunk.pops[keep],
                leaves=chunk.leaves[keep],
                objects=chunk.objects[keep],
            )

    return StreamingWorkload(
        num_objects=workload.num_objects,
        sizes=workload.sizes,
        origins=workload.origins,
        chunk_factory=factory,
        num_requests=shard_requests,
    )


def region_object_chunks(
    region: str,
    rng: np.random.Generator,
    scale: float = 1.0,
    num_objects: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[Callable[[], Iterator[np.ndarray]], int, int]:
    """Chunked twin of :func:`~repro.workload.cdn.region_object_stream`.

    Returns ``(chunk_factory, num_objects, num_requests)``; the
    factory's concatenated blocks equal the one-shot rank array bit for
    bit, and the caller's ``rng`` is consumed exactly as the one-shot
    call would (so follow-on draws never shift).
    """
    _check_chunk_size(chunk_size)
    profile = region_profile(region)
    num_requests = max(1, int(profile.num_requests * scale))
    if num_objects is None:
        num_objects = max(1, int(num_requests * OBJECTS_PER_REQUEST))
    zipf = ZipfDistribution(profile.alpha, num_objects)
    state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        zipf.sample(rng, block)

    def factory() -> Iterator[np.ndarray]:
        return zipf.sample_chunks(
            _generator_at(state), num_requests, chunk_size
        )

    return factory, num_objects, num_requests


def stream_synthetic_cdn_trace(
    region: str,
    rng: np.random.Generator,
    scale: float = 1.0,
    num_objects: int | None = None,
    local_cache_fraction: float = 0.05,
    requests_per_second: float = 50.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[TraceRecord]:
    """Streaming twin of :func:`~repro.workload.cdn.synthetic_cdn_trace`.

    Yields the identical record sequence one record at a time, holding
    only per-object tables plus one block of request-level draws; the
    running timestamp accumulates with the same sequential float64
    additions ``np.cumsum`` performs, so timestamps match bit for bit.
    Feed it straight into :func:`~repro.workload.trace.write_trace` to
    serialize logs far larger than memory.
    """
    _check_chunk_size(chunk_size)
    profile = region_profile(region)
    num_requests = max(1, int(profile.num_requests * scale))
    if num_objects is None:
        num_objects = max(1, int(num_requests * OBJECTS_PER_REQUEST))
    zipf = ZipfDistribution(profile.alpha, num_objects)
    objects_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        zipf.sample(rng, block)
    sizes = np.maximum(1, lognormal_sizes(num_objects, rng)).astype(np.int64)
    content_type = rng.integers(0, len(CONTENT_TYPES), size=num_objects)
    num_clients = max(1, num_requests // 50)
    clients_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        rng.integers(0, num_clients, size=block)
    gaps_state = rng.bit_generator.state
    for block in _blocks(num_requests, chunk_size):
        rng.exponential(1.0 / requests_per_second, size=block)

    urls = {}
    g_objects = _generator_at(objects_state)
    g_clients = _generator_at(clients_state)
    g_gaps = _generator_at(gaps_state)
    cluster_cache = LRUCache(
        capacity=max(1.0, local_cache_fraction * num_objects)
    )
    timestamp = 0.0
    for block in _blocks(num_requests, chunk_size):
        objects = zipf.sample(g_objects, block)
        block_clients = g_clients.integers(0, num_clients, size=block)
        gaps = g_gaps.exponential(1.0 / requests_per_second, size=block)
        gap_list = gaps.tolist()
        for j in range(block):
            obj = int(objects[j])
            served_locally = cluster_cache.lookup(obj)
            if not served_locally:
                cluster_cache.insert(obj)
            url = urls.get(obj)
            if url is None:
                url = (
                    f"https://cdn.example/{CONTENT_TYPES[content_type[obj]]}/"
                    f"{anonymize(f'{region}-object-{obj}')}"
                )
                urls[obj] = url
            timestamp += gap_list[j]
            yield TraceRecord(
                timestamp=timestamp,
                client=anonymize(f"{region}-client-{int(block_clients[j])}"),
                url=url,
                size=int(sizes[obj]),
                served_locally=served_locally,
            )


def stream_trace_objects(
    path: str,
    registry: "MetricsRegistry | None" = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[Callable[[], Iterator[np.ndarray]], dict[str, int], np.ndarray, int]:
    """Two-pass streaming twin of :func:`~repro.workload.trace.object_ids_by_popularity`.

    Pass one streams the file through ``read_trace`` (mirroring skips
    into ``registry``) accumulating only per-URL tallies; the
    popularity ranking is densified from those tallies without ever
    listing the records.  Returns ``(chunk_factory, url_to_id, sizes,
    num_requests)``; each ``chunk_factory()`` call re-reads the file
    and yields the ranked per-request ids in int64 blocks —
    concatenated, they equal the materialized ``objects`` array
    exactly.  Memory is O(catalog + chunk) throughout.
    """
    _check_chunk_size(chunk_size)
    first_seen: dict[str, int] = {}
    counts: list[int] = []
    last_size: list[float] = []
    num_requests = 0
    for record in read_trace(path, registry=registry):
        pid = first_seen.setdefault(record.url, len(first_seen))
        if pid == len(counts):
            counts.append(0)
            last_size.append(1.0)
        counts[pid] += 1
        last_size[pid] = float(record.size)
        num_requests += 1
    order = sorted(range(len(counts)), key=counts.__getitem__, reverse=True)
    rank_list = [0] * len(counts)
    for rank, pid in enumerate(order):
        rank_list[pid] = rank
    rank_of = {url: rank_list[pid] for url, pid in first_seen.items()}
    urls = list(first_seen)
    url_to_id = {urls[pid]: rank for rank, pid in enumerate(order)}
    sizes = np.asarray(last_size, dtype=np.float64)[order]

    def factory() -> Iterator[np.ndarray]:
        # Skips were already counted in pass one; recounting here would
        # double the registry totals.
        buf = np.empty(chunk_size, dtype=np.int64)
        fill = 0
        for record in read_trace(path):
            buf[fill] = rank_of[record.url]
            fill += 1
            if fill == chunk_size:
                yield buf
                buf = np.empty(chunk_size, dtype=np.int64)
                fill = 0
        if fill:
            yield buf[:fill]

    return factory, url_to_id, sizes, num_requests
