"""Deterministic fault injection for the simulated network.

The paper's incremental-deployment story (Section 6) leans on standard
failover machinery — PAC proxy lists, Metalink mirror metadata, mDNS
fallback — and Section 7 argues edge caching retains flood/failure
resilience.  Exercising any of that requires failures richer than the
binary ``set_online`` flag, so a :class:`FaultPlane` attaches to a
:class:`repro.idicn.simnet.SimNet` and injects three hazard classes on
the unicast delivery path:

* **scheduled outages** — clock-driven crash/recovery windows per host
  (``schedule_outage``), evaluated against ``SimNet.clock``;
* **per-call probabilistic faults** — message drops (timeouts) and
  explicit call errors, globally or per destination host;
* **slow responses** — a call occasionally costs extra simulated time
  (the clock advances) before being delivered.

Everything is driven by one seeded PRNG and logged as a sequence of
:class:`FaultEvent` records, so a given seed yields a byte-identical
event sequence (``signature()``) across runs — the property the
determinism tests pin down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

from .simnet import DroppedMessageError, Host, InjectedCallError, SimNet


@dataclass(frozen=True)
class Outage:
    """One scheduled crash window: down for ``start <= clock < end``."""

    host: str
    start: float
    end: float

    def covers(self, now: float) -> bool:
        """Whether the host is inside this window at ``now``."""
        return self.start <= now < self.end


@dataclass(frozen=True)
class HazardWindow:
    """A clock-bounded hazard: ``rate`` applies for ``start <= clock < end``.

    Lets chaos scenarios inject failures only during a flash crowd's
    burst (overload-under-failure) instead of uniformly.  ``host=None``
    applies to every destination; the effective rate at any instant is
    the max of the base rate and every covering window.
    """

    kind: str  # "drop" | "error" | "slow"
    start: float
    end: float
    rate: float
    host: str | None = None

    def covers(self, now: float) -> bool:
        """Whether this window is active at ``now``."""
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the deterministic event log."""

    seq: int
    clock: float
    kind: str  # "drop" | "error" | "slow"
    src: str
    dst: str
    port: int


class FaultPlane:
    """Seeded fault injector for one :class:`SimNet`.

    Construct with the network (or attach later via
    ``net.install_faults``), configure hazards, and run the scenario;
    every injected fault is appended to :attr:`events`.
    """

    def __init__(
        self,
        net: SimNet | None = None,
        seed: int = 0,
        registry: "MetricsRegistry | None" = None,
    ):
        self.net = net
        self.seed = seed
        #: Optional metrics sink: every injected fault also increments
        #: ``repro_fault_injections_total{kind,target}``.  Observation draws
        #: nothing from the PRNG, so the event signature is unchanged.
        self.registry = registry
        self._rng = np.random.default_rng(seed)
        self.drop_rate = 0.0
        self.error_rate = 0.0
        self.slow_rate = 0.0
        self.slow_delay = 1.0
        self._host_drop: dict[str, float] = {}
        self._host_error: dict[str, float] = {}
        self._outages: list[Outage] = []
        self._windows: list[HazardWindow] = []
        self.events: list[FaultEvent] = []
        self.drops = 0
        self.errors = 0
        self.slow_calls = 0
        if net is not None:
            net.install_faults(self)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_drop_rate(self, rate: float, host: str | None = None) -> None:
        """Probability a delivery is silently dropped (per-host overrides
        the global rate for calls to that destination)."""
        _check_rate(rate)
        if host is None:
            self.drop_rate = rate
        else:
            self._host_drop[host] = rate

    def set_error_rate(self, rate: float, host: str | None = None) -> None:
        """Probability a delivery fails with an explicit error."""
        _check_rate(rate)
        if host is None:
            self.error_rate = rate
        else:
            self._host_error[host] = rate

    def set_slow_rate(self, rate: float, delay: float = 1.0) -> None:
        """Probability a delivery costs ``delay`` extra simulated seconds."""
        _check_rate(rate)
        if delay < 0:
            raise ValueError("slow-call delay must be >= 0")
        self.slow_rate = rate
        self.slow_delay = delay

    def schedule_outage(self, host: str, start: float, end: float) -> Outage:
        """Crash ``host`` for clock in ``[start, end)``; returns the window."""
        if end <= start:
            raise ValueError(f"empty outage window [{start}, {end})")
        outage = Outage(host=host, start=start, end=end)
        self._outages.append(outage)
        return outage

    def schedule_hazard(
        self,
        kind: str,
        start: float,
        end: float,
        rate: float,
        host: str | None = None,
    ) -> HazardWindow:
        """Raise the ``kind`` hazard rate to ``rate`` while the clock is
        in ``[start, end)`` (optionally only for calls to ``host``).

        Windows *raise* rates (``max`` with the base rate), so the draw
        count stays one per configured hazard class and the event stream
        remains a pure function of (seed, call/clock sequence).
        """
        if kind not in ("drop", "error", "slow"):
            raise ValueError(f"unknown hazard kind {kind!r}")
        _check_rate(rate)
        if end <= start:
            raise ValueError(f"empty hazard window [{start}, {end})")
        window = HazardWindow(kind=kind, start=start, end=end, rate=rate,
                              host=host)
        self._windows.append(window)
        return window

    # ------------------------------------------------------------------
    # Queries and the delivery hook
    # ------------------------------------------------------------------
    def host_down(self, host: str, now: float) -> bool:
        """Whether ``host`` is inside a scheduled outage at ``now``."""
        return any(o.host == host and o.covers(now) for o in self._outages)

    def before_deliver(self, net: SimNet, src: Host, dst: Host, port: int) -> None:
        """Delivery hook: raise an injected fault or charge a slowdown.

        Hazards are evaluated in a fixed order (drop, error, slow) with
        one PRNG draw per configured hazard, keeping the event stream a
        pure function of (seed, call sequence).
        """
        drop = self._effective_rate(
            "drop", self._host_drop.get(dst.name, self.drop_rate),
            dst.name, net.clock,
        )
        if drop > 0.0 and self._rng.random() < drop:
            self.drops += 1
            self._log(net, "drop", src, dst, port)
            raise DroppedMessageError(
                f"message {src.name!r} -> {dst.name!r}:{port} dropped"
            )
        error = self._effective_rate(
            "error", self._host_error.get(dst.name, self.error_rate),
            dst.name, net.clock,
        )
        if error > 0.0 and self._rng.random() < error:
            self.errors += 1
            self._log(net, "error", src, dst, port)
            raise InjectedCallError(
                f"call {src.name!r} -> {dst.name!r}:{port} failed"
            )
        slow = self._effective_rate("slow", self.slow_rate, dst.name, net.clock)
        if slow > 0.0 and self._rng.random() < slow:
            self.slow_calls += 1
            self._log(net, "slow", src, dst, port)
            net.advance(self.slow_delay)

    def _effective_rate(
        self, kind: str, base: float, dst: str, now: float
    ) -> float:
        """``base`` raised by every hazard window covering ``now``."""
        rate = base
        for window in self._windows:
            if (
                window.kind == kind
                and (window.host is None or window.host == dst)
                and window.covers(now)
            ):
                rate = max(rate, window.rate)
        return rate

    # ------------------------------------------------------------------
    # Determinism accounting
    # ------------------------------------------------------------------
    def _log(self, net: SimNet, kind: str, src: Host, dst: Host, port: int) -> None:
        if self.registry is not None:
            # Registered-at-observe with help text so merged registries
            # carry the family schema (lint rule M901); target hosts are
            # not known up front, so __init__ cannot pre-register.
            self.registry.counter(
                "repro_fault_injections_total",
                help="faults injected by the fault plane",
                kind=kind,
                target=dst.name,
            ).inc()
        self.events.append(
            FaultEvent(
                seq=len(self.events),
                clock=net.clock,
                kind=kind,
                src=src.name,
                dst=dst.name,
                port=port,
            )
        )

    def event_bytes(self) -> bytes:
        """The event log as a canonical byte string."""
        return "\n".join(
            f"{e.seq}\t{e.clock!r}\t{e.kind}\t{e.src}\t{e.dst}\t{e.port}"
            for e in self.events
        ).encode()

    def signature(self) -> str:
        """SHA-256 over the canonical event log (reproducibility check)."""
        return hashlib.sha256(self.event_bytes()).hexdigest()

    @property
    def injected_faults(self) -> int:
        """Total faults injected (drops + errors; slow calls excluded)."""
        return self.drops + self.errors


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
