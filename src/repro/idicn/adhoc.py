"""Ad hoc content sharing (Section 6.2).

The paper prototyped "a simple HTTP proxy (350 lines of Python code) to
expose Chrome browser's cache over the network when the IP address is
link-local": the sharer publishes an mDNS alias for every domain it has
cached content for and serves GETs out of the browser cache.  Consumers
need nothing beyond a Zeroconf stack with mDNS fallback resolution.

:func:`share_scenario` wires up the paper's Alice-and-Bob walkthrough.
"""

from __future__ import annotations

import numpy as np

from . import http
from .client import Browser
from .simnet import HTTP_PORT, Host, SimNet
from .zeroconf import MdnsResponder, claim_link_local_address, is_link_local


class AdHocCacheProxy:
    """Expose a browser's cache to an infrastructure-less subnet."""

    def __init__(self, browser: Browser, subnet: str):
        self.browser = browser
        self.subnet = subnet
        self.host = browser.host
        address = self.host.addresses.get(subnet)
        if address is None or not is_link_local(address):
            raise ValueError(
                "ad hoc sharing requires a link-local address on the subnet"
            )
        self.responder = MdnsResponder(self.host, subnet)
        self.requests_served = 0
        self.host.bind(HTTP_PORT, self._serve)
        self.refresh()

    def refresh(self) -> tuple[str, ...]:
        """(Re)publish an mDNS alias per cached domain; returns them."""
        published = set(self.responder.published_names)
        current = set(self.browser.cached_domains())
        for stale in published - current:
            self.responder.withdraw(stale)
        for domain in current - published:
            self.responder.publish(domain)
        return tuple(sorted(current))

    def _serve(self, host: Host, src: str, payload: object) -> http.HttpResponse:
        if not isinstance(payload, http.HttpRequest):
            raise TypeError("ad hoc proxy only speaks HTTP")
        if payload.method != "GET":
            return http.HttpResponse(status=405, body=b"method not allowed")
        body = self.browser.cache_lookup_by_path(payload.host, payload.path)
        if body is None:
            return http.not_found(
                f"nothing cached for {payload.host}{payload.path}"
            )
        self.requests_served += 1
        byte_range = payload.byte_range()
        if byte_range is not None:
            return http.apply_byte_range(body, byte_range)
        return http.ok(body)


def join_adhoc_network(
    net: SimNet, name: str, subnet: str, rng: np.random.Generator
) -> Host:
    """Create a host and self-assign a link-local address on ``subnet``.

    This is the airplane scenario: no DHCP, no DNS — the host claims a
    169.254/16 address via conflict-probed self-assignment.
    """
    host = net.create_host(name)
    claim_link_local_address(host, subnet, rng)
    return host
