"""Retry with exponential backoff for simulated-network calls.

idICN degrades gracefully instead of failing hard: browsers retry their
proxy, resolvers retry their server before falling back to mDNS, and
proxies retry upstreams before failing over across PAC entries or
Metalink mirrors.  A :class:`RetryPolicy` captures the knobs (attempt
cap, exponential backoff with seeded jitter, per-request time budget)
and a :class:`Retrier` executes calls under one policy while counting
the retries it performed — the honesty counter the resilience
benchmarks report against ``SimNet.messages_attempted``.

Backoff consumes *simulated* time: each delay advances the network
clock, so retries interact correctly with scheduled outage windows and
HTTP freshness lifetimes (a retry storm can age a cache entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .simnet import Host, SimNetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry


@dataclass(frozen=True)
class RetryPolicy:
    """How a caller retries failed network calls.

    ``max_attempts`` bounds total tries (1 = no retries); delays grow as
    ``base_delay * multiplier**retry`` with a uniform ``±jitter``
    fraction applied, and ``budget`` (if set) caps the summed backoff
    per request — once exceeded, the caller gives up early.

    ``fatal_errors`` lists :class:`SimNetError` subclasses that are
    never retried (give up immediately).  The overload scenarios put
    :class:`repro.idicn.simnet.QueueOverflowError` here: retrying into a
    full queue amplifies the very overload that caused the failure.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.25
    budget: float | None = None
    seed: int = 0
    fatal_errors: tuple[type[SimNetError], ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        for exc_type in self.fatal_errors:
            if not (isinstance(exc_type, type)
                    and issubclass(exc_type, SimNetError)):
                raise ValueError(
                    f"fatal_errors entries must be SimNetError subclasses, "
                    f"got {exc_type!r}"
                )
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be >= 0")

    def backoff_delay(self, retry_index: int, rng: np.random.Generator) -> float:
        """The delay before retry ``retry_index`` (0-based), jittered.

        ``rng`` is the caller's seeded generator (anything exposing
        ``random()`` in [0, 1)); the policy never owns a stream, so one
        injected seed drives every retry decision deterministically.
        """
        delay = self.base_delay * self.multiplier**retry_index
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class Retrier:
    """Executes calls under one :class:`RetryPolicy`, counting retries.

    A ``None`` policy is the null retrier: exactly one attempt, zero
    bookkeeping overhead — existing no-fault code paths are unchanged.

    ``registry`` optionally mirrors the local :attr:`retries` /
    :attr:`giveups` counters into ``repro_retry_events_total`` with the
    caller-supplied ``component`` label.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        registry: "MetricsRegistry | None" = None,
        component: str = "retrier",
    ):
        self.policy = policy
        self._rng = np.random.default_rng(policy.seed if policy else 0)
        self.retries = 0
        self.giveups = 0
        self.registry = registry
        self.component = component
        if registry is not None:
            for event in ("retry", "giveup"):
                registry.counter(
                    "repro_retry_events_total",
                    help="retry / give-up outcomes per component",
                    component=component,
                    event=event,
                )

    def call(self, host: Host, address: str, port: int, payload: Any) -> Any:
        """``host.call`` with retries; re-raises the last failure."""
        policy = self.policy
        if policy is None:
            return host.call(address, port, payload)
        spent = 0.0
        last: SimNetError | None = None
        for attempt in range(policy.max_attempts):
            try:
                return host.call(address, port, payload)
            except SimNetError as exc:
                last = exc
                if policy.fatal_errors and isinstance(exc, policy.fatal_errors):
                    break
                if attempt + 1 >= policy.max_attempts:
                    break
                delay = policy.backoff_delay(attempt, self._rng)
                if policy.budget is not None and spent + delay > policy.budget:
                    break
                spent += delay
                host.net.advance(delay)
                self.retries += 1
                if self.registry is not None:
                    self.registry.inc(
                        "repro_retry_events_total",
                        component=self.component,
                        event="retry",
                    )
        self.giveups += 1
        if self.registry is not None:
            self.registry.inc(
                "repro_retry_events_total",
                component=self.component,
                event="giveup",
            )
        assert last is not None
        raise last
