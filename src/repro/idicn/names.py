"""Self-certifying idICN names (Section 6.1).

Names have the form ``L.P`` where ``P`` is a cryptographic hash of the
publisher's public key and ``L`` is a label the publisher assigned.  For
DNS backward compatibility a name is encoded as the domain
``<L>.<P>.idicn.org``; DNS limits labels to 63 characters, which is why
the paper notes digests longer than 63 hex characters (e.g. SHA-512)
cannot be used — we truncate SHA-256 fingerprints to
:data:`FINGERPRINT_CHARS` hex characters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .crypto import PublicKey

#: DNS suffix anchoring the idICN namespace.
IDICN_SUFFIX = "idicn.org"

#: Hex characters of the key fingerprint kept in ``P`` (<= 63 for DNS).
FINGERPRINT_CHARS = 40

_LABEL_RE = re.compile(r"^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$")


class NameError_(ValueError):
    """Raised for malformed idICN names or labels."""


def check_label(label: str) -> str:
    """Validate a DNS label (lowercase LDH, 1-63 chars); returns it."""
    if not _LABEL_RE.match(label):
        raise NameError_(f"invalid DNS label {label!r}")
    return label


@dataclass(frozen=True)
class IcnName:
    """A parsed ``L.P`` name."""

    label: str
    principal: str

    def __post_init__(self) -> None:
        check_label(self.label)
        if not re.fullmatch(r"[0-9a-f]{%d}" % FINGERPRINT_CHARS, self.principal):
            raise NameError_(
                f"principal must be {FINGERPRINT_CHARS} hex chars, "
                f"got {self.principal!r}"
            )

    @property
    def domain(self) -> str:
        """DNS-compatible encoding ``<L>.<P>.idicn.org``."""
        return f"{self.label}.{self.principal}.{IDICN_SUFFIX}"

    @property
    def flat(self) -> str:
        """The flat ``L.P`` form used by the resolution system."""
        return f"{self.label}.{self.principal}"

    def __str__(self) -> str:
        return self.domain


def principal_of(public_key: PublicKey) -> str:
    """The ``P`` component for a publisher key (truncated fingerprint)."""
    return public_key.fingerprint()[:FINGERPRINT_CHARS]


def make_name(label: str, public_key: PublicKey) -> IcnName:
    """Build the self-certifying name for ``label`` under ``public_key``."""
    return IcnName(label=label, principal=principal_of(public_key))


def parse_domain(domain: str) -> IcnName | None:
    """Parse ``<L>.<P>.idicn.org``; None when not an idICN domain."""
    parts = domain.lower().rstrip(".").split(".")
    if len(parts) < 4 or ".".join(parts[-2:]) != IDICN_SUFFIX:
        return None
    principal = parts[-3]
    label = ".".join(parts[:-3])
    try:
        return IcnName(label=label, principal=principal)
    except NameError_:
        return None


def is_idicn_domain(domain: str) -> bool:
    """Whether ``domain`` encodes a valid idICN name."""
    return parse_domain(domain) is not None


def name_matches_key(name: IcnName, public_key: PublicKey) -> bool:
    """Self-certification check: does ``P`` bind to this public key?

    This is the core of the security model — anyone holding the content,
    its signature, and the publisher key can validate the binding
    without trusting the party that delivered it.
    """
    return name.principal == principal_of(public_key)
