"""The idICN name resolution system (Section 6.1).

An SFR-style flat resolver for ``L.P`` names.  Registration is open to
anyone who can produce a signature with ``P``'s private key — the
resolvers "need only check for cryptographic correctness (rather than
rely on any other form of trust)".  Resolution first looks for an exact
``L.P`` match and, failing that, for a ``P`` match; ``P``-level entries
may delegate to a finer-grained resolver (``resolver:<address>``
locations), which the client follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .crypto import KeyPair, PublicKey, sign, verify
from .names import IcnName, principal_of
from .retry import Retrier, RetryPolicy
from .simnet import RESOLVER_PORT, Host, SimNetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

#: Prefix marking a delegation to another resolver instead of content.
DELEGATION_PREFIX = "resolver:"


@dataclass(frozen=True)
class RegisterRequest:
    """A signed registration of locations for a name (or a bare ``P``)."""

    name: str  # flat "L.P", or just "P" for principal-level entries
    locations: tuple[str, ...]
    public_key: str
    signature: str


@dataclass(frozen=True)
class ResolveRequest:
    """A resolution question for a flat ``L.P`` name."""

    name: str


def _registration_payload(name: str, locations: tuple[str, ...]) -> bytes:
    return f"idicn-register:{name}:{','.join(locations)}".encode()


def make_registration(
    name: str, locations: tuple[str, ...], keypair: KeyPair
) -> RegisterRequest:
    """Build a correctly signed registration request."""
    return RegisterRequest(
        name=name,
        locations=locations,
        public_key=keypair.public.to_bytes().decode(),
        signature=sign(_registration_payload(name, locations), keypair),
    )


class NameResolutionSystem:
    """One resolver node of the consortium-hosted ``.idicn.org`` service."""

    def __init__(
        self, host: Host, registry: "MetricsRegistry | None" = None
    ):
        self.host = host
        self._exact: dict[str, tuple[str, ...]] = {}
        self._principal: dict[str, tuple[str, ...]] = {}
        self.registrations = 0
        self.rejected = 0
        self.resolutions = 0
        #: Optional mirror into
        #: ``repro_resolution_events_total{host,event}``.
        self.registry = registry
        if registry is not None:
            for event in ("registration", "rejected", "resolution"):
                registry.counter(
                    "repro_resolution_events_total",
                    help="name-resolution registrations and lookups",
                    host=host.name,
                    event=event,
                )
        host.bind(RESOLVER_PORT, self._serve)

    def _serve(self, host: Host, src: str, payload: object) -> object:
        if isinstance(payload, RegisterRequest):
            return self._register(payload)
        if isinstance(payload, ResolveRequest):
            self.resolutions += 1
            self._obs("resolution")
            return self.lookup(payload.name)
        raise TypeError(f"unexpected resolver payload {type(payload).__name__}")

    def _obs(self, event: str) -> None:
        if self.registry is not None:
            self.registry.inc(
                "repro_resolution_events_total",
                host=self.host.name,
                event=event,
            )

    def _register(self, request: RegisterRequest) -> bool:
        try:
            public = PublicKey.from_bytes(request.public_key.encode())
        except (ValueError, UnicodeDecodeError):
            self.rejected += 1
            self._obs("rejected")
            return False
        principal = request.name.rsplit(".", 1)[-1]
        # Cryptographic correctness: the key must hash to the name's P
        # and the signature must verify under it.
        if principal_of(public) != principal or not verify(
            _registration_payload(request.name, request.locations),
            request.signature,
            public,
        ):
            self.rejected += 1
            self._obs("rejected")
            return False
        self.registrations += 1
        self._obs("registration")
        if "." in request.name:
            self._exact[request.name] = request.locations
        else:
            self._principal[request.name] = request.locations
        return True

    def lookup(self, name: str) -> tuple[str, ...] | None:
        """Exact ``L.P`` match first, then the ``P`` fallback."""
        exact = self._exact.get(name)
        if exact is not None:
            return exact
        principal = name.rsplit(".", 1)[-1]
        return self._principal.get(principal)


class ResolutionClient:
    """Client-side stub: registration plus delegation-following resolve."""

    def __init__(
        self,
        host: Host,
        resolver_address: str,
        retry_policy: RetryPolicy | None = None,
        registry: "MetricsRegistry | None" = None,
    ):
        self.host = host
        self.resolver_address = resolver_address
        self._retrier = Retrier(
            retry_policy,
            registry=registry,
            component=f"resolution-client:{host.name}",
        )

    @property
    def retries(self) -> int:
        """Resolver-call retries performed (0 when the network is healthy)."""
        return self._retrier.retries

    def register(
        self, name: IcnName, locations: tuple[str, ...], keypair: KeyPair
    ) -> bool:
        """Register content locations for ``name`` (signed with ``keypair``)."""
        request = make_registration(name.flat, locations, keypair)
        return self._send(self.resolver_address, request)

    def register_principal(
        self, keypair: KeyPair, locations: tuple[str, ...]
    ) -> bool:
        """Register a ``P``-level entry (e.g. a delegation pointer)."""
        request = make_registration(
            principal_of(keypair.public), locations, keypair
        )
        return self._send(self.resolver_address, request)

    def resolve(self, name: IcnName, max_hops: int = 2) -> tuple[str, ...]:
        """Resolve to content locations, following up to ``max_hops``
        resolver delegations; returns () when unresolvable."""
        address = self.resolver_address
        for _ in range(max_hops + 1):
            try:
                answer = self._retrier.call(
                    self.host, address, RESOLVER_PORT, ResolveRequest(name=name.flat)
                )
            except SimNetError:
                return ()
            if not answer:
                return ()
            delegations = [
                loc for loc in answer if loc.startswith(DELEGATION_PREFIX)
            ]
            if not delegations:
                return tuple(answer)
            address = delegations[0][len(DELEGATION_PREFIX):]
        return ()

    def _send(self, address: str, request: RegisterRequest) -> bool:
        try:
            return bool(self._retrier.call(self.host, address, RESOLVER_PORT, request))
        except SimNetError:
            return False
