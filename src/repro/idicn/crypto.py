"""Pure-Python RSA for idICN's content-oriented security (Section 6.1).

idICN binds names to publishers by hashing the publisher's public key
(self-certifying names) and shipping content signatures in Metalink
metadata.  Only the sign/verify/self-certify semantics matter for the
design, so we implement textbook RSA with SHA-256 hash-then-sign over
Python integers: Miller-Rabin prime generation, e = 65537, and a
deterministic keygen drawing arbitrary-precision integers from a seeded
``np.random.Generator`` byte stream so tests are reproducible.  This is
NOT hardened cryptography (no padding oracle defenses, small default
modulus for speed) and must not be used outside the simulation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

_PUBLIC_EXPONENT = 65537
# Deterministic bases are sufficient for < 3.3 * 10^24 (we also run
# random rounds on top for larger moduli).
_MILLER_RABIN_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def _random_bits(bits: int, rng: np.random.Generator) -> int:
    """A uniform ``bits``-bit integer from the generator's byte stream.

    numpy generators cannot produce arbitrary-precision integers
    directly, so draw whole bytes and truncate to the requested width —
    one seeded stream drives every draw, keeping keygen deterministic.
    """
    nbytes = (bits + 7) // 8
    value = int.from_bytes(rng.bytes(nbytes), "big")
    return value >> (nbytes * 8 - bits)


def _random_range(low: int, high: int, rng: np.random.Generator) -> int:
    """A uniform integer in ``[low, high)`` via rejection sampling."""
    span = high - low
    bits = span.bit_length()
    while True:
        candidate = _random_bits(bits, rng)
        if candidate < span:
            return low + candidate


def _is_probable_prime(
    n: int, rng: np.random.Generator, extra_rounds: int = 8
) -> bool:
    if n < 2:
        return False
    for p in _MILLER_RABIN_BASES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    bases = list(_MILLER_RABIN_BASES)
    bases.extend(_random_range(2, n - 1, rng) for _ in range(extra_rounds))
    for a in bases:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: np.random.Generator) -> int:
    while True:
        candidate = _random_bits(bits, rng) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public key (modulus, exponent)."""

    n: int
    e: int

    def to_bytes(self) -> bytes:
        """Canonical serialization used for self-certifying name hashes."""
        return f"rsa:{self.n:x}:{self.e:x}".encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        """Parse the canonical serialization."""
        kind, n_hex, e_hex = data.decode().split(":")
        if kind != "rsa":
            raise ValueError(f"unknown key type {kind!r}")
        return cls(n=int(n_hex, 16), e=int(e_hex, 16))

    def fingerprint(self) -> str:
        """Hex SHA-256 of the serialized key (the ``P`` in ``L.P`` names)."""
        return sha256_hex(self.to_bytes())


@dataclass(frozen=True)
class KeyPair:
    """An RSA key pair; ``d`` is the private exponent."""

    public: PublicKey
    d: int

    @property
    def n(self) -> int:
        """Modulus, shared with the public key."""
        return self.public.n


def generate_keypair(bits: int = 512, seed: int | None = None) -> KeyPair:
    """Generate an RSA key pair (small default modulus — simulation only).

    Pass ``seed`` for a reproducible pair; ``None`` draws entropy from
    the OS (acceptable here only because key material never feeds the
    trace-driven simulation results).
    """
    if bits < 128:
        raise ValueError("modulus must be at least 128 bits")
    rng = np.random.default_rng(seed)
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, phi)
        return KeyPair(public=PublicKey(n=n, e=_PUBLIC_EXPONENT), d=d)


def _digest_int(data: bytes, n: int) -> int:
    return int.from_bytes(hashlib.sha256(data).digest(), "big") % n


def sign(data: bytes, keypair: KeyPair) -> str:
    """Hex RSA signature over the SHA-256 digest of ``data``."""
    digest = _digest_int(data, keypair.n)
    return format(pow(digest, keypair.d, keypair.n), "x")


def verify(data: bytes, signature: str, public: PublicKey) -> bool:
    """Check ``signature`` against ``data`` under ``public``."""
    try:
        sig_int = int(signature, 16)
    except (TypeError, ValueError):
        return False
    if not 0 <= sig_int < public.n:
        return False
    return pow(sig_int, public.e, public.n) == _digest_int(data, public.n)
