"""Pending-interest coalescing and the graceful-degradation ladder.

NDN/CCNx routers collapse concurrent requests for the same name into
one upstream fetch through the Pending Interest Table; the idICN
argument (Section 7) is that edge proxies retain this flood resilience.
This module gives the proxies that machinery plus the overload policy
that drives the degradation ladder:

1. **coalesce** — a request for a name whose fetch is already in flight
   joins the :class:`PendingInterestTable` entry and is served from the
   single upstream result (positive or negative) without touching the
   upstream;
2. **serve-stale** — past the ``stale_depth`` queue threshold a stale
   cached copy is served immediately (RFC 7234 Warning 110) instead of
   being revalidated upstream;
3. **shed** — past ``shed_depth`` the request is refused outright with
   503 + Retry-After, pushing the load out of the burst.

Our network core serializes handlers, so "in flight" is expressed on
the virtual clock: a PIT entry recorded at ``t`` coalesces every
request arriving within its ``window`` (the per-entry timeout).  Entries
past their window expire on contact; the table itself is bounded
(``capacity``, FIFO eviction) — an unbounded PIT would be an unbounded
wait (lint rule R601).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .simnet import HostQueue, LinkSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

#: Events mirrored into ``repro_idicn_pit_events_total{host,event}``.
_PIT_EVENTS = ("recorded", "coalesced", "negative_coalesced", "expired")


@dataclass
class PitEntry:
    """One pending interest: a name fetch and its fan-out window.

    ``result`` is whatever the owner stored for waiters (a cache entry,
    a ``(content, metalink)`` pair, ...); ``None`` marks a *negative*
    entry — the upstream fetch failed, and joiners inherit the failure
    instead of hammering the dead upstream.
    """

    name: str
    started_at: float
    expires_at: float
    result: object | None
    waiters: int = 0


class PendingInterestTable:
    """A bounded PIT keyed by flat name, on the virtual clock.

    ``join`` returns the live entry for a name (bumping its waiter
    count) or ``None`` when the caller must perform the upstream fetch
    itself and ``record`` the outcome.
    """

    def __init__(
        self,
        window: float = 0.5,
        capacity: int = 1024,
        host: str = "",
        registry: "MetricsRegistry | None" = None,
    ):
        if window <= 0:
            raise ValueError("PIT window must be > 0")
        if capacity < 1:
            raise ValueError("PIT capacity must be >= 1")
        self.window = window
        self.capacity = capacity
        self.host = host
        self._entries: dict[str, PitEntry] = {}
        self.recorded = 0
        self.coalesced = 0
        self.negative_coalesced = 0
        self.expired = 0
        #: Optional mirror into
        #: ``repro_idicn_pit_events_total{host,event}``.
        self.registry = registry
        if registry is not None:
            for event in _PIT_EVENTS:
                registry.counter(
                    "repro_idicn_pit_events_total",
                    help="pending-interest coalescing outcomes per host",
                    host=host,
                    event=event,
                )

    def _obs(self, event: str) -> None:
        if self.registry is not None:
            self.registry.inc(
                "repro_idicn_pit_events_total", host=self.host, event=event
            )

    def join(self, name: str, now: float) -> PitEntry | None:
        """The live entry for ``name`` at ``now``, or None (caller fetches)."""
        entry = self._entries.get(name)
        if entry is None:
            return None
        if now > entry.expires_at:
            # Per-entry timeout: the pending interest lapsed before this
            # request arrived; drop it and fetch fresh.
            del self._entries[name]
            self.expired += 1
            self._obs("expired")
            return None
        entry.waiters += 1
        if entry.result is None:
            self.negative_coalesced += 1
            self._obs("negative_coalesced")
        else:
            self.coalesced += 1
            self._obs("coalesced")
        return entry

    def record(self, name: str, now: float, result: object | None) -> PitEntry:
        """Record a completed fetch (``result=None`` = negative) at ``now``."""
        if name not in self._entries and len(self._entries) >= self.capacity:
            # FIFO-evict the oldest pending interest; counted as expired
            # since its fan-out window is cut short.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.expired += 1
            self._obs("expired")
        entry = PitEntry(
            name=name,
            started_at=now,
            expires_at=now + self.window,
            result=result,
        )
        self._entries[name] = entry
        self.recorded += 1
        self._obs("recorded")
        return entry

    @property
    def live_entries(self) -> int:
        """Entries currently in the table (including lapsed, un-touched ones)."""
        return len(self._entries)


@dataclass(frozen=True)
class AdmissionControl:
    """Queue-depth thresholds driving the degradation ladder.

    Depth at or below ``stale_depth`` is normal operation; in
    ``(stale_depth, shed_depth]`` stale cached copies are served without
    upstream revalidation (Warning 110, reason ``overload``); above
    ``shed_depth`` requests are shed with 503 + ``Retry-After:
    retry_after``.
    """

    stale_depth: int = 8
    shed_depth: int = 32
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.stale_depth < 0:
            raise ValueError("stale_depth must be >= 0")
        if self.shed_depth < self.stale_depth:
            raise ValueError("shed_depth must be >= stale_depth")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be > 0")

    def level(self, depth: int) -> str:
        """The ladder rung for ``depth``: ``"ok"``/``"stale"``/``"shed"``."""
        if depth > self.shed_depth:
            return "shed"
        if depth > self.stale_depth:
            return "stale"
        return "ok"


@dataclass(frozen=True)
class OverloadPolicy:
    """Every event-driven-mode knob, bundled for ``build_deployment``.

    ``coalesce=False`` disables the PIT (the bench's ablation arm);
    ``admission=None`` disables the stale/shed rungs while keeping
    queues and coalescing.  ``link`` attaches costs to the backbone
    subnet; ``rp_cache_capacity`` bounds the reverse proxy's content
    cache so crowds actually reach the origin.
    """

    coalesce: bool = True
    pit_window: float = 0.5
    pit_capacity: int = 1024
    admission: AdmissionControl | None = AdmissionControl()
    queue_capacity: int = 128
    queue_concurrency: int = 1
    service_time: float = 0.002
    link: LinkSpec | None = None
    rp_cache_capacity: int | None = None

    def pit_for(
        self, host: str, registry: "MetricsRegistry | None" = None
    ) -> PendingInterestTable | None:
        """A PIT for ``host`` per this policy (None when coalescing is off)."""
        if not self.coalesce:
            return None
        return PendingInterestTable(
            window=self.pit_window,
            capacity=self.pit_capacity,
            host=host,
            registry=registry,
        )

    def queue_for(
        self, host: str, registry: "MetricsRegistry | None" = None
    ) -> HostQueue:
        """A bounded request queue for ``host`` per this policy."""
        return HostQueue(
            capacity=self.queue_capacity,
            concurrency=self.queue_concurrency,
            service_time=self.service_time,
            host=host,
            registry=registry,
        )


# Re-exported for callers configuring links through this module.
__all__ = [
    "AdmissionControl",
    "LinkSpec",
    "OverloadPolicy",
    "PendingInterestTable",
    "PitEntry",
]
