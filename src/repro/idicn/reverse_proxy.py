"""Reverse proxy: the content provider's idICN front end (Section 6).

The reverse proxy (the paper prototyped it as a Metalink plugin for
Apache Traffic Server) does three jobs:

* **publishing** (steps P1/P2): when the origin publishes a label, the
  reverse proxy mints the self-certifying name, builds and signs the
  Metalink description, registers the name with the idICN resolution
  system, and adds a backward-compatibility record to DNS;
* **serving** (steps 4-6): answers requests for ``L.P`` names from its
  cache, fetching from the origin on a miss, and attaches the Metalink
  metadata to every response;
* **mirrors**: advertises configured mirror locations in the metadata.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cache.lru import LRUCache
from . import http
from .crypto import KeyPair
from .metalink import METALINK_HEADER, Metalink, build_metalink
from .names import IcnName, make_name, parse_domain
from .origin import OriginServer  # noqa: F401  (documented collaborator)
from .overload import PendingInterestTable
from .resolution import ResolutionClient
from .retry import Retrier, RetryPolicy
from .simnet import HTTP_PORT, Host, SimNetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry


class ReverseProxy:
    """The provider-side proxy that makes an origin idICN-capable."""

    def __init__(
        self,
        host: Host,
        origin_address: str,
        keypair: KeyPair,
        resolver: ResolutionClient | None = None,
        dns_register: "callable | None" = None,
        mirrors: tuple[str, ...] = (),
        max_age: float | None = None,
        retry_policy: RetryPolicy | None = None,
        registry: "MetricsRegistry | None" = None,
        pit: PendingInterestTable | None = None,
        cache_capacity: int | None = None,
    ):
        self.host = host
        self.origin_address = origin_address
        self.keypair = keypair
        self.resolver = resolver
        self.dns_register = dns_register
        self.mirrors = mirrors
        #: Optional pending-interest table: a thundering herd of cache
        #: misses for one name collapses onto a single origin fetch.
        self.pit = pit
        #: Optional bound on the content cache (LRU); ``None`` keeps the
        #: historical cache-everything behaviour.
        self._cache_index = (
            LRUCache(capacity=cache_capacity)
            if cache_capacity is not None
            else None
        )
        self._retrier = Retrier(
            retry_policy,
            registry=registry,
            component=f"reverse-proxy:{host.name}",
        )
        #: Optional mirror into
        #: ``repro_reverse_proxy_events_total{host,event}``.
        self.registry = registry
        if registry is not None:
            for event in ("request_served", "origin_fetch"):
                registry.counter(
                    "repro_reverse_proxy_events_total",
                    help="reverse-proxy serving and origin-fetch volume",
                    host=host.name,
                    event=event,
                )
        #: Freshness lifetime advertised via Cache-Control (None = no
        #: expiry; downstream proxies may serve the copy forever).
        self.max_age = max_age
        # flat name -> (content, metalink); the paper's "fresh copy".
        self._cache: dict[str, tuple[bytes, Metalink]] = {}
        # flat name -> completion time of the fetch that produced the
        # cached copy (drives arrival-time visibility in event mode).
        self._fetched_at: dict[str, float] = {}
        self._labels: dict[str, str] = {}  # flat name -> origin label
        self.published: dict[str, IcnName] = {}
        self.origin_fetches = 0
        self.requests_served = 0
        #: Requests served from a pending-interest entry instead of a
        #: fresh origin fetch.
        self.coalesced = 0
        host.bind(HTTP_PORT, self._serve)

    # ------------------------------------------------------------------
    # Bounded-cache plumbing (event-driven mode)
    # ------------------------------------------------------------------
    def _cache_get(
        self, flat: str, arrival: float | None = None
    ) -> tuple[bytes, Metalink] | None:
        if self._cache_index is not None and not self._cache_index.lookup(flat):
            return None
        entry = self._cache.get(flat)
        if (
            entry is not None
            and arrival is not None
            and self._fetched_at.get(flat, 0.0) > arrival
        ):
            # The copy landed after this request arrived: from the
            # request's point of view it was still pending, so treat it
            # as a miss and let the PIT absorb the thundering herd.
            return None
        return entry

    def _cache_put(
        self,
        flat: str,
        entry: tuple[bytes, Metalink],
        stamp: float | None = None,
    ) -> None:
        # ``stamp`` is when the producing fetch completed (defaults to
        # now); coalesced serves pass the original completion time so
        # the copy's visibility horizon is not dragged forward.
        self._fetched_at[flat] = (
            self.host.net.clock if stamp is None else stamp
        )
        if self._cache_index is not None:
            for victim in self._cache_index.insert(flat):
                self._cache.pop(victim, None)
            if flat not in self._cache_index:
                return
        self._cache[flat] = entry

    def _request_arrival(self) -> float:
        """When the request being served arrived (lags the clock under
        backlog); the serialized clock without a bounded queue."""
        queue = self.host.queue
        if queue is not None and queue.last_arrival is not None:
            return queue.last_arrival
        return self.host.net.clock

    def _obs(self, event: str) -> None:
        if self.registry is not None:
            self.registry.inc(
                "repro_reverse_proxy_events_total",
                host=self.host.name,
                event=event,
            )

    # ------------------------------------------------------------------
    # Publishing (steps P1 and P2)
    # ------------------------------------------------------------------
    def publish(self, label: str) -> IcnName:
        """Publish the origin's ``label`` into the idICN namespace.

        Fetches the content, signs it, registers ``L.P`` with the name
        resolution system and (for backward compatibility) DNS, and
        caches the signed copy.  Returns the minted name.
        """
        content = self._fetch_origin(label)
        if content is None:
            raise LookupError(f"origin has no content for label {label!r}")
        name = make_name(label, self.keypair.public)
        metalink = build_metalink(name, content, self.keypair, mirrors=self.mirrors)
        self._cache_put(name.flat, (content, metalink))
        self._labels[name.flat] = label
        self.published[label] = name
        location = f"http://{self.host.address}/{name.flat}"
        if self.resolver is not None:
            registered = self.resolver.register(name, (location,), self.keypair)
            if not registered:
                raise RuntimeError(f"name registration rejected for {name}")
        if self.dns_register is not None:
            self.dns_register(name.domain, self.host.address)
        return name

    # ------------------------------------------------------------------
    # Serving (steps 4-6)
    # ------------------------------------------------------------------
    def _serve(self, host: Host, src: str, payload: object) -> http.HttpResponse:
        if not isinstance(payload, http.HttpRequest):
            raise TypeError("reverse proxy only speaks HTTP")
        if payload.method != "GET":
            return http.HttpResponse(status=405, body=b"method not allowed")
        flat = payload.path.lstrip("/")
        if not flat:
            # DNS backward compatibility (Section 6.1): legacy clients
            # resolve <L>.<P>.idicn.org straight to this proxy and GET
            # "/"; recover the flat name from the Host header.
            name = parse_domain(payload.host)
            if name is not None:
                flat = name.flat
        arrival = self._request_arrival()
        entry = self._cache_get(flat, arrival)
        if entry is None:
            # Cache miss: route to the origin (step 5) if we know the label.
            label = self._labels.get(flat)
            if label is None:
                return http.not_found(f"unknown name {flat!r}")
            joined = (
                self.pit.join(flat, arrival)
                if self.pit is not None
                else None
            )
            if joined is not None:
                # A fetch for this name is already pending: fan out.
                result = joined.result
                if not isinstance(result, tuple):
                    return http.bad_gateway(
                        f"origin fetch pending for {label!r} failed"
                    )
                entry = result
                self.coalesced += 1
                self._cache_put(flat, entry, stamp=joined.started_at)
            else:
                content = self._fetch_origin(label)
                if content is None:
                    if self.pit is not None:
                        self.pit.record(flat, self.host.net.clock, None)
                    return http.bad_gateway(f"origin lost label {label!r}")
                name = make_name(label, self.keypair.public)
                metalink = build_metalink(
                    name, content, self.keypair, mirrors=self.mirrors
                )
                entry = (content, metalink)
                if self.pit is not None:
                    self.pit.record(flat, self.host.net.clock, entry)
                self._cache_put(flat, entry)
        content, metalink = entry
        self.requests_served += 1
        self._obs("request_served")
        # Conditional revalidation: a proxy holding a stale copy asks
        # "has <etag> changed?" and gets a cheap 304 when it has not.
        etag = metalink.content_hash
        if payload.header("if-none-match") == etag:
            return self._decorate(
                http.HttpResponse(status=304), metalink, etag
            )
        byte_range = payload.byte_range()
        if byte_range is not None:
            response = http.apply_byte_range(content, byte_range)
        else:
            response = http.ok(content)
        return self._decorate(response, metalink, etag)

    def _decorate(
        self, response: http.HttpResponse, metalink: Metalink, etag: str
    ) -> http.HttpResponse:
        response = response.with_header(METALINK_HEADER, metalink.to_xml())
        response = response.with_header("etag", etag)
        if self.max_age is not None:
            response = response.with_header(
                "cache-control", f"max-age={self.max_age:g}"
            )
        return response

    def invalidate(self, label: str) -> None:
        """Drop the cached copy of ``label`` (forces an origin re-fetch)."""
        # The LRU index entry (if any) may linger; _cache_get treats a
        # missing content entry as a miss regardless.
        name = self.published.get(label)
        if name is not None:
            self._cache.pop(name.flat, None)
            self._fetched_at.pop(name.flat, None)

    def _fetch_origin(self, label: str) -> bytes | None:
        try:
            response = self._retrier.call(
                self.host,
                self.origin_address,
                HTTP_PORT,
                http.get(f"http://origin/{label}"),
            )
        except SimNetError:
            return None
        if not response.ok:
            return None
        self.origin_fetches += 1
        self._obs("origin_fetch")
        return response.body
