"""Edge proxy: the AD-deployed caching proxy (Figure 11, steps 2-4, 7).

Clients are auto-configured (WPAD) to send HTTP requests through this
proxy.  For idICN names the proxy serves a *fresh* cached copy
immediately ("the cache responds immediately if it has a fresh copy of
the requested object"), otherwise resolves the name (step 3), fetches
from the reverse proxy or a mirror (step 4), **authenticates the content
using the enclosed signatures** (step 7), caches it, and responds.
Legacy (non-idICN) domains are proxied via DNS with plain LRU caching
and no verification.

Freshness follows HTTP semantics: upstream responses may carry
``cache-control: max-age=N`` and an ``etag``; a stale entry is
revalidated with a conditional GET (``if-none-match``), where a 304
renews the entry without a body transfer.  Revalidation failures fall
back to serving the stale copy — an AD losing backbone connectivity
keeps serving what it has.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..cache.lru import LRUCache
from . import http
from .dns import DnsClient
from .metalink import METALINK_HEADER, Metalink, verify_metalink
from .names import IcnName, name_matches_key, parse_domain
from .crypto import PublicKey
from .overload import AdmissionControl, PendingInterestTable, PitEntry
from .resolution import ResolutionClient
from .retry import Retrier, RetryPolicy
from .simnet import HTTP_PORT, Host, SimNetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

_MAX_AGE_RE = re.compile(r"max-age=([0-9.]+)")

#: Events the proxy mirrors into ``repro_proxy_events_total{host,event}``.
_PROXY_EVENTS = (
    "hit",
    "miss",
    "revalidation",
    "revalidation_304",
    "verification_failure",
    "mirror_failover",
    "stale_served",
    "shed",
)

#: Why a stale entry was served, mirrored into
#: ``repro_idicn_stale_served_total{host,reason}``: ``failover`` = every
#: upstream was unreachable, ``overload`` = the degradation ladder chose
#: stale over an upstream revalidation.
_STALE_REASONS = ("failover", "overload")


@dataclass(frozen=True)
class CacheEntry:
    """One cached object with its verification and freshness metadata."""

    body: bytes
    metalink_xml: str | None
    etag: str | None
    fetched_at: float
    max_age: float | None
    location: str | None  # upstream URL for revalidation

    def is_fresh(self, now: float) -> bool:
        """Whether the entry is still within its freshness lifetime."""
        if self.max_age is None:
            return True
        return (now - self.fetched_at) <= self.max_age


def _parse_max_age(response: http.HttpResponse) -> float | None:
    value = response.header("cache-control")
    if value is None:
        return None
    match = _MAX_AGE_RE.search(value)
    return float(match.group(1)) if match else None


class EdgeProxy:
    """A caching, verifying HTTP proxy for one administrative domain."""

    def __init__(
        self,
        host: Host,
        resolver: ResolutionClient | None = None,
        dns: DnsClient | None = None,
        capacity: int = 1024,
        retry_policy: RetryPolicy | None = None,
        registry: "MetricsRegistry | None" = None,
        pit: PendingInterestTable | None = None,
        admission: AdmissionControl | None = None,
    ):
        self.host = host
        self.resolver = resolver
        self.dns = dns
        self._cache = LRUCache(capacity=capacity)
        self._store: dict[str, CacheEntry] = {}
        self._retrier = Retrier(
            retry_policy, registry=registry, component=f"proxy:{host.name}"
        )
        #: Optional pending-interest table: concurrent fetches for one
        #: name coalesce onto a single upstream request (see
        #: :mod:`repro.idicn.overload`); ``None`` = no coalescing.
        self.pit = pit
        #: Optional queue-depth thresholds for the stale/shed rungs of
        #: the degradation ladder; ``None`` = never degrade.
        self.admission = admission
        #: Optional metrics sink mirroring the local counters below
        #: into ``repro_proxy_events_total{host,event}``; the events
        #: are pre-registered so an idle proxy still exports zeros.
        self.registry = registry
        if registry is not None:
            for event in _PROXY_EVENTS:
                registry.counter(
                    "repro_proxy_events_total",
                    help="edge-proxy cache and verification outcomes",
                    host=host.name,
                    event=event,
                )
            for reason in _STALE_REASONS:
                registry.counter(
                    "repro_idicn_stale_served_total",
                    help="stale responses served, by degradation reason",
                    host=host.name,
                    reason=reason,
                )
        self.hits = 0
        self.misses = 0
        self.revalidations = 0
        self.revalidations_304 = 0
        self.verification_failures = 0
        #: Requests served from a non-primary source after the primary
        #: location failed (Metalink mirror failover).
        self.mirror_failovers = 0
        #: Stale entries served, for any reason (aggregate of
        #: :attr:`stale_reasons`).
        self.stale_served = 0
        #: Stale serves split by why: ``failover`` (upstream dead) vs
        #: ``overload`` (ladder skipped revalidation).
        self.stale_reasons = {reason: 0 for reason in _STALE_REASONS}
        #: Requests answered from a pending-interest entry instead of a
        #: new upstream fetch (``negative_``: the entry was a failure).
        self.coalesced = 0
        self.negative_coalesced = 0
        #: Requests refused with 503 + Retry-After (top ladder rung).
        self.shed = 0
        host.bind(HTTP_PORT, self._serve)

    @property
    def retries(self) -> int:
        """Upstream-call retries performed (0 when the network is healthy)."""
        return self._retrier.retries

    def _obs(self, event: str) -> None:
        """Mirror one counted event into the registry (when attached)."""
        if self.registry is not None:
            self.registry.inc(
                "repro_proxy_events_total", host=self.host.name, event=event
            )

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _serve(self, host: Host, src: str, payload: object) -> http.HttpResponse:
        if not isinstance(payload, http.HttpRequest):
            raise TypeError("edge proxy only speaks HTTP")
        if payload.method != "GET":
            return http.HttpResponse(status=405, body=b"method not allowed")
        level = self._overload_level()
        if level == "shed":
            # Top rung of the ladder: refuse before any cache work.
            self.shed += 1
            self._obs("shed")
            return http.service_unavailable(self.admission.retry_after)
        overloaded = level == "stale"
        name = parse_domain(payload.host)
        if name is not None:
            return self._serve_idicn(name, payload, overloaded)
        return self._serve_legacy(payload, overloaded)

    def _overload_level(self) -> str:
        """The ladder rung for the queue depth seen at admission."""
        if self.admission is None:
            return "ok"
        queue = self.host.queue
        if queue is None:
            return "ok"
        return self.admission.level(queue.last_depth)

    def _serve_idicn(
        self, name: IcnName, request: http.HttpRequest,
        overloaded: bool = False,
    ) -> http.HttpResponse:
        key = f"icn:{name.flat}"
        arrival = self._request_arrival()
        cached = self._lookup(key, name, arrival, overloaded=overloaded)
        if cached is not None:
            entry, stale = cached
            return self._respond(entry, request, stale=stale)
        # Miss: join an in-flight fetch for the same name if one is
        # pending; a single upstream request fans out to every waiter.
        joined = self._pit_join(key, arrival)
        if joined is not None:
            result = joined.result
            if not isinstance(result, CacheEntry):
                # Negative entry: the pending fetch already failed.
                return http.bad_gateway(
                    f"no verifiable copy of {name.flat} (pending fetch failed)"
                )
            self._insert(key, result)
            return self._respond(result, request)
        if self.resolver is None:
            return http.bad_gateway("no resolver configured")
        locations = self.resolver.resolve(name)
        tried: list[str] = list(locations)
        index = 0
        while index < len(tried):
            location = tried[index]
            index += 1
            entry = self._fetch_and_verify(name, location)
            if entry is None:
                continue
            if index > 1:
                # Served from a fallback source: the primary location
                # was down, unverifiable, or unreachable.
                self.mirror_failovers += 1
                self._obs("mirror_failover")
            # Discover additional mirrors from the metadata itself.
            if entry.metalink_xml is not None:
                try:
                    mirrors = Metalink.from_xml(entry.metalink_xml).mirrors
                except ValueError:
                    mirrors = ()
                for mirror in mirrors:
                    if mirror not in tried:
                        tried.append(mirror)
            self._insert(key, entry)
            self._pit_record(key, entry)
            return self._respond(entry, request)
        self._pit_record(key, None)
        return http.bad_gateway(f"no verifiable copy of {name.flat}")

    def _serve_legacy(
        self, request: http.HttpRequest, overloaded: bool = False
    ) -> http.HttpResponse:
        key = f"url:{request.host}{request.path}"
        cached = self._lookup(key, None, self._request_arrival(),
                              overloaded=overloaded)
        if cached is not None:
            entry, stale = cached
            return self._respond(entry, request, stale=stale)
        if self.dns is None:
            return http.bad_gateway("no DNS configured")
        address = self.dns.resolve(request.host)
        if address is None:
            return http.bad_gateway(f"cannot resolve {request.host!r}")
        try:
            upstream = self._retrier.call(
                self.host, address, HTTP_PORT, http.HttpRequest("GET", request.url)
            )
        except SimNetError:
            return http.bad_gateway(f"upstream {request.host!r} unreachable")
        if not upstream.ok:
            return upstream
        entry = CacheEntry(
            body=upstream.body,
            metalink_xml=upstream.header(METALINK_HEADER),
            etag=upstream.header("etag"),
            fetched_at=self.host.net.clock,
            max_age=_parse_max_age(upstream),
            location=f"http://{address}{request.path}",
        )
        self._insert(key, entry)
        return self._respond(entry, request)

    # ------------------------------------------------------------------
    # Fetch + verify (steps 4 and 7)
    # ------------------------------------------------------------------
    def _fetch_and_verify(
        self, name: IcnName, location: str,
        conditional_etag: str | None = None,
    ) -> CacheEntry | None:
        try:
            server, path = http.split_url(location)
        except ValueError:
            return None
        request = http.get(f"http://{server}{path}")
        if conditional_etag is not None:
            request = request.with_header("if-none-match", conditional_etag)
        try:
            response = self._retrier.call(self.host, server, HTTP_PORT, request)
        except SimNetError:
            return None
        if response.status == 304:
            # Caller renews the existing entry; signal with a marker.
            return CacheEntry(
                body=b"", metalink_xml=None, etag=conditional_etag,
                fetched_at=self.host.net.clock,
                max_age=_parse_max_age(response), location=location,
            )
        if not response.ok:
            return None
        metalink_xml = response.header(METALINK_HEADER)
        if metalink_xml is None:
            self.verification_failures += 1
            self._obs("verification_failure")
            return None
        try:
            metalink = Metalink.from_xml(metalink_xml)
            publisher = PublicKey.from_bytes(metalink.publisher_key.encode())
        except (ValueError, UnicodeDecodeError):
            self.verification_failures += 1
            self._obs("verification_failure")
            return None
        if (
            metalink.name != name.flat
            or not name_matches_key(name, publisher)
            or not verify_metalink(metalink, response.body)
        ):
            self.verification_failures += 1
            self._obs("verification_failure")
            return None
        return CacheEntry(
            body=response.body,
            metalink_xml=metalink_xml,
            etag=response.header("etag", metalink.content_hash),
            fetched_at=self.host.net.clock,
            max_age=_parse_max_age(response),
            location=location,
        )

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _lookup(
        self, key: str, name: IcnName | None, now: float,
        overloaded: bool = False,
    ) -> tuple[CacheEntry, bool] | None:
        """A servable cached entry and whether it is being served stale.

        ``now`` is the *arrival* time of the request being served.  Under
        backlog it lags the serialized clock, so freshness is evaluated
        as the request would have seen it — a copy fetched after this
        request arrived did not exist yet from its point of view, which
        is what routes thundering-herd members through the PIT.
        """
        if not self._cache.lookup(key):
            self.misses += 1
            self._obs("miss")
            return None
        entry = self._store[key]
        if entry.fetched_at > now:
            # The cached copy landed after this request arrived: in a
            # concurrent fabric it would have been pending during that
            # fetch, so treat it as a miss and let the PIT absorb it.
            self.misses += 1
            self._obs("miss")
            return None
        if entry.is_fresh(now):
            self.hits += 1
            self._obs("hit")
            return entry, False
        if overloaded:
            # Middle rung of the ladder: under load a stale copy beats
            # an upstream revalidation round-trip.
            self._serve_stale("overload")
            return entry, True
        # Stale: revalidate with a conditional GET where possible; a
        # pending revalidation for the same key is joined, not repeated.
        self.revalidations += 1
        self._obs("revalidation")
        joined = self._pit_join(key, now)
        fetched = joined is None
        renewed: CacheEntry | None = None
        if not fetched:
            result = joined.result
            renewed = result if isinstance(result, CacheEntry) else None
        elif entry.location is not None and name is not None:
            renewed = self._fetch_and_verify(
                name, entry.location, conditional_etag=entry.etag
            )
        elif entry.location is not None:
            renewed = self._revalidate_legacy(entry)
        if renewed is None:
            # Upstream unreachable: serve the stale copy rather than
            # fail, flagging it per RFC 7234 (Warning: 110).
            if fetched and entry.location is not None:
                self._pit_record(key, None)
            self._serve_stale("failover")
            return entry, True
        if renewed.body == b"" and renewed.etag == entry.etag:
            self.revalidations_304 += 1
            self._obs("revalidation_304")
            entry = replace(entry, fetched_at=renewed.fetched_at)
        else:
            entry = renewed
        if fetched:
            self._pit_record(key, entry)
        self._store[key] = entry
        self.hits += 1
        self._obs("hit")
        return entry, False

    def _serve_stale(self, reason: str) -> None:
        """Count one stale serve under ``reason`` (failover/overload)."""
        self.hits += 1
        self.stale_served += 1
        self.stale_reasons[reason] += 1
        self._obs("hit")
        self._obs("stale_served")
        if self.registry is not None:
            self.registry.inc(
                "repro_idicn_stale_served_total",
                host=self.host.name,
                reason=reason,
            )

    def _request_arrival(self) -> float:
        """When the request being served arrived.

        With a bounded queue this is the admission arrival time (it lags
        the serialized clock by the backlog); without one, the clock.
        """
        queue = self.host.queue
        if queue is not None and queue.last_arrival is not None:
            return queue.last_arrival
        return self.host.net.clock

    def _pit_join(self, key: str, now: float) -> PitEntry | None:
        """Join a live pending interest for ``key``, counting the outcome."""
        if self.pit is None:
            return None
        entry = self.pit.join(key, now)
        if entry is None:
            return None
        if entry.result is None:
            self.negative_coalesced += 1
        else:
            self.coalesced += 1
        return entry

    def _pit_record(self, key: str, result: CacheEntry | None) -> None:
        """Open a fan-out window for the completed fetch of ``key``."""
        if self.pit is not None:
            self.pit.record(key, self.host.net.clock, result)

    def _revalidate_legacy(self, entry: CacheEntry) -> CacheEntry | None:
        try:
            server, path = http.split_url(entry.location)
            request = http.get(entry.location)
            if entry.etag is not None:
                request = request.with_header("if-none-match", entry.etag)
            response = self._retrier.call(self.host, server, HTTP_PORT, request)
        except (ValueError, SimNetError):
            return None
        if response.status == 304:
            return CacheEntry(
                body=b"", metalink_xml=None, etag=entry.etag,
                fetched_at=self.host.net.clock,
                max_age=_parse_max_age(response), location=entry.location,
            )
        if not response.ok:
            return None
        return CacheEntry(
            body=response.body,
            metalink_xml=response.header(METALINK_HEADER),
            etag=response.header("etag"),
            fetched_at=self.host.net.clock,
            max_age=_parse_max_age(response),
            location=entry.location,
        )

    def _insert(self, key: str, entry: CacheEntry) -> None:
        for victim in self._cache.insert(key):
            self._store.pop(victim, None)
        if key in self._cache:
            self._store[key] = entry

    def _respond(
        self, entry: CacheEntry, request: http.HttpRequest, stale: bool = False
    ) -> http.HttpResponse:
        byte_range = request.byte_range()
        if byte_range is not None:
            response = http.apply_byte_range(entry.body, byte_range)
        else:
            response = http.ok(entry.body)
        if entry.metalink_xml is not None:
            response = response.with_header(METALINK_HEADER,
                                            entry.metalink_xml)
        if stale:
            response = http.mark_stale(response)
        return response

    @property
    def cached_objects(self) -> int:
        """Number of objects currently cached."""
        return len(self._cache)
