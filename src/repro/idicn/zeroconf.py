"""Zero Configuration Networking (Section 6.2, ad hoc mode).

Two pieces, mirroring the Zeroconf stack the paper leans on:

* **link-local addressing** — a host on an infrastructure-less subnet
  self-assigns a random ``169.254.x.y`` address, probing for conflicts
  (the ARP probe of RFC 3927) and retrying on collision;
* **mDNS** — distributed name publishing and resolution over subnet
  multicast using the familiar DNS query interface, used when no
  unicast DNS server is configured.
"""

from __future__ import annotations

import numpy as np

from .dns import DnsQuery
from .simnet import ARP_PORT, MDNS_PORT, AddressInUseError, Host

#: RFC 3927 link-local prefix.
LINK_LOCAL_PREFIX = "169.254"


def is_link_local(address: str) -> bool:
    """Whether an address is in the 169.254/16 link-local range."""
    return address.startswith(LINK_LOCAL_PREFIX + ".")


def _probe_in_use(host: Host, subnet: str, address: str) -> bool:
    """ARP-style probe: does any host on the subnet claim ``address``?"""
    replies = host.multicast(subnet, ARP_PORT, address)
    return any(answer for _, answer in replies)


def _arp_responder(host: Host, subnet: str) -> None:
    """Answer ARP probes for our own addresses."""

    def responder(h: Host, src: str, probed: object) -> bool | None:
        return True if h.addresses.get(subnet) == probed else None

    host.bind(ARP_PORT, responder)


def claim_link_local_address(
    host: Host,
    subnet: str,
    rng: np.random.Generator,
    max_attempts: int = 10,
) -> str:
    """Self-assign a link-local address with conflict probing.

    Picks random ``169.254.x.y`` candidates (x in 1..254, y in 1..254),
    probes the subnet, and claims the first free one; raises
    :class:`AddressInUseError` after ``max_attempts`` collisions.
    """
    for _ in range(max_attempts):
        x = int(rng.integers(1, 255))
        y = int(rng.integers(1, 255))
        candidate = f"{LINK_LOCAL_PREFIX}.{x}.{y}"
        if subnet in host.addresses:
            host.net.detach(host, subnet)
        # Temporarily attach with no address claim to allow probing.
        host.net.attach(host, subnet, address=f"probe-{host.name}")
        in_use = _probe_in_use(host, subnet, candidate)
        host.net.detach(host, subnet)
        if in_use:
            continue
        try:
            host.net.attach(host, subnet, address=candidate)
        except AddressInUseError:
            continue
        _arp_responder(host, subnet)
        return candidate
    raise AddressInUseError(
        f"{host.name!r} could not claim a link-local address on {subnet!r}"
    )


class MdnsResponder:
    """Publishes names over subnet multicast (the mDNS answering side)."""

    def __init__(self, host: Host, subnet: str):
        self.host = host
        self.subnet = subnet
        self._names: dict[str, str] = {}
        self.answered = 0
        host.bind(MDNS_PORT, self._serve)

    def publish(self, name: str, address: str | None = None) -> None:
        """Announce ``name`` as resolving to this host (or ``address``)."""
        if address is None:
            address = self.host.address_on(self.subnet)
        self._names[name.lower()] = address

    def withdraw(self, name: str) -> None:
        """Stop answering for ``name``."""
        self._names.pop(name.lower(), None)

    @property
    def published_names(self) -> tuple[str, ...]:
        """Currently announced names."""
        return tuple(sorted(self._names))

    def _serve(self, host: Host, src: str, payload: object) -> str | None:
        if isinstance(payload, DnsQuery):
            answer = self._names.get(payload.name.lower())
            if answer is not None:
                self.answered += 1
            return answer
        return None


def mdns_resolve(host: Host, subnet: str, name: str) -> str | None:
    """One-shot mDNS query: the first positive answer on the subnet.

    A known mDNS limitation the paper calls out: "if different machines
    have content for the same domain, only one of them will be able to
    publish it" — the first responder (lowest address) wins here.
    """
    replies = host.multicast(subnet, MDNS_PORT, DnsQuery(name=name))
    for _, answer in replies:
        if answer is not None:
            return answer
    return None
