"""Mobility support (Section 6.3).

Two ingredients, both standard HTTP-era machinery:

* **session management** — HTTP cookies for stateful sessions, byte
  ranges for stateless resumption, "so applications can seamlessly work
  upon reconnection";
* **dynamic DNS** — a mobile server announces its new address after
  moving; the client's next lookup resolves to the new location.

:class:`MobileServer` is an origin that can move between subnets;
:class:`ResumingDownloader` is the client-side loop that survives the
move by re-resolving and continuing from the last received byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import http
from .dns import DnsClient
from .simnet import HTTP_PORT, Host, SimNet, SimNetError


class MobileServer:
    """A content server that can change its network attachment point."""

    def __init__(
        self,
        net: SimNet,
        host: Host,
        domain: str,
        dns: DnsClient,
        token: str,
        subnet: str,
    ):
        self.net = net
        self.host = host
        self.domain = domain
        self.dns = dns
        self.token = token
        self.subnet = subnet
        self._content: dict[str, bytes] = {}
        self._sessions: dict[str, int] = {}  # session id -> requests served
        self._next_session = 1
        host.bind(HTTP_PORT, self._serve)
        self.announce()

    def store(self, path: str, content: bytes) -> None:
        """Host ``content`` at ``path`` (no leading slash needed)."""
        self._content[path.lstrip("/")] = content

    def announce(self) -> bool:
        """Push the current address to dynamic DNS."""
        return self.dns.update(
            self.domain, self.host.address_on(self.subnet), self.token
        )

    def move(self, new_subnet: str) -> str:
        """Reattach to ``new_subnet`` and announce the new address.

        Returns the new address.  In-flight client transfers observe the
        old address going dark and must re-resolve.
        """
        self.net.detach(self.host, self.subnet)
        self.subnet = new_subnet
        address = self.net.attach(self.host, new_subnet)
        self.announce()
        return address

    def session_requests(self, session_id: str) -> int:
        """How many requests a session has made (0 if unknown)."""
        return self._sessions.get(session_id, 0)

    def _serve(self, host: Host, src: str, payload: object) -> http.HttpResponse:
        if not isinstance(payload, http.HttpRequest):
            raise TypeError("mobile server only speaks HTTP")
        session_id = self._session_of(payload)
        body = self._content.get(payload.path.lstrip("/"))
        if body is None:
            return http.not_found(payload.path)
        byte_range = payload.byte_range()
        if byte_range is not None:
            response = http.apply_byte_range(body, byte_range)
        else:
            response = http.ok(body)
        return response.with_header("set-cookie", f"session={session_id}")

    def _session_of(self, request: http.HttpRequest) -> str:
        cookie = request.header("cookie", "") or ""
        for part in cookie.split(";"):
            name, _, value = part.strip().partition("=")
            if name == "session" and value in self._sessions:
                self._sessions[value] += 1
                return value
        session_id = f"s{self._next_session}"
        self._next_session += 1
        self._sessions[session_id] = 1
        return session_id


@dataclass(frozen=True)
class DownloadResult:
    """Outcome of a resumable download."""

    body: bytes
    attempts: int
    interruptions: int


class ResumingDownloader:
    """Client-side mobility: re-resolve and resume with byte ranges."""

    def __init__(self, host: Host, dns: DnsClient, chunk_size: int = 1024):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.host = host
        self.dns = dns
        self.chunk_size = chunk_size
        self.session_cookie: str | None = None

    def download(
        self, domain: str, path: str, max_attempts: int = 10
    ) -> DownloadResult:
        """Fetch ``domain``/``path`` chunk by chunk, surviving moves.

        Each chunk is requested with a Range header; on connectivity
        failure the client re-resolves the domain (picking up dynamic
        DNS updates) and continues from the last received byte.
        """
        received = bytearray()
        attempts = 0
        interruptions = 0
        total: int | None = None
        while max_attempts > attempts:
            attempts += 1
            address = self.dns.resolve(domain)
            if address is None:
                interruptions += 1
                continue
            try:
                while total is None or len(received) < total:
                    start = len(received)
                    end = start + self.chunk_size - 1
                    headers = {"range": f"bytes={start}-{end}"}
                    if self.session_cookie is not None:
                        headers["cookie"] = f"session={self.session_cookie}"
                    response = self.host.call(
                        address,
                        HTTP_PORT,
                        http.HttpRequest("GET", f"http://{domain}{path}",
                                         headers=headers),
                    )
                    if response.status == 416 and total is None:
                        total = len(received)
                        break
                    if response.status not in (200, 206):
                        raise SimNetError(f"bad status {response.status}")
                    self._collect_session(response)
                    received.extend(response.body)
                    content_range = response.header("content-range")
                    if content_range is not None:
                        total = int(content_range.rsplit("/", 1)[1])
                if total is not None and len(received) >= total:
                    return DownloadResult(
                        body=bytes(received),
                        attempts=attempts,
                        interruptions=interruptions,
                    )
            except SimNetError:
                interruptions += 1
        raise SimNetError(
            f"download of {domain}{path} failed after {attempts} attempts"
        )

    def _collect_session(self, response: http.HttpResponse) -> None:
        raw = response.header("set-cookie")
        if raw and raw.startswith("session="):
            self.session_cookie = raw[len("session="):]
