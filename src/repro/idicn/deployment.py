"""Turn-key idICN deployments for tests, examples, and benchmarks.

Wires the full Figure 11 picture on a :class:`repro.idicn.simnet.SimNet`:
a backbone subnet carrying the name resolution system, DNS, a content
provider (origin + reverse proxy), one or more client ADs each with an
edge proxy and a WPAD/PAC server, and auto-configured browsers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from . import http
from .client import Browser
from .crypto import KeyPair, generate_keypair
from .dns import DnsClient, DnsServer
from .origin import OriginServer
from .overload import OverloadPolicy
from .proxy import EdgeProxy
from .resolution import NameResolutionSystem, ResolutionClient
from .retry import RetryPolicy
from .reverse_proxy import ReverseProxy
from .simnet import HTTP_PORT, Host, SimNet
from .wpad import DHCP_PAC_OPTION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry


@dataclass
class Provider:
    """One content provider: origin, reverse proxy, and its key pair."""

    origin: OriginServer
    reverse_proxy: ReverseProxy
    keypair: KeyPair

    def publish(self, label: str, content: bytes) -> str:
        """Store content at the origin and publish it; returns the domain."""
        self.origin.store(label, content)
        return self.reverse_proxy.publish(label).domain


@dataclass
class ClientDomain:
    """One administrative domain: edge proxies, PAC server, browsers.

    ``proxy`` is the primary; ``proxies`` lists every proxy in the AD in
    PAC failover order (length 1 unless the deployment was built with
    ``proxies_per_domain > 1``).
    """

    name: str
    subnet: str
    proxy: EdgeProxy
    proxies: list[EdgeProxy] = field(default_factory=list)
    browsers: list[Browser] = field(default_factory=list)


@dataclass
class Deployment:
    """A complete idICN deployment."""

    net: SimNet
    dns_server: DnsServer
    resolver: NameResolutionSystem
    providers: list[Provider] = field(default_factory=list)
    domains: list[ClientDomain] = field(default_factory=list)
    retry_policy: RetryPolicy | None = None
    #: The overload policy the deployment was built with (None = the
    #: original synchronous, unbounded fabric).
    overload: OverloadPolicy | None = None

    @property
    def backbone(self) -> str:
        """Name of the backbone subnet."""
        return "backbone"

    def dns_client(self, host: Host) -> DnsClient:
        """A resolver stub pointed at the deployment's DNS server."""
        return DnsClient(
            host,
            server_address=self.dns_server.host.address_on(self.backbone),
            retry_policy=self.retry_policy,
        )


def _pac_body(proxy_addrs: list[str]) -> str:
    """The AD's PAC file; multiple proxies become a failover chain.

    With one proxy the decisions match the paper's minimal setup; with
    more, browsers get the classic ``PROXY a; PROXY b; DIRECT`` list and
    walk it when a proxy is unreachable.
    """
    chain = "; ".join(f"PROXY {addr}:80" for addr in proxy_addrs)
    if len(proxy_addrs) > 1:
        chain += "; DIRECT"
    return (
        f"dnsDomainIs .idicn.org => {chain}\n"
        f"shExpMatch http://* => {chain}\n"
        "default => DIRECT\n"
    )


def build_deployment(
    num_domains: int = 1,
    browsers_per_domain: int = 1,
    proxy_capacity: int = 1024,
    key_bits: int = 256,
    key_seed: int = 7,
    verify_at_client: bool = False,
    proxies_per_domain: int = 1,
    retry_policy: RetryPolicy | None = None,
    overload: OverloadPolicy | None = None,
    registry: "MetricsRegistry | None" = None,
    configure_browsers: bool = True,
    provider_max_age: float | None = None,
) -> Deployment:
    """Build the standard single-provider deployment of Figure 11.

    ``proxies_per_domain`` places extra edge proxies per AD (PAC
    failover chain ending in DIRECT); ``retry_policy`` arms every
    component (browsers, proxies, resolver stubs, reverse proxy) with
    the same retry/backoff behaviour — ``None`` keeps the historical
    single-attempt semantics.

    ``overload`` switches on the event-driven mode: bounded request
    queues and PITs on every proxy and the reverse proxy, admission
    control on the edge proxies, and optional link costs on the
    backbone.  ``registry`` threads a metrics sink through every
    component.  ``configure_browsers=False`` skips WPAD so browsers go
    DIRECT via DNS — the "ICN, no request routing" comparison arm.
    ``provider_max_age`` sets the reverse proxy's advertised freshness
    lifetime (None = cacheable forever).
    """
    net = SimNet()
    net.create_subnet("backbone", "10.0.0")
    if overload is not None and overload.link is not None:
        net.set_link("backbone", overload.link)

    dns_host = net.create_host("dns", "backbone")
    dns_server = DnsServer(dns_host)
    resolver_host = net.create_host("resolver", "backbone")
    resolver = NameResolutionSystem(resolver_host)
    resolver_addr = resolver_host.address_on("backbone")

    origin_host = net.create_host("origin", "backbone")
    origin = OriginServer(origin_host)
    rp_host = net.create_host("reverse-proxy", "backbone")
    keypair = generate_keypair(bits=key_bits, seed=key_seed)
    reverse_proxy = ReverseProxy(
        rp_host,
        origin_address=origin_host.address_on("backbone"),
        keypair=keypair,
        resolver=ResolutionClient(rp_host, resolver_addr,
                                  retry_policy=retry_policy),
        dns_register=dns_server.add_record,
        retry_policy=retry_policy,
        registry=registry,
        max_age=provider_max_age,
        pit=overload.pit_for(rp_host.name, registry) if overload else None,
        cache_capacity=overload.rp_cache_capacity if overload else None,
    )
    if overload is not None:
        rp_host.queue = overload.queue_for(rp_host.name, registry)
    deployment = Deployment(
        net=net,
        dns_server=dns_server,
        resolver=resolver,
        providers=[Provider(origin=origin, reverse_proxy=reverse_proxy,
                            keypair=keypair)],
        retry_policy=retry_policy,
        overload=overload,
    )

    for index in range(num_domains):
        domain_name = f"ad{index}"
        subnet = f"ad{index}"
        net.create_subnet(subnet, f"10.{index + 1}.0")
        proxies: list[EdgeProxy] = []
        for p in range(proxies_per_domain):
            suffix = "" if p == 0 else f"-{p}"
            proxy_host = net.create_host(f"{domain_name}-proxy{suffix}", subnet)
            # Proxies need a backbone leg to reach resolver/reverse proxy.
            net.attach(proxy_host, "backbone")
            if overload is not None:
                proxy_host.queue = overload.queue_for(proxy_host.name,
                                                      registry)
            proxies.append(
                EdgeProxy(
                    proxy_host,
                    resolver=ResolutionClient(proxy_host, resolver_addr,
                                              retry_policy=retry_policy),
                    dns=deployment.dns_client(proxy_host),
                    capacity=proxy_capacity,
                    retry_policy=retry_policy,
                    registry=registry,
                    pit=(overload.pit_for(proxy_host.name, registry)
                         if overload else None),
                    admission=overload.admission if overload else None,
                )
            )
        pac_host = net.create_host(f"{domain_name}-pac", subnet)
        pac_body = _pac_body(
            [p.host.address_on(subnet) for p in proxies]
        ).encode()
        pac_host.bind(
            HTTP_PORT,
            lambda h, src, req, body=pac_body: http.ok(body),
        )
        net.subnets[subnet].dhcp_options[DHCP_PAC_OPTION] = (
            f"http://{pac_host.address_on(subnet)}/wpad.dat"
        )
        client_domain = ClientDomain(
            name=domain_name, subnet=subnet, proxy=proxies[0], proxies=proxies
        )
        for b in range(browsers_per_domain):
            browser_host = net.create_host(f"{domain_name}-client{b}", subnet)
            browser = Browser(
                browser_host,
                subnet,
                dns=deployment.dns_client(browser_host),
                verify_content=verify_at_client,
                retry_policy=retry_policy,
            )
            if configure_browsers:
                browser.configure()
            client_domain.browsers.append(browser)
        deployment.domains.append(client_domain)
    return deployment
