"""Turn-key idICN deployments for tests, examples, and benchmarks.

Wires the full Figure 11 picture on a :class:`repro.idicn.simnet.SimNet`:
a backbone subnet carrying the name resolution system, DNS, a content
provider (origin + reverse proxy), one or more client ADs each with an
edge proxy and a WPAD/PAC server, and auto-configured browsers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import http
from .client import Browser
from .crypto import KeyPair, generate_keypair
from .dns import DnsClient, DnsServer
from .origin import OriginServer
from .proxy import EdgeProxy
from .resolution import NameResolutionSystem, ResolutionClient
from .reverse_proxy import ReverseProxy
from .simnet import HTTP_PORT, Host, SimNet
from .wpad import DHCP_PAC_OPTION


@dataclass
class Provider:
    """One content provider: origin, reverse proxy, and its key pair."""

    origin: OriginServer
    reverse_proxy: ReverseProxy
    keypair: KeyPair

    def publish(self, label: str, content: bytes) -> str:
        """Store content at the origin and publish it; returns the domain."""
        self.origin.store(label, content)
        return self.reverse_proxy.publish(label).domain


@dataclass
class ClientDomain:
    """One administrative domain: edge proxy, PAC server, browsers."""

    name: str
    subnet: str
    proxy: EdgeProxy
    browsers: list[Browser] = field(default_factory=list)


@dataclass
class Deployment:
    """A complete idICN deployment."""

    net: SimNet
    dns_server: DnsServer
    resolver: NameResolutionSystem
    providers: list[Provider] = field(default_factory=list)
    domains: list[ClientDomain] = field(default_factory=list)

    @property
    def backbone(self) -> str:
        """Name of the backbone subnet."""
        return "backbone"

    def dns_client(self, host: Host) -> DnsClient:
        """A resolver stub pointed at the deployment's DNS server."""
        return DnsClient(host, server_address=self.dns_server.host.address_on(
            self.backbone))


def _pac_body(proxy_addr: str) -> str:
    return (
        f"dnsDomainIs .idicn.org => PROXY {proxy_addr}:80\n"
        f"shExpMatch http://* => PROXY {proxy_addr}:80\n"
        "default => DIRECT\n"
    )


def build_deployment(
    num_domains: int = 1,
    browsers_per_domain: int = 1,
    proxy_capacity: int = 1024,
    key_bits: int = 256,
    key_seed: int = 7,
    verify_at_client: bool = False,
) -> Deployment:
    """Build the standard single-provider deployment of Figure 11."""
    net = SimNet()
    net.create_subnet("backbone", "10.0.0")

    dns_host = net.create_host("dns", "backbone")
    dns_server = DnsServer(dns_host)
    resolver_host = net.create_host("resolver", "backbone")
    resolver = NameResolutionSystem(resolver_host)
    resolver_addr = resolver_host.address_on("backbone")

    origin_host = net.create_host("origin", "backbone")
    origin = OriginServer(origin_host)
    rp_host = net.create_host("reverse-proxy", "backbone")
    keypair = generate_keypair(bits=key_bits, seed=key_seed)
    reverse_proxy = ReverseProxy(
        rp_host,
        origin_address=origin_host.address_on("backbone"),
        keypair=keypair,
        resolver=ResolutionClient(rp_host, resolver_addr),
        dns_register=dns_server.add_record,
    )
    deployment = Deployment(
        net=net,
        dns_server=dns_server,
        resolver=resolver,
        providers=[Provider(origin=origin, reverse_proxy=reverse_proxy,
                            keypair=keypair)],
    )

    for index in range(num_domains):
        domain_name = f"ad{index}"
        subnet = f"ad{index}"
        net.create_subnet(subnet, f"10.{index + 1}.0")
        proxy_host = net.create_host(f"{domain_name}-proxy", subnet)
        # The proxy needs a backbone leg to reach resolver/reverse proxy.
        net.attach(proxy_host, "backbone")
        proxy = EdgeProxy(
            proxy_host,
            resolver=ResolutionClient(proxy_host, resolver_addr),
            dns=deployment.dns_client(proxy_host),
            capacity=proxy_capacity,
        )
        pac_host = net.create_host(f"{domain_name}-pac", subnet)
        pac_body = _pac_body(proxy_host.address_on(subnet)).encode()
        pac_host.bind(
            HTTP_PORT,
            lambda h, src, req, body=pac_body: http.ok(body),
        )
        net.subnets[subnet].dhcp_options[DHCP_PAC_OPTION] = (
            f"http://{pac_host.address_on(subnet)}/wpad.dat"
        )
        client_domain = ClientDomain(name=domain_name, subnet=subnet, proxy=proxy)
        for b in range(browsers_per_domain):
            browser_host = net.create_host(f"{domain_name}-client{b}", subnet)
            browser = Browser(
                browser_host, subnet, verify_content=verify_at_client
            )
            browser.configure()
            client_domain.browsers.append(browser)
        deployment.domains.append(client_domain)
    return deployment
