"""Simulated DNS with dynamic updates (Section 6.3 mobility support).

A :class:`DnsServer` binds on :data:`repro.idicn.simnet.DNS_PORT` and
answers name→address queries; authorized principals can push dynamic
updates ("with dynamic DNS updates, mobile servers must announce their
locations").  A :class:`DnsClient` queries a configured server and can
fall back to mDNS when none is configured (the ad hoc mode's "name
switching service").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .retry import Retrier, RetryPolicy
from .simnet import DNS_PORT, MDNS_PORT, Host, SimNetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry


@dataclass(frozen=True)
class DnsQuery:
    """A name-resolution question."""

    name: str


@dataclass(frozen=True)
class DnsUpdate:
    """A dynamic-DNS registration (token authenticates the owner)."""

    name: str
    address: str
    token: str


class DnsServer:
    """Authoritative store of name→address records with dynamic updates."""

    def __init__(
        self, host: Host, registry: "MetricsRegistry | None" = None
    ):
        self.host = host
        self._records: dict[str, str] = {}
        self._tokens: dict[str, str] = {}
        self.queries = 0
        self.updates = 0
        #: Optional mirror into ``repro_dns_events_total{host,event}``.
        self.registry = registry
        if registry is not None:
            for event in ("query", "update"):
                registry.counter(
                    "repro_dns_events_total",
                    help="DNS queries and dynamic updates per server",
                    host=host.name,
                    event=event,
                )
        host.bind(DNS_PORT, self._serve)

    def add_record(self, name: str, address: str, token: str | None = None) -> None:
        """Provision a record; ``token`` authorizes later dynamic updates."""
        key = name.lower()
        self._records[key] = address
        if token is not None:
            self._tokens[key] = token

    def lookup(self, name: str) -> str | None:
        """Local (non-network) record lookup."""
        return self._records.get(name.lower())

    def _obs(self, event: str) -> None:
        if self.registry is not None:
            self.registry.inc(
                "repro_dns_events_total", host=self.host.name, event=event
            )

    def _serve(self, host: Host, src: str, payload: object) -> object:
        if isinstance(payload, DnsQuery):
            self.queries += 1
            self._obs("query")
            return self._records.get(payload.name.lower())
        if isinstance(payload, DnsUpdate):
            key = payload.name.lower()
            expected = self._tokens.get(key)
            if expected is not None and expected != payload.token:
                return False
            self.updates += 1
            self._obs("update")
            self._records[key] = payload.address
            self._tokens.setdefault(key, payload.token)
            return True
        raise TypeError(f"unexpected DNS payload {type(payload).__name__}")


class DnsClient:
    """Resolver stub with an optional mDNS fallback.

    This is the behaviour the ad hoc scenario relies on: "without a
    configured DNS server to contact, Bob's name switching service sends
    an mDNS query" (Section 6.2).
    """

    def __init__(
        self,
        host: Host,
        server_address: str | None = None,
        mdns_subnet: str | None = None,
        retry_policy: RetryPolicy | None = None,
        registry: "MetricsRegistry | None" = None,
    ):
        self.host = host
        self.server_address = server_address
        self.mdns_subnet = mdns_subnet
        self._retrier = Retrier(
            retry_policy,
            registry=registry,
            component=f"dns-client:{host.name}",
        )

    @property
    def retries(self) -> int:
        """Server-query retries performed (0 when the network is healthy)."""
        return self._retrier.retries

    def resolve(self, name: str) -> str | None:
        """Resolve ``name`` to an address, or None.

        A configured server is retried under the retry policy; when it
        stays unreachable the client degrades to the mDNS fallback.
        """
        if self.server_address is not None:
            try:
                answer = self._retrier.call(
                    self.host, self.server_address, DNS_PORT, DnsQuery(name=name)
                )
            except SimNetError:
                answer = None
            if answer is not None:
                return answer
        if self.mdns_subnet is not None:
            replies = self.host.multicast(
                self.mdns_subnet, MDNS_PORT, DnsQuery(name=name)
            )
            for _, answer in replies:
                if answer is not None:
                    return answer
        return None

    def update(self, name: str, address: str, token: str) -> bool:
        """Push a dynamic-DNS update; False when refused or unreachable."""
        if self.server_address is None:
            return False
        try:
            return bool(
                self._retrier.call(
                    self.host,
                    self.server_address,
                    DNS_PORT,
                    DnsUpdate(name=name, address=address, token=token),
                )
            )
        except SimNetError:
            return False
