"""Minimal HTTP message model for the idICN prototype.

idICN "build[s] upon HTTP, as it already provides a fetch-by-name
primitive" (Section 6).  Requests and responses are typed messages
carried over :mod:`repro.idicn.simnet`; we model the subset the design
needs: GET with Host routing, response caching metadata, byte ranges
(stateless mobility/session resumption), and cookies (stateful
sessions).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request message."""

    method: str
    url: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "headers", {k.lower(): v for k, v in self.headers.items()}
        )

    @property
    def host(self) -> str:
        """The target host: the Host header, else the URL authority."""
        if "host" in self.headers:
            return self.headers["host"]
        return split_url(self.url)[0]

    @property
    def path(self) -> str:
        """The URL path component (always begins with '/')."""
        return split_url(self.url)[1]

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)

    def with_header(self, name: str, value: str) -> "HttpRequest":
        """Copy of the request with one header added/replaced."""
        headers = dict(self.headers)
        headers[name.lower()] = value
        return replace(self, headers=headers)

    def byte_range(self) -> tuple[int, int | None] | None:
        """Parse a ``Range: bytes=start-[end]`` header (None if absent)."""
        value = self.headers.get("range")
        if value is None:
            return None
        return parse_byte_range(value)


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response message."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "headers", {k.lower(): v for k, v in self.headers.items()}
        )

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)

    def with_header(self, name: str, value: str) -> "HttpResponse":
        """Copy of the response with one header added/replaced."""
        headers = dict(self.headers)
        headers[name.lower()] = value
        return replace(self, headers=headers)


#: The RFC 7234 ``Warning`` value marking a response served past its
#: freshness lifetime because the origin/upstream was unreachable.
STALE_WARNING = '110 - "Response is Stale"'


def get(url: str, headers: dict[str, str] | None = None) -> HttpRequest:
    """Convenience constructor for a GET request."""
    return HttpRequest(method="GET", url=url, headers=headers or {})


def mark_stale(response: HttpResponse) -> HttpResponse:
    """Tag a response as served-stale (origin down, cache answering).

    Proxies losing their upstream keep serving what they have — "an AD
    losing backbone connectivity keeps serving what it has" — but honest
    HTTP semantics require flagging the staleness so clients can tell.
    """
    return response.with_header("warning", STALE_WARNING)


def is_stale(response: HttpResponse) -> bool:
    """Whether a response carries the served-stale warning."""
    return response.header("warning") == STALE_WARNING


def ok(body: bytes, headers: dict[str, str] | None = None) -> HttpResponse:
    """A 200 response with ``body``."""
    return HttpResponse(status=200, headers=headers or {}, body=body)


def not_found(message: str = "not found") -> HttpResponse:
    """A 404 response."""
    return HttpResponse(status=404, body=message.encode())


def bad_gateway(message: str = "bad gateway") -> HttpResponse:
    """A 502 response (upstream failure at a proxy)."""
    return HttpResponse(status=502, body=message.encode())


def service_unavailable(retry_after: float) -> HttpResponse:
    """A 503 shed response with a ``Retry-After`` hint (seconds).

    The top rung of the overload ladder: the proxy refuses the request
    outright and tells the client when to come back, displacing retry
    load past the burst instead of amplifying it.
    """
    return HttpResponse(
        status=503,
        headers={"retry-after": f"{retry_after:g}"},
        body=b"overloaded",
    )


def is_shed(response: HttpResponse) -> bool:
    """Whether a response is an overload shed (503 with Retry-After)."""
    return response.status == 503 and response.header("retry-after") is not None


def retry_after_seconds(response: HttpResponse) -> float | None:
    """The ``Retry-After`` delay of a shed response, if present/parsable."""
    value = response.header("retry-after")
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


def split_url(url: str) -> tuple[str, str]:
    """Split ``http://host/path`` into (host, path).

    Bare domains get path '/'; a missing scheme is tolerated so proxy
    code can handle ``cnn.example/index`` style inputs.
    """
    rest = url
    if "://" in rest:
        scheme, rest = rest.split("://", 1)
        if scheme != "http":
            raise ValueError(f"unsupported scheme {scheme!r}")
    if "/" in rest:
        host, path = rest.split("/", 1)
        return host, "/" + path
    return rest, "/"


def parse_byte_range(value: str) -> tuple[int, int | None]:
    """Parse ``bytes=start-[end]`` (inclusive end, None for open-ended)."""
    if not value.startswith("bytes="):
        raise ValueError(f"unsupported Range unit in {value!r}")
    spec = value[len("bytes="):]
    start_text, _, end_text = spec.partition("-")
    if not start_text:
        raise ValueError(f"suffix ranges not supported: {value!r}")
    start = int(start_text)
    end = int(end_text) if end_text else None
    if end is not None and end < start:
        raise ValueError(f"inverted range {value!r}")
    return start, end


def apply_byte_range(body: bytes, byte_range: tuple[int, int | None]) -> HttpResponse:
    """Build a 206 Partial Content response for ``byte_range`` of ``body``.

    An out-of-bounds start yields 416, as in real HTTP.
    """
    start, end = byte_range
    if start >= len(body):
        return HttpResponse(status=416, body=b"")
    stop = len(body) if end is None else min(end + 1, len(body))
    return HttpResponse(
        status=206,
        headers={
            "content-range": f"bytes {start}-{stop - 1}/{len(body)}",
        },
        body=body[start:stop],
    )
