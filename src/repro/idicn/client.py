"""Browser client (Figure 11, steps 1-2 and 7).

The client auto-configures its proxy via WPAD (step 1) and issues
plain HTTP GETs (step 2) — "without even requiring the client to
perform a name lookup or a per-request connection setup" when a proxy
is configured.  Without a proxy it resolves names itself via DNS with
an mDNS fallback (the ad hoc mode's name switching service) and fetches
directly.  Responses land in a local browser cache, which the ad hoc
proxy (:mod:`repro.idicn.adhoc`) can expose to nearby machines.
Optionally the client verifies idICN content end-to-end instead of
trusting the proxy.
"""

from __future__ import annotations

from ..cache.lru import LRUCache
from . import http
from .dns import DnsClient
from .metalink import METALINK_HEADER, Metalink, verify_metalink
from .names import parse_domain, name_matches_key
from .crypto import PublicKey
from .retry import Retrier, RetryPolicy
from .simnet import HTTP_PORT, Host, SimNetError
from .wpad import PacFile, autodiscover, proxy_address, proxy_candidates


class VerificationError(Exception):
    """Raised when end-host content verification fails."""


class Browser:
    """An HTTP client with WPAD auto-config, cookies, and a local cache."""

    def __init__(
        self,
        host: Host,
        subnet: str,
        dns: DnsClient | None = None,
        verify_content: bool = False,
        cache_capacity: int = 256,
        retry_policy: RetryPolicy | None = None,
    ):
        self.host = host
        self.subnet = subnet
        self.dns = dns
        self.verify_content = verify_content
        self.pac: PacFile | None = None
        self.cookies: dict[str, dict[str, str]] = {}
        self._cache = LRUCache(capacity=cache_capacity)
        self._store: dict[str, tuple[str, bytes, str | None]] = {}
        self.requests_made = 0
        self._retrier = Retrier(retry_policy)
        #: Candidates abandoned for the next PAC entry (proxy failover).
        self.failovers = 0

    @property
    def retries(self) -> int:
        """Network-call retries this browser performed (0 when healthy)."""
        return self._retrier.retries

    # ------------------------------------------------------------------
    # Configuration (step 1)
    # ------------------------------------------------------------------
    def configure(self) -> bool:
        """Run WPAD; returns True when a PAC file was found and parsed."""
        self.pac = autodiscover(self.host, self.subnet, self.dns)
        return self.pac is not None

    def proxy_for(self, url: str) -> str | None:
        """The proxy address the PAC selects for ``url`` (None = DIRECT)."""
        if self.pac is None:
            return None
        host, _ = http.split_url(url)
        return proxy_address(self.pac.find_proxy_for_url(url, host))

    def proxy_plan(self, url: str) -> tuple[str | None, ...]:
        """The full PAC failover list for ``url`` (``None`` = DIRECT).

        Without a PAC the plan is a single DIRECT entry; with one, every
        ``PROXY``/``DIRECT`` entry of the matched decision, in order —
        the browser walks this list when candidates are unreachable.
        """
        if self.pac is None:
            return (None,)
        host, _ = http.split_url(url)
        return proxy_candidates(self.pac.find_proxy_for_url(url, host))

    # ------------------------------------------------------------------
    # Fetching (steps 2 and 7)
    # ------------------------------------------------------------------
    def get(self, url: str, headers: dict[str, str] | None = None) -> http.HttpResponse:
        """Fetch ``url``, via the configured proxy or directly."""
        self.requests_made += 1
        target_host, _ = http.split_url(url)
        request = http.HttpRequest("GET", url, headers=headers or {})
        request = self._attach_cookies(request, target_host)
        response: http.HttpResponse | None = None
        for candidate in self.proxy_plan(url):
            if candidate is None:
                address = self._resolve(target_host)
                if address is None:
                    response = http.bad_gateway(f"cannot resolve {target_host!r}")
                    self.failovers += 1
                    continue
            else:
                address = candidate
            try:
                response = self._call(address, request)
            except SimNetError as exc:
                # Candidate unreachable even after retries: fail over to
                # the next PAC entry (PROXY b, then DIRECT).
                response = http.bad_gateway(str(exc))
                self.failovers += 1
                continue
            break
        else:
            # Every candidate failed; don't count the final one as a
            # failover — there was nothing left to fail over to.
            self.failovers -= 1
        assert response is not None
        self._collect_cookies(response, target_host)
        if response.ok:
            self._verify(url, response)
            self._remember(url, target_host, response)
        return response

    def cached(self, url: str) -> bytes | None:
        """Body of a previously fetched URL from the browser cache."""
        entry = self._store.get(url)
        return entry[1] if entry is not None else None

    def cached_domains(self) -> tuple[str, ...]:
        """Domains with at least one object in the browser cache."""
        return tuple(sorted({domain for domain, _, _ in self._store.values()}))

    def cache_lookup_by_path(self, domain: str, path: str) -> bytes | None:
        """Find a cached body by (domain, path) — the ad hoc proxy's view."""
        for url, (cached_domain, body, _) in self._store.items():
            if cached_domain == domain and http.split_url(url)[1] == path:
                return body
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _call(self, address: str, request: http.HttpRequest) -> http.HttpResponse:
        """One HTTP exchange under the retry policy; raises on failure."""
        return self._retrier.call(self.host, address, HTTP_PORT, request)

    def _resolve(self, domain: str) -> str | None:
        if self.dns is not None:
            return self.dns.resolve(domain)
        return None

    def _verify(self, url: str, response: http.HttpResponse) -> None:
        if not self.verify_content:
            return
        domain, _ = http.split_url(url)
        name = parse_domain(domain)
        if name is None:
            return  # legacy content: nothing to verify against
        metalink_xml = response.header(METALINK_HEADER)
        if metalink_xml is None:
            raise VerificationError(f"no metadata for idICN content {url}")
        try:
            metalink = Metalink.from_xml(metalink_xml)
            publisher = PublicKey.from_bytes(metalink.publisher_key.encode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise VerificationError(f"bad metadata for {url}: {exc}") from exc
        if not name_matches_key(name, publisher):
            raise VerificationError(f"publisher key does not bind to {domain}")
        if not verify_metalink(metalink, response.body):
            raise VerificationError(f"signature/hash check failed for {url}")

    def _remember(self, url: str, domain: str, response: http.HttpResponse) -> None:
        if response.status != 200:
            return  # don't cache partial responses
        for victim in self._cache.insert(url):
            self._store.pop(victim, None)
        if url in self._cache:
            self._store[url] = (
                domain,
                response.body,
                response.header(METALINK_HEADER),
            )

    def _attach_cookies(
        self, request: http.HttpRequest, domain: str
    ) -> http.HttpRequest:
        jar = self.cookies.get(domain)
        if not jar:
            return request
        encoded = "; ".join(f"{k}={v}" for k, v in sorted(jar.items()))
        return request.with_header("cookie", encoded)

    def _collect_cookies(self, response: http.HttpResponse, domain: str) -> None:
        raw = response.header("set-cookie")
        if raw is None:
            return
        name, _, value = raw.partition("=")
        if name:
            self.cookies.setdefault(domain, {})[name.strip()] = value.strip()
