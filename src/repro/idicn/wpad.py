"""Automatic proxy configuration: WPAD + PAC (Section 6.2).

Hosts locate a Proxy Auto-Config file via the Web Proxy Autodiscovery
Protocol — first the DHCP option, then the well-known ``wpad.<domain>``
DNS name — fetch it over HTTP, and evaluate
``FindProxyForURL(url, host)`` per request.

Real PAC files are JavaScript; a JS interpreter adds nothing to the
design, so the PAC body here is a mini-DSL with the classic predicate
library (``dnsDomainIs``, ``shExpMatch``, ``isInNet``) serialized as a
line-oriented text format (see DESIGN.md's substitution table):

    # comment
    dnsDomainIs .idicn.org => PROXY 10.0.0.2:80
    shExpMatch *.cdn.example/* => PROXY 10.0.0.2:80
    default => DIRECT
"""

from __future__ import annotations

import fnmatch
import ipaddress
from dataclasses import dataclass

from . import http
from .dns import DnsClient
from .simnet import HTTP_PORT, Host, SimNetError

#: DHCP option key announcing the PAC URL (option 252 in real DHCP).
DHCP_PAC_OPTION = "pac_url"

#: Decision returned when no rule matches and no default is given.
DIRECT = "DIRECT"


@dataclass(frozen=True)
class PacRule:
    """One predicate → decision line of the PAC mini-DSL."""

    predicate: str  # dnsDomainIs | shExpMatch | isInNet | default
    argument: str
    decision: str

    def matches(self, url: str, host: str) -> bool:
        """Evaluate the predicate against a request."""
        if self.predicate == "default":
            return True
        if self.predicate == "dnsDomainIs":
            suffix = self.argument.lower()
            return host.lower().endswith(suffix)
        if self.predicate == "shExpMatch":
            return fnmatch.fnmatch(url.lower(), self.argument.lower())
        if self.predicate == "isInNet":
            try:
                network = ipaddress.ip_network(self.argument, strict=False)
                return ipaddress.ip_address(host) in network
            except ValueError:
                return False
        raise ValueError(f"unknown PAC predicate {self.predicate!r}")


@dataclass(frozen=True)
class PacFile:
    """A parsed PAC document: first matching rule wins."""

    rules: tuple[PacRule, ...]

    def find_proxy_for_url(self, url: str, host: str) -> str:
        """The PAC entry point: a decision like ``PROXY addr:port``."""
        for rule in self.rules:
            if rule.matches(url, host):
                return rule.decision
        return DIRECT

    def serialize(self) -> str:
        """Render back to the line-oriented DSL."""
        lines = [
            f"{rule.predicate} {rule.argument} => {rule.decision}".replace("  ", " ")
            for rule in self.rules
        ]
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "PacFile":
        """Parse the DSL (raises ``ValueError`` on malformed lines)."""
        rules = []
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            head, sep, decision = line.partition("=>")
            if not sep:
                raise ValueError(f"PAC line {line_number}: missing '=>'")
            parts = head.split(None, 1)
            predicate = parts[0]
            argument = parts[1].strip() if len(parts) > 1 else ""
            if predicate not in ("dnsDomainIs", "shExpMatch", "isInNet", "default"):
                raise ValueError(
                    f"PAC line {line_number}: unknown predicate {predicate!r}"
                )
            rules.append(
                PacRule(
                    predicate=predicate,
                    argument=argument,
                    decision=decision.strip(),
                )
            )
        return cls(rules=tuple(rules))


def proxy_candidates(decision: str) -> tuple[str | None, ...]:
    """Every entry of a PAC decision, in failover order.

    ``PROXY a:80; PROXY b:80; DIRECT`` yields ``(a, b, None)`` — real
    browsers walk this list when a proxy is unreachable, which is
    exactly the failover :class:`repro.idicn.client.Browser` performs.
    ``None`` entries mean DIRECT; duplicate consecutive separators and
    surrounding whitespace are tolerated.
    """
    candidates: list[str | None] = []
    for part in decision.split(";"):
        entry = part.strip()
        if not entry:
            continue
        if entry.upper() == DIRECT:
            candidates.append(None)
            continue
        kind, _, target = entry.partition(" ")
        if kind.upper() != "PROXY" or not target.strip():
            raise ValueError(f"unparseable PAC decision {decision!r}")
        candidates.append(target.strip().split(":")[0])
    if not candidates:
        raise ValueError(f"empty PAC decision {decision!r}")
    return tuple(candidates)


def proxy_address(decision: str) -> str | None:
    """Extract the proxy address from a PAC decision (None for DIRECT).

    Decisions look like ``PROXY 10.0.0.2:80`` or ``PROXY 10.0.0.2``;
    fallback lists (``PROXY a; PROXY b``) yield the first entry — use
    :func:`proxy_candidates` for the full failover list.
    """
    return proxy_candidates(decision)[0]


def discover_pac_url(host: Host, subnet: str, dns: DnsClient | None = None) -> str | None:
    """WPAD discovery: DHCP option first, then the ``wpad`` DNS name."""
    options = host.net.dhcp_options(subnet)
    url = options.get(DHCP_PAC_OPTION)
    if url:
        return url
    if dns is not None:
        address = dns.resolve("wpad")
        if address is not None:
            return f"http://{address}/wpad.dat"
    return None


def fetch_pac(host: Host, pac_url: str) -> PacFile | None:
    """Fetch and parse the PAC file; None on any failure."""
    server, _ = http.split_url(pac_url)
    try:
        response = host.call(server, HTTP_PORT, http.get(pac_url))
    except SimNetError:
        return None
    if not response.ok:
        return None
    try:
        return PacFile.parse(response.body.decode())
    except (ValueError, UnicodeDecodeError):
        return None


def autodiscover(
    host: Host, subnet: str, dns: DnsClient | None = None
) -> PacFile | None:
    """Full WPAD flow: discover the PAC URL, fetch it, parse it."""
    pac_url = discover_pac_url(host, subnet, dns)
    if pac_url is None:
        return None
    return fetch_pac(host, pac_url)
