"""idICN: the incrementally deployable ICN design of Section 6.

An application-layer ICN over HTTP: self-certifying names under
``.idicn.org``, Metalink content metadata with publisher signatures,
WPAD/PAC proxy auto-configuration, an SFR-style flat name resolution
system, Zeroconf/mDNS ad hoc sharing, and dynamic-DNS mobility — all
running on a deterministic simulated network (:mod:`repro.idicn.simnet`).
"""

from .adhoc import AdHocCacheProxy, join_adhoc_network
from .client import Browser, VerificationError
from .crypto import KeyPair, PublicKey, generate_keypair, sha256_hex, sign, verify
from .deployment import ClientDomain, Deployment, Provider, build_deployment
from .dns import DnsClient, DnsQuery, DnsServer, DnsUpdate
from .faults import FaultEvent, FaultPlane, HazardWindow, Outage
from .http import (
    STALE_WARNING,
    HttpRequest,
    HttpResponse,
    is_shed,
    is_stale,
    mark_stale,
    retry_after_seconds,
    service_unavailable,
)
from .metalink import METALINK_HEADER, Metalink, build_metalink, verify_metalink
from .mobility import DownloadResult, MobileServer, ResumingDownloader
from .names import (
    FINGERPRINT_CHARS,
    IDICN_SUFFIX,
    IcnName,
    is_idicn_domain,
    make_name,
    name_matches_key,
    parse_domain,
    principal_of,
)
from .origin import OriginServer
from .overload import (
    AdmissionControl,
    OverloadPolicy,
    PendingInterestTable,
    PitEntry,
)
from .proxy import EdgeProxy
from .resolution import (
    NameResolutionSystem,
    RegisterRequest,
    ResolutionClient,
    ResolveRequest,
    make_registration,
)
from .retry import Retrier, RetryPolicy
from .reverse_proxy import ReverseProxy
from .scenarios import FlashCrowdResult, FlashCrowdScenario, run_flash_crowd
from .simnet import (
    ARP_PORT,
    DNS_PORT,
    HTTP_PORT,
    MDNS_PORT,
    RESOLVER_PORT,
    AddressInUseError,
    DroppedMessageError,
    EventScheduler,
    Host,
    HostDownError,
    HostQueue,
    InjectedCallError,
    InjectedFaultError,
    LinkSpec,
    NoRouteError,
    NoServiceError,
    QueueOverflowError,
    SimNet,
    SimNetError,
    Subnet,
)
from .wpad import (
    DHCP_PAC_OPTION,
    DIRECT,
    PacFile,
    PacRule,
    autodiscover,
    discover_pac_url,
    fetch_pac,
    proxy_address,
    proxy_candidates,
)
from .zeroconf import (
    LINK_LOCAL_PREFIX,
    MdnsResponder,
    claim_link_local_address,
    is_link_local,
    mdns_resolve,
)

__all__ = [
    "ARP_PORT",
    "AdHocCacheProxy",
    "AddressInUseError",
    "AdmissionControl",
    "Browser",
    "ClientDomain",
    "DHCP_PAC_OPTION",
    "DIRECT",
    "DNS_PORT",
    "Deployment",
    "DnsClient",
    "DnsQuery",
    "DnsServer",
    "DnsUpdate",
    "DownloadResult",
    "DroppedMessageError",
    "EdgeProxy",
    "EventScheduler",
    "FINGERPRINT_CHARS",
    "FaultEvent",
    "FaultPlane",
    "FlashCrowdResult",
    "FlashCrowdScenario",
    "HTTP_PORT",
    "HazardWindow",
    "Host",
    "HostDownError",
    "HostQueue",
    "HttpRequest",
    "HttpResponse",
    "IDICN_SUFFIX",
    "IcnName",
    "InjectedCallError",
    "InjectedFaultError",
    "KeyPair",
    "LINK_LOCAL_PREFIX",
    "LinkSpec",
    "MDNS_PORT",
    "METALINK_HEADER",
    "MdnsResponder",
    "Metalink",
    "MobileServer",
    "NameResolutionSystem",
    "NoRouteError",
    "NoServiceError",
    "OriginServer",
    "Outage",
    "OverloadPolicy",
    "PacFile",
    "PacRule",
    "PendingInterestTable",
    "PitEntry",
    "Provider",
    "PublicKey",
    "QueueOverflowError",
    "RESOLVER_PORT",
    "RegisterRequest",
    "ResolutionClient",
    "ResolveRequest",
    "ResumingDownloader",
    "Retrier",
    "RetryPolicy",
    "ReverseProxy",
    "STALE_WARNING",
    "SimNet",
    "SimNetError",
    "Subnet",
    "VerificationError",
    "autodiscover",
    "build_deployment",
    "build_metalink",
    "claim_link_local_address",
    "discover_pac_url",
    "fetch_pac",
    "generate_keypair",
    "is_idicn_domain",
    "is_link_local",
    "is_shed",
    "is_stale",
    "join_adhoc_network",
    "make_name",
    "make_registration",
    "mark_stale",
    "mdns_resolve",
    "name_matches_key",
    "parse_domain",
    "principal_of",
    "proxy_address",
    "proxy_candidates",
    "retry_after_seconds",
    "run_flash_crowd",
    "service_unavailable",
    "sha256_hex",
    "sign",
    "verify",
    "verify_metalink",
]
