"""Flash-crowd scenario driver: overload resilience, end to end.

Section 7 of the paper argues that retaining edge caches retains the
flood resilience of "pure" ICN.  This module turns that claim into a
runnable experiment: a seeded flash-crowd schedule (see
:func:`repro.workload.temporal.flash_crowd_profile`) is compiled onto
the event-driven :class:`repro.idicn.simnet.EventScheduler` against a
full deployment, and every request's fate is classified against the
degradation ladder — served fresh, served stale (Warning 110), shed
(503 + Retry-After, optionally retried after the hint), or failed.

The same driver powers the EDGE-vs-ICN-NR comparison
(``configure_browsers`` toggled via :attr:`FlashCrowdScenario.direct`),
the PIT-coalescing ablation (``OverloadPolicy(coalesce=False)``), and
the chaos smoke test (fault hazards scheduled around the burst).

Everything is a pure function of the seed: the schedule, fault draws,
and retry jitter all flow through seeded generators, and the event loop
breaks ties by insertion order — two runs with one seed produce
byte-identical metrics snapshots.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..workload.temporal import FlashCrowdProfile, flash_crowd_profile
from . import http
from .deployment import Deployment, build_deployment
from .faults import FaultPlane
from .overload import OverloadPolicy
from .retry import RetryPolicy
from .simnet import EventScheduler, QueueOverflowError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry
    from ..obs.spans import SpanTracker


@dataclass(frozen=True)
class FlashCrowdScenario:
    """Every knob of one flash-crowd run, bundled for reproducibility.

    ``direct=True`` is the ICN-NR arm: browsers skip WPAD and go
    straight to the reverse proxy via DNS, so the crowd lands on the
    provider instead of the AD edge.  ``shed_retries`` is how many
    times a client honours a 503's Retry-After before giving up.
    ``error_rate``/``drop_rate`` arm a fault hazard window around the
    burst (overload *under failure* — the chaos configuration).
    """

    num_requests: int = 2000
    duration: float = 60.0
    intensity: float = 20.0
    num_objects: int = 50
    alpha: float = 0.8
    hot_fraction: float = 0.8
    regional_correlation: float = 0.5
    num_domains: int = 2
    browsers_per_domain: int = 2
    proxy_capacity: int = 64
    max_age: float = 1.0
    content_bytes: int = 512
    direct: bool = False
    shed_retries: int = 1
    seed: int = 2013
    overload: OverloadPolicy = OverloadPolicy()
    retry_policy: RetryPolicy | None = None
    error_rate: float = 0.0
    drop_rate: float = 0.0
    key_bits: int = 256

    def __post_init__(self) -> None:
        if self.num_domains < 1:
            raise ValueError("num_domains must be >= 1")
        if self.shed_retries < 0:
            raise ValueError("shed_retries must be >= 0")
        if self.content_bytes < 1:
            raise ValueError("content_bytes must be >= 1")


@dataclass
class FlashCrowdResult:
    """What happened: per-request fates, ladder counters, load, latency.

    ``ok + stale + shed + failed == num_requests`` (each request is
    classified exactly once, after any honoured Retry-After).  Latency
    is completion clock minus the *original* arrival, so a shed-then-
    retried request pays for its displacement.
    """

    num_requests: int
    ok: int = 0
    stale: int = 0
    shed: int = 0
    failed: int = 0
    #: 503s whose Retry-After the client honoured (re-scheduled).
    retried: int = 0
    #: Every 503 the proxies issued (``shed`` counts only the final,
    #: un-retried ones a client saw).
    shed_responses: int = 0
    coalesced: int = 0
    negative_coalesced: int = 0
    stale_failover: int = 0
    stale_overload: int = 0
    proxy_hits: int = 0
    proxy_misses: int = 0
    revalidations: int = 0
    #: Requests the reverse proxy actually served (upstream load).
    upstream_requests: int = 0
    origin_fetches: int = 0
    queue_overflows: int = 0
    peak_queue_depth: int = 0
    injected_faults: int = 0
    events_run: int = 0
    sim_duration: float = 0.0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def completed(self) -> int:
        """Requests classified (should equal ``num_requests``)."""
        return self.ok + self.stale + self.shed + self.failed

    def to_dict(self) -> dict:
        """JSON-ready summary (drops the raw latency list)."""
        data = asdict(self)
        del data["latencies"]
        return data


def _deployment_probes(deployment: Deployment) -> list[tuple[str, object]]:
    """Deterministic span probes: PIT occupancy and queue depth.

    One probe per edge proxy's PIT and host queue, keyed by domain and
    proxy index, plus the providers' reverse-proxy PITs.  Every value
    read is simulated state (table sizes, queue depths), never a clock.
    """
    probes: list[tuple[str, object]] = []

    def pit_probe(pit):
        return lambda: float(pit.live_entries)

    def depth_probe(queue):
        return lambda: float(queue.last_depth)

    for index, domain in enumerate(deployment.domains):
        for p_index, proxy in enumerate(domain.proxies):
            if proxy.pit is not None:
                probes.append(
                    (f"pit_domain{index}_proxy{p_index}",
                     pit_probe(proxy.pit))
                )
            if proxy.host.queue is not None:
                probes.append(
                    (f"queue_domain{index}_proxy{p_index}",
                     depth_probe(proxy.host.queue))
                )
    for index, provider in enumerate(deployment.providers):
        reverse = getattr(provider, "reverse_proxy", None)
        pit = getattr(reverse, "pit", None)
        if pit is not None:
            probes.append((f"pit_provider{index}", pit_probe(pit)))
    return probes


def _object_content(index: int, size: int) -> bytes:
    """Deterministic, distinct content for object ``index``."""
    stamp = f"obj-{index}:".encode()
    return (stamp * (size // len(stamp) + 1))[:size]


def run_flash_crowd(
    scenario: FlashCrowdScenario,
    *,
    seed: int | None = None,
    registry: "MetricsRegistry | None" = None,
    spans: "SpanTracker | None" = None,
) -> FlashCrowdResult:
    """Run one flash crowd against a fresh deployment; fully seeded.

    ``seed`` overrides the scenario's seed (for two-run determinism
    checks); ``registry`` threads a metrics sink through every
    component — passing ``None`` must not change any outcome.
    ``spans`` attaches a span tracker to the event scheduler with
    per-proxy PIT-occupancy and queue-depth probes; all observed values
    are simulated state, so traced runs replay byte-identically.
    """
    effective_seed = scenario.seed if seed is None else seed
    rng = np.random.default_rng(seed if seed is not None else scenario.seed)
    profile = flash_crowd_profile(
        scenario.num_requests,
        scenario.duration,
        rng,
        intensity=scenario.intensity,
        num_objects=scenario.num_objects,
        alpha=scenario.alpha,
        hot_fraction=scenario.hot_fraction,
        num_regions=scenario.num_domains,
        regional_correlation=scenario.regional_correlation,
    )
    deployment = build_deployment(
        num_domains=scenario.num_domains,
        browsers_per_domain=scenario.browsers_per_domain,
        proxy_capacity=scenario.proxy_capacity,
        key_bits=scenario.key_bits,
        retry_policy=scenario.retry_policy,
        overload=scenario.overload,
        registry=registry,
        configure_browsers=not scenario.direct,
        provider_max_age=scenario.max_age,
    )
    provider = deployment.providers[0]
    urls = [
        "http://"
        + provider.publish(
            f"obj-{k}", _object_content(k, scenario.content_bytes)
        )
        + "/"
        for k in range(scenario.num_objects)
    ]

    plane: FaultPlane | None = None
    if scenario.error_rate > 0.0 or scenario.drop_rate > 0.0:
        plane = FaultPlane(
            deployment.net, seed=effective_seed + 1, registry=registry
        )
        window_start = max(0.0, profile.burst_time - scenario.duration / 10.0)
        window_end = min(
            scenario.duration, profile.burst_time + scenario.duration / 5.0
        )
        if scenario.error_rate > 0.0:
            plane.schedule_hazard(
                "error", window_start, window_end, scenario.error_rate
            )
        if scenario.drop_rate > 0.0:
            plane.schedule_hazard(
                "drop", window_start, window_end, scenario.drop_rate
            )

    net = deployment.net
    probes: list[tuple[str, object]] = []
    if spans is not None:
        probes = _deployment_probes(deployment)
    scheduler = EventScheduler(net, spans=spans, probes=tuple(probes))
    result = FlashCrowdResult(num_requests=profile.num_requests)

    def dispatch(browser, url: str, arrival: float, attempt: int):
        def fire() -> None:
            try:
                response = browser.get(url)
            except QueueOverflowError:
                # Transport-level shed before the browser's failover
                # machinery could soften it (direct mode, no retries).
                result.failed += 1
                result.latencies.append(net.clock - arrival)
                return
            if http.is_shed(response) and attempt < scenario.shed_retries:
                # Honour Retry-After: the retry lands past the burst.
                result.retried += 1
                delay = http.retry_after_seconds(response) or 1.0
                scheduler.after(delay, dispatch(browser, url, arrival,
                                                attempt + 1))
                return
            if http.is_shed(response):
                result.shed += 1
            elif response.ok and http.is_stale(response):
                result.stale += 1
            elif response.ok:
                result.ok += 1
            else:
                result.failed += 1
            result.latencies.append(net.clock - arrival)

        return fire

    for i in range(profile.num_requests):
        domain = deployment.domains[int(profile.regions[i])]
        browser = domain.browsers[i % len(domain.browsers)]
        when = float(profile.times[i])
        scheduler.at(when, dispatch(browser, urls[int(profile.objects[i])],
                                    when, 0))
    result.events_run = scheduler.run()

    _collect(result, deployment, plane)
    if result.latencies:
        samples = np.asarray(result.latencies)
        result.p50_latency = float(np.percentile(samples, 50))
        result.p99_latency = float(np.percentile(samples, 99))
    result.sim_duration = net.clock
    return result


def _collect(
    result: FlashCrowdResult,
    deployment: Deployment,
    plane: FaultPlane | None,
) -> None:
    """Fold component counters into the result."""
    proxies = [p for d in deployment.domains for p in d.proxies]
    rp = deployment.providers[0].reverse_proxy
    result.coalesced = sum(p.coalesced for p in proxies) + rp.coalesced
    result.negative_coalesced = sum(p.negative_coalesced for p in proxies)
    result.stale_failover = sum(
        p.stale_reasons["failover"] for p in proxies
    )
    result.stale_overload = sum(
        p.stale_reasons["overload"] for p in proxies
    )
    result.shed_responses = sum(p.shed for p in proxies)
    result.proxy_hits = sum(p.hits for p in proxies)
    result.proxy_misses = sum(p.misses for p in proxies)
    result.revalidations = sum(p.revalidations for p in proxies)
    result.upstream_requests = rp.requests_served
    result.origin_fetches = rp.origin_fetches
    queues = [
        host.queue
        for host in [p.host for p in proxies] + [rp.host]
        if host.queue is not None
    ]
    result.queue_overflows = sum(q.overflows for q in queues)
    result.peak_queue_depth = max(
        (q.peak_depth for q in queues), default=0
    )
    result.injected_faults = plane.injected_faults if plane else 0
