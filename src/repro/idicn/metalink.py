"""Metalink metadata (Section 6.1, RFC 6249-style).

The reverse proxy attaches a Metalink description to each response: the
content hash, size, mirror locations, the publisher's public key, and an
RSA signature over (name, hash).  Metalink-aware clients and proxies use
it to verify authenticity/integrity and to discover mirrors; legacy
clients ignore the extra headers.  We serialize to a small XML document
(mirroring the Metalink download-description format) and also to HTTP
headers.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from .crypto import KeyPair, PublicKey, sha256_hex, sign, verify
from .names import IcnName

#: HTTP header carrying the serialized Metalink description.
METALINK_HEADER = "x-metalink"


@dataclass(frozen=True)
class Metalink:
    """A download description binding a name to content and mirrors."""

    name: str
    content_hash: str
    size: int
    publisher_key: str
    signature: str
    mirrors: tuple[str, ...] = field(default=())

    def signed_payload(self) -> bytes:
        """The byte string the signature covers (name + content hash)."""
        return _signed_payload(self.name, self.content_hash)

    def to_xml(self) -> str:
        """Serialize as a Metalink-style XML document."""
        root = ET.Element("metalink", {"xmlns": "urn:ietf:params:xml:ns:metalink"})
        file_el = ET.SubElement(root, "file", {"name": self.name})
        ET.SubElement(file_el, "size").text = str(self.size)
        ET.SubElement(file_el, "hash", {"type": "sha-256"}).text = self.content_hash
        ET.SubElement(file_el, "publisher-key").text = self.publisher_key
        ET.SubElement(file_el, "signature", {"mediatype": "application/rsa"}).text = (
            self.signature
        )
        for priority, mirror in enumerate(self.mirrors, start=1):
            ET.SubElement(
                file_el, "url", {"priority": str(priority)}
            ).text = mirror
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, document: str) -> "Metalink":
        """Parse the XML serialization (raises ``ValueError`` if malformed)."""
        try:
            root = ET.fromstring(document)
        except ET.ParseError as exc:
            raise ValueError(f"malformed metalink XML: {exc}") from exc
        ns = "{urn:ietf:params:xml:ns:metalink}"
        file_el = root.find(f"{ns}file")
        if file_el is None:
            raise ValueError("metalink XML has no <file> element")

        def text(tag: str) -> str:
            el = file_el.find(f"{ns}{tag}")
            if el is None or el.text is None:
                raise ValueError(f"metalink XML missing <{tag}>")
            return el.text

        mirrors = tuple(
            el.text
            for el in sorted(
                file_el.findall(f"{ns}url"),
                key=lambda el: int(el.get("priority", "0")),
            )
            if el.text
        )
        return cls(
            name=file_el.get("name", ""),
            content_hash=text("hash"),
            size=int(text("size")),
            publisher_key=text("publisher-key"),
            signature=text("signature"),
            mirrors=mirrors,
        )


def _signed_payload(name: str, content_hash: str) -> bytes:
    return f"idicn-metalink:{name}:{content_hash}".encode()


def build_metalink(
    name: IcnName,
    content: bytes,
    keypair: KeyPair,
    mirrors: tuple[str, ...] = (),
) -> Metalink:
    """Create and sign the Metalink description for ``content``."""
    content_hash = sha256_hex(content)
    return Metalink(
        name=name.flat,
        content_hash=content_hash,
        size=len(content),
        publisher_key=keypair.public.to_bytes().decode(),
        signature=sign(_signed_payload(name.flat, content_hash), keypair),
        mirrors=mirrors,
    )


def verify_metalink(metalink: Metalink, content: bytes) -> bool:
    """Full content-oriented verification.

    Checks (1) the content hash matches the bytes actually delivered and
    (2) the signature over (name, hash) verifies under the embedded
    publisher key.  Callers must separately check the key binds to the
    name's ``P`` via :func:`repro.idicn.names.name_matches_key`.
    """
    if sha256_hex(content) != metalink.content_hash:
        return False
    try:
        public = PublicKey.from_bytes(metalink.publisher_key.encode())
    except (ValueError, UnicodeDecodeError):
        return False
    return verify(metalink.signed_payload(), metalink.signature, public)
