"""Origin server: the content provider's HTTP server (Figure 11).

Stores content by label, serves it over HTTP (step 5 of the request
flow), and publishes new content through its reverse proxy (step P1) —
the reverse proxy handles naming, signing, and registration (step P2).
"""

from __future__ import annotations

from . import http
from .simnet import HTTP_PORT, Host


class OriginServer:
    """A content provider's origin."""

    def __init__(self, host: Host):
        self.host = host
        self._content: dict[str, bytes] = {}
        self.requests_served = 0
        host.bind(HTTP_PORT, self._serve)

    def store(self, label: str, content: bytes) -> None:
        """Add (or update) a content object under ``label``."""
        self._content[label] = content

    def labels(self) -> tuple[str, ...]:
        """All stored content labels."""
        return tuple(sorted(self._content))

    def content(self, label: str) -> bytes | None:
        """Raw bytes for ``label`` (None when absent)."""
        return self._content.get(label)

    def _serve(self, host: Host, src: str, payload: object) -> http.HttpResponse:
        if not isinstance(payload, http.HttpRequest):
            raise TypeError("origin server only speaks HTTP")
        if payload.method != "GET":
            return http.HttpResponse(status=405, body=b"method not allowed")
        label = payload.path.lstrip("/")
        body = self._content.get(label)
        if body is None:
            return http.not_found(f"no content for label {label!r}")
        self.requests_served += 1
        byte_range = payload.byte_range()
        if byte_range is not None:
            return http.apply_byte_range(body, byte_range)
        return http.ok(body)
