"""Deterministic in-process network for the idICN prototype.

The paper's Section 6 prototype runs over real HTTP/DNS/mDNS; we
substitute a simulated network so the protocol logic (WPAD discovery,
name resolution, signature verification, mDNS fallback, mobility) can be
exercised deterministically and offline (see DESIGN.md).

The model is deliberately simple: hosts attach to *subnets*, get an
address per subnet, and expose services on numbered ports.  Delivery is
synchronous — ``call`` invokes the destination handler and returns its
response — plus subnet-scoped ``multicast`` for the Zeroconf machinery.
Hosts can be partitioned to inject failures.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

Handler = Callable[["Host", str, Any], Any]


class SimNetError(Exception):
    """Base class for simulated-network failures."""


class NoRouteError(SimNetError):
    """No reachable host owns the destination address."""


class HostDownError(SimNetError):
    """The destination host is partitioned/offline."""


class NoServiceError(SimNetError):
    """The destination host has nothing bound on that port."""


class AddressInUseError(SimNetError):
    """Another host already claimed the address on this subnet."""


class InjectedFaultError(SimNetError):
    """Base class for failures injected by a fault plane."""


class DroppedMessageError(InjectedFaultError):
    """The fault plane silently dropped the message (a timeout)."""


class InjectedCallError(InjectedFaultError):
    """The fault plane made the call fail with an explicit error."""


@dataclass
class Subnet:
    """One broadcast domain with optional DHCP-style options.

    ``routed`` subnets are globally reachable from any other routed
    subnet (ordinary Internet routing); unrouted subnets model
    link-local scopes (169.254/16) that only same-subnet hosts reach.
    """

    name: str
    prefix: str
    dhcp_options: dict[str, str] = field(default_factory=dict)
    hosts: dict[str, "Host"] = field(default_factory=dict)
    next_suffix: int = 1
    routed: bool = True

    def allocate_address(self) -> str:
        """Next free DHCP-style address on this subnet.

        Addresses already claimed (statically attached hosts, earlier
        allocations) are skipped, so a DHCP lease can never silently
        displace an existing host from ``hosts``.
        """
        while True:
            address = f"{self.prefix}.{self.next_suffix}"
            self.next_suffix += 1
            if address not in self.hosts:
                return address


class Host:
    """A network endpoint with per-subnet addresses and port handlers."""

    def __init__(self, net: "SimNet", name: str):
        self.net = net
        self.name = name
        self.addresses: dict[str, str] = {}
        self.services: dict[int, Handler] = {}
        self.online = True

    def bind(self, port: int, handler: Handler) -> None:
        """Expose ``handler(host, src_address, payload)`` on ``port``."""
        self.services[port] = handler

    def unbind(self, port: int) -> None:
        """Stop serving ``port`` (missing port is a no-op)."""
        self.services.pop(port, None)

    def address_on(self, subnet: str) -> str:
        """This host's address on ``subnet`` (raises if not attached)."""
        try:
            return self.addresses[subnet]
        except KeyError:
            raise SimNetError(
                f"host {self.name!r} is not attached to subnet {subnet!r}"
            ) from None

    @property
    def address(self) -> str:
        """The host's only address (raises unless exactly one)."""
        if len(self.addresses) != 1:
            raise SimNetError(
                f"host {self.name!r} has {len(self.addresses)} addresses; "
                "use address_on(subnet)"
            )
        return next(iter(self.addresses.values()))

    def call(self, dst_address: str, port: int, payload: Any) -> Any:
        """Send a request to ``dst_address:port`` and return the response."""
        return self.net.call(self, dst_address, port, payload)

    def multicast(self, subnet: str, port: int, payload: Any) -> list[tuple[str, Any]]:
        """Query every other host on ``subnet``; collect non-None replies."""
        return self.net.multicast(self, subnet, port, payload)

    def __repr__(self) -> str:
        return f"Host({self.name!r}, addresses={self.addresses})"


class SimNet:
    """The network fabric: subnets, hosts, and message accounting."""

    def __init__(self) -> None:
        self.subnets: dict[str, Subnet] = {}
        self.hosts: dict[str, Host] = {}
        #: Unicast delivery accounting.  ``attempted`` counts every
        #: ``call`` entered, ``delivered`` the calls whose handler ran
        #: and returned, ``failed`` the calls that raised a
        #: :class:`SimNetError` (routing, partition, injected fault).
        self.messages_attempted = 0
        self.messages_delivered = 0
        self.messages_failed = 0
        self.multicasts_sent = 0
        #: Optional :class:`repro.idicn.faults.FaultPlane` consulted on
        #: every delivery; ``None`` means a perfectly healthy network.
        self.fault_plane = None
        #: Logical wall clock in seconds, advanced explicitly by tests
        #: and scenarios; used for HTTP cache freshness.
        self.clock = 0.0

    @property
    def messages_sent(self) -> int:
        """Legacy alias: every unicast send attempt (see ``messages_attempted``)."""
        return self.messages_attempted

    def advance(self, seconds: float) -> float:
        """Advance the logical clock (e.g. to age cached content)."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.clock += seconds
        return self.clock

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def create_subnet(
        self,
        name: str,
        prefix: str,
        dhcp_options: dict[str, str] | None = None,
        routed: bool = True,
    ) -> Subnet:
        """Add a broadcast domain (prefix like ``10.0.0``).

        Pass ``routed=False`` for link-local scopes that must not be
        reachable from other subnets (the ad hoc mode).
        """
        if name in self.subnets:
            raise ValueError(f"subnet {name!r} already exists")
        subnet = Subnet(
            name=name,
            prefix=prefix,
            dhcp_options=dhcp_options or {},
            routed=routed,
        )
        self.subnets[name] = subnet
        return subnet

    def create_host(self, name: str, subnet: str | None = None) -> Host:
        """Add a host, optionally attaching it to ``subnet`` via DHCP."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        host = Host(self, name)
        self.hosts[name] = host
        if subnet is not None:
            self.attach(host, subnet)
        return host

    def attach(self, host: Host, subnet: str, address: str | None = None) -> str:
        """Attach ``host`` to ``subnet``; DHCP-allocate unless given.

        Self-assigned addresses (Zeroconf link-local) raise
        :class:`AddressInUseError` on conflict, mimicking an ARP-probe
        failure.
        """
        net = self._subnet(subnet)
        if address is None:
            address = net.allocate_address()
        elif address in net.hosts:
            raise AddressInUseError(f"{address} already claimed on {subnet}")
        net.hosts[address] = host
        host.addresses[subnet] = address
        return address

    def detach(self, host: Host, subnet: str) -> None:
        """Remove ``host`` from ``subnet`` (e.g. the laptop left the cafe)."""
        net = self._subnet(subnet)
        address = host.addresses.pop(subnet, None)
        if address is not None:
            net.hosts.pop(address, None)

    def set_online(self, host: Host, online: bool) -> None:
        """Partition or heal a host."""
        host.online = online

    def install_faults(self, plane) -> None:
        """Attach a :class:`repro.idicn.faults.FaultPlane` to this network."""
        self.fault_plane = plane
        if plane is not None:
            plane.net = self

    def host_is_up(self, host: Host) -> bool:
        """Whether ``host`` is online and outside any scheduled outage."""
        if not host.online:
            return False
        plane = self.fault_plane
        return plane is None or not plane.host_down(host.name, self.clock)

    def dhcp_options(self, subnet: str) -> dict[str, str]:
        """DHCP options announced on ``subnet`` (e.g. the WPAD PAC URL)."""
        return dict(self._subnet(subnet).dhcp_options)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def call(self, src: Host, dst_address: str, port: int, payload: Any) -> Any:
        """Synchronous unicast request/response.

        Every entry bumps ``messages_attempted``; a handler that runs to
        completion bumps ``messages_delivered``, any
        :class:`SimNetError` (including injected faults) bumps
        ``messages_failed`` — so retry overhead is visible as
        ``attempted - delivered``.
        """
        self.messages_attempted += 1
        try:
            response = self._deliver(src, dst_address, port, payload)
        except SimNetError:
            self.messages_failed += 1
            raise
        self.messages_delivered += 1
        return response

    def _deliver(self, src: Host, dst_address: str, port: int, payload: Any) -> Any:
        if not self.host_is_up(src):
            raise HostDownError(f"source host {src.name!r} is offline")
        dst, subnet = self._locate(dst_address)
        if subnet in src.addresses:
            src_address = src.addresses[subnet]
        elif self.subnets[subnet].routed:
            # Ordinary inter-subnet routing: any routed interface of the
            # source can reach a routed destination address.
            src_address = next(
                (
                    address
                    for sub, address in src.addresses.items()
                    if self.subnets[sub].routed
                ),
                None,
            )
            if src_address is None:
                raise NoRouteError(
                    f"{src.name!r} has no routed interface to reach "
                    f"{dst_address}"
                )
        else:
            raise NoRouteError(
                f"{dst_address} is link-local on {subnet!r}; "
                f"{src.name!r} is not attached"
            )
        if not self.host_is_up(dst):
            raise HostDownError(f"destination {dst.name!r} is offline")
        if self.fault_plane is not None:
            # May raise an injected fault or advance the clock (slow call).
            self.fault_plane.before_deliver(self, src, dst, port)
        handler = dst.services.get(port)
        if handler is None:
            raise NoServiceError(f"{dst.name!r} has no service on port {port}")
        return handler(dst, src_address, payload)

    def multicast(
        self, src: Host, subnet: str, port: int, payload: Any
    ) -> list[tuple[str, Any]]:
        """Subnet-scoped query; returns ``(address, response)`` replies.

        Hosts without the service, offline hosts, and ``None`` responses
        are silently skipped — multicast queries are best-effort, like
        mDNS.
        """
        if not self.host_is_up(src):
            raise HostDownError(f"source host {src.name!r} is offline")
        if subnet not in src.addresses:
            raise NoRouteError(f"{src.name!r} is not attached to {subnet!r}")
        self.multicasts_sent += 1
        src_address = src.addresses[subnet]
        replies = []
        for address, host in sorted(self._subnet(subnet).hosts.items()):
            if host is src or not self.host_is_up(host):
                continue
            handler = host.services.get(port)
            if handler is None:
                continue
            response = handler(host, src_address, payload)
            if response is not None:
                replies.append((address, response))
        return replies

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _subnet(self, name: str) -> Subnet:
        try:
            return self.subnets[name]
        except KeyError:
            raise SimNetError(f"unknown subnet {name!r}") from None

    def _locate(self, address: str) -> tuple[Host, str]:
        for subnet_name, subnet in self.subnets.items():
            host = subnet.hosts.get(address)
            if host is not None:
                return host, subnet_name
        raise NoRouteError(f"no host owns address {address}")


#: Well-known ports used by the idICN components.
HTTP_PORT = 80
DNS_PORT = 53
MDNS_PORT = 5353
ARP_PORT = 2054
RESOLVER_PORT = 8053
