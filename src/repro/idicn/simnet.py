"""Deterministic in-process network for the idICN prototype.

The paper's Section 6 prototype runs over real HTTP/DNS/mDNS; we
substitute a simulated network so the protocol logic (WPAD discovery,
name resolution, signature verification, mDNS fallback, mobility) can be
exercised deterministically and offline (see DESIGN.md).

The model is deliberately simple: hosts attach to *subnets*, get an
address per subnet, and expose services on numbered ports.  Delivery is
synchronous — ``call`` invokes the destination handler and returns its
response — plus subnet-scoped ``multicast`` for the Zeroconf machinery.
Hosts can be partitioned to inject failures.

On top of the synchronous core sits an opt-in concurrency/overload
model (the "event-driven mode"):

* an :class:`EventScheduler` holds a heap of ``(time, seq, action)``
  events on the virtual clock — ties break by insertion sequence, so a
  given schedule replays byte-identically;
* a :class:`LinkSpec` per subnet charges propagation latency and
  body-size/bandwidth transfer time to the clock on every delivery;
* a :class:`HostQueue` per host bounds in-flight requests: a classic
  c-server FIFO (``concurrency`` servers, ``service_time`` each) with a
  hard ``capacity`` — admission past capacity raises
  :class:`QueueOverflowError`, and the depth observed at admission
  drives the proxies' graceful-degradation ladder.

When no scheduler runs, no links are configured, and no host has a
queue, behaviour is bit-identical to the original call-and-return
fabric — existing tests and scenarios are unchanged.

Because handlers execute serially, a scheduled event can fire with a
timestamp *behind* the serialized clock (its arrival overlapped a
previous event's processing).  The scheduler records each event's
arrival in ``SimNet.event_time``; the event's first delivery *to a
queued host* admits at that arrival time (unqueued infrastructure hops
such as DNS pass it through), so queue depth builds exactly as
overlapping arrivals would in a truly concurrent system.  Nested
upstream calls made *during* a handler admit at the current clock
(they happen "now").
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry
    from ..obs.spans import SpanTracker

Handler = Callable[["Host", str, Any], Any]


class SimNetError(Exception):
    """Base class for simulated-network failures."""


class NoRouteError(SimNetError):
    """No reachable host owns the destination address."""


class HostDownError(SimNetError):
    """The destination host is partitioned/offline."""


class NoServiceError(SimNetError):
    """The destination host has nothing bound on that port."""


class AddressInUseError(SimNetError):
    """Another host already claimed the address on this subnet."""


class InjectedFaultError(SimNetError):
    """Base class for failures injected by a fault plane."""


class DroppedMessageError(InjectedFaultError):
    """The fault plane silently dropped the message (a timeout)."""


class InjectedCallError(InjectedFaultError):
    """The fault plane made the call fail with an explicit error."""


class QueueOverflowError(SimNetError):
    """The destination host's bounded request queue is full.

    The transport-level shed: the host had more in-flight requests than
    its :class:`HostQueue` capacity, so the connection was refused at
    the door (before any application-level 503 could be produced).
    """


@dataclass(frozen=True)
class LinkSpec:
    """Per-subnet link costs charged to the virtual clock.

    ``latency`` is one-way propagation delay in simulated seconds,
    charged before the destination handler runs and again on the
    response; ``bandwidth`` (bytes per simulated second, ``None`` =
    infinite) additionally charges ``len(body) / bandwidth`` for the
    response payload.
    """

    latency: float = 0.0
    bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("link latency must be >= 0")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("link bandwidth must be > 0 (or None)")

    def transfer_seconds(self, payload: Any) -> float:
        """Serialization time for ``payload`` (its ``body``, if any)."""
        if self.bandwidth is None:
            return 0.0
        body = getattr(payload, "body", b"")
        if not isinstance(body, (bytes, bytearray, str)):
            return 0.0
        return len(body) / self.bandwidth


class HostQueue:
    """A bounded c-server FIFO request queue for one host.

    Models ``concurrency`` parallel servers each taking ``service_time``
    simulated seconds per request, with at most ``capacity`` requests in
    the system (waiting + in service).  :meth:`admit` either returns the
    request's service start time or raises :class:`QueueOverflowError`.

    The queue is deliberately *always bounded* — an unbounded queue
    under overload is an unbounded wait (lint rule R601).
    """

    def __init__(
        self,
        capacity: int,
        concurrency: int = 1,
        service_time: float = 0.0,
        host: str = "",
        registry: "MetricsRegistry | None" = None,
    ):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if concurrency < 1:
            raise ValueError("queue concurrency must be >= 1")
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        self.capacity = capacity
        self.concurrency = concurrency
        self.service_time = service_time
        self.host = host
        #: Times at which each of the ``concurrency`` servers frees up.
        self._free: list[float] = [0.0] * concurrency
        heapq.heapify(self._free)
        #: Finish times of requests still in the system, pruned lazily.
        self._active: list[float] = []
        self.admitted = 0
        self.overflows = 0
        #: Depth observed at the most recent admission (including the
        #: admitted request) — what the degradation ladder reads.
        self.last_depth = 0
        self.peak_depth = 0
        #: Arrival time of the most recent admission.  Handlers run
        #: serially right after admission, so during a handler this is
        #: *the current request's* arrival — it lags the serialized
        #: clock by the backlog, which is how proxies see requests that
        #: arrived "while" an earlier fetch was in flight.
        self.last_arrival: float | None = None
        #: Optional mirror into
        #: ``repro_idicn_queue_events_total{host,event}``.
        self.registry = registry
        if registry is not None:
            for event in ("admitted", "overflow"):
                registry.counter(
                    "repro_idicn_queue_events_total",
                    help="per-host bounded-queue admissions and overflows",
                    host=host,
                    event=event,
                )

    def depth(self, now: float) -> int:
        """Requests in the system (waiting + in service) at ``now``."""
        self._prune(now)
        return len(self._active)

    def admit(self, arrival: float) -> float:
        """Admit a request arriving at ``arrival``; return its start time.

        Raises :class:`QueueOverflowError` when the system already holds
        ``capacity`` requests at the arrival instant.
        """
        self._prune(arrival)
        depth = len(self._active)
        if depth >= self.capacity:
            self.overflows += 1
            if self.registry is not None:
                self.registry.inc(
                    "repro_idicn_queue_events_total",
                    host=self.host,
                    event="overflow",
                )
            raise QueueOverflowError(
                f"host {self.host!r} queue full "
                f"({depth}/{self.capacity} in flight)"
            )
        start = max(arrival, heapq.heappop(self._free))
        finish = start + self.service_time
        heapq.heappush(self._free, finish)
        heapq.heappush(self._active, finish)
        self.admitted += 1
        self.last_depth = depth + 1
        self.last_arrival = arrival
        if self.last_depth > self.peak_depth:
            self.peak_depth = self.last_depth
        if self.registry is not None:
            self.registry.inc(
                "repro_idicn_queue_events_total",
                host=self.host,
                event="admitted",
            )
        return start

    def _prune(self, now: float) -> None:
        while self._active and self._active[0] <= now:
            heapq.heappop(self._active)


@dataclass
class Subnet:
    """One broadcast domain with optional DHCP-style options.

    ``routed`` subnets are globally reachable from any other routed
    subnet (ordinary Internet routing); unrouted subnets model
    link-local scopes (169.254/16) that only same-subnet hosts reach.
    """

    name: str
    prefix: str
    dhcp_options: dict[str, str] = field(default_factory=dict)
    hosts: dict[str, "Host"] = field(default_factory=dict)
    next_suffix: int = 1
    routed: bool = True
    #: Optional per-subnet link costs (event-driven mode); ``None``
    #: keeps delivery free, as in the original synchronous fabric.
    link: LinkSpec | None = None

    def allocate_address(self) -> str:
        """Next free DHCP-style address on this subnet.

        Addresses already claimed (statically attached hosts, earlier
        allocations) are skipped, so a DHCP lease can never silently
        displace an existing host from ``hosts``.
        """
        while True:
            address = f"{self.prefix}.{self.next_suffix}"
            self.next_suffix += 1
            if address not in self.hosts:
                return address


class Host:
    """A network endpoint with per-subnet addresses and port handlers."""

    def __init__(self, net: "SimNet", name: str):
        self.net = net
        self.name = name
        self.addresses: dict[str, str] = {}
        self.services: dict[int, Handler] = {}
        self.online = True
        #: Optional bounded request queue (event-driven mode); ``None``
        #: means unlimited concurrency with zero service time.
        self.queue: HostQueue | None = None

    def bind(self, port: int, handler: Handler) -> None:
        """Expose ``handler(host, src_address, payload)`` on ``port``."""
        self.services[port] = handler

    def unbind(self, port: int) -> None:
        """Stop serving ``port`` (missing port is a no-op)."""
        self.services.pop(port, None)

    def address_on(self, subnet: str) -> str:
        """This host's address on ``subnet`` (raises if not attached)."""
        try:
            return self.addresses[subnet]
        except KeyError:
            raise SimNetError(
                f"host {self.name!r} is not attached to subnet {subnet!r}"
            ) from None

    @property
    def address(self) -> str:
        """The host's only address (raises unless exactly one)."""
        if len(self.addresses) != 1:
            raise SimNetError(
                f"host {self.name!r} has {len(self.addresses)} addresses; "
                "use address_on(subnet)"
            )
        return next(iter(self.addresses.values()))

    def call(self, dst_address: str, port: int, payload: Any) -> Any:
        """Send a request to ``dst_address:port`` and return the response."""
        return self.net.call(self, dst_address, port, payload)

    def multicast(self, subnet: str, port: int, payload: Any) -> list[tuple[str, Any]]:
        """Query every other host on ``subnet``; collect non-None replies."""
        return self.net.multicast(self, subnet, port, payload)

    def __repr__(self) -> str:
        return f"Host({self.name!r}, addresses={self.addresses})"


class SimNet:
    """The network fabric: subnets, hosts, and message accounting."""

    def __init__(self) -> None:
        self.subnets: dict[str, Subnet] = {}
        self.hosts: dict[str, Host] = {}
        #: Unicast delivery accounting.  ``attempted`` counts every
        #: ``call`` entered, ``delivered`` the calls whose handler ran
        #: and returned, ``failed`` the calls that raised a
        #: :class:`SimNetError` (routing, partition, injected fault).
        self.messages_attempted = 0
        self.messages_delivered = 0
        self.messages_failed = 0
        self.multicasts_sent = 0
        #: Optional :class:`repro.idicn.faults.FaultPlane` consulted on
        #: every delivery; ``None`` means a perfectly healthy network.
        self.fault_plane = None
        #: Logical wall clock in seconds, advanced explicitly by tests
        #: and scenarios; used for HTTP cache freshness.
        self.clock = 0.0
        #: Arrival time of the event currently being delivered, set by
        #: :class:`EventScheduler` and consumed by the first delivery of
        #: the event (see module docstring); ``None`` outside events.
        self.event_time: float | None = None

    @property
    def messages_sent(self) -> int:
        """Legacy alias: every unicast send attempt (see ``messages_attempted``)."""
        return self.messages_attempted

    def advance(self, seconds: float) -> float:
        """Advance the logical clock (e.g. to age cached content)."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.clock += seconds
        return self.clock

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def create_subnet(
        self,
        name: str,
        prefix: str,
        dhcp_options: dict[str, str] | None = None,
        routed: bool = True,
    ) -> Subnet:
        """Add a broadcast domain (prefix like ``10.0.0``).

        Pass ``routed=False`` for link-local scopes that must not be
        reachable from other subnets (the ad hoc mode).
        """
        if name in self.subnets:
            raise ValueError(f"subnet {name!r} already exists")
        subnet = Subnet(
            name=name,
            prefix=prefix,
            dhcp_options=dhcp_options or {},
            routed=routed,
        )
        self.subnets[name] = subnet
        return subnet

    def create_host(self, name: str, subnet: str | None = None) -> Host:
        """Add a host, optionally attaching it to ``subnet`` via DHCP."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        host = Host(self, name)
        self.hosts[name] = host
        if subnet is not None:
            self.attach(host, subnet)
        return host

    def attach(self, host: Host, subnet: str, address: str | None = None) -> str:
        """Attach ``host`` to ``subnet``; DHCP-allocate unless given.

        Self-assigned addresses (Zeroconf link-local) raise
        :class:`AddressInUseError` on conflict, mimicking an ARP-probe
        failure.
        """
        net = self._subnet(subnet)
        if address is None:
            address = net.allocate_address()
        elif address in net.hosts:
            raise AddressInUseError(f"{address} already claimed on {subnet}")
        net.hosts[address] = host
        host.addresses[subnet] = address
        return address

    def detach(self, host: Host, subnet: str) -> None:
        """Remove ``host`` from ``subnet`` (e.g. the laptop left the cafe)."""
        net = self._subnet(subnet)
        address = host.addresses.pop(subnet, None)
        if address is not None:
            net.hosts.pop(address, None)

    def set_online(self, host: Host, online: bool) -> None:
        """Partition or heal a host."""
        host.online = online

    def install_faults(self, plane) -> None:
        """Attach a :class:`repro.idicn.faults.FaultPlane` to this network."""
        self.fault_plane = plane
        if plane is not None:
            plane.net = self

    def host_is_up(self, host: Host) -> bool:
        """Whether ``host`` is online and outside any scheduled outage."""
        if not host.online:
            return False
        plane = self.fault_plane
        return plane is None or not plane.host_down(host.name, self.clock)

    def dhcp_options(self, subnet: str) -> dict[str, str]:
        """DHCP options announced on ``subnet`` (e.g. the WPAD PAC URL)."""
        return dict(self._subnet(subnet).dhcp_options)

    def set_link(self, subnet: str, link: LinkSpec | None) -> None:
        """Attach (or clear) per-delivery link costs on ``subnet``."""
        self._subnet(subnet).link = link

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def call(self, src: Host, dst_address: str, port: int, payload: Any) -> Any:
        """Synchronous unicast request/response.

        Every entry bumps ``messages_attempted``; a handler that runs to
        completion bumps ``messages_delivered``, any
        :class:`SimNetError` (including injected faults) bumps
        ``messages_failed`` — so retry overhead is visible as
        ``attempted - delivered``.
        """
        self.messages_attempted += 1
        try:
            response = self._deliver(src, dst_address, port, payload)
        except SimNetError:
            self.messages_failed += 1
            raise
        self.messages_delivered += 1
        return response

    def _deliver(self, src: Host, dst_address: str, port: int, payload: Any) -> Any:
        if not self.host_is_up(src):
            raise HostDownError(f"source host {src.name!r} is offline")
        dst, subnet = self._locate(dst_address)
        if subnet in src.addresses:
            src_address = src.addresses[subnet]
        elif self.subnets[subnet].routed:
            # Ordinary inter-subnet routing: any routed interface of the
            # source can reach a routed destination address.
            src_address = next(
                (
                    address
                    for sub, address in src.addresses.items()
                    if self.subnets[sub].routed
                ),
                None,
            )
            if src_address is None:
                raise NoRouteError(
                    f"{src.name!r} has no routed interface to reach "
                    f"{dst_address}"
                )
        else:
            raise NoRouteError(
                f"{dst_address} is link-local on {subnet!r}; "
                f"{src.name!r} is not attached"
            )
        if not self.host_is_up(dst):
            raise HostDownError(f"destination {dst.name!r} is offline")
        if self.fault_plane is not None:
            # May raise an injected fault or advance the clock (slow call).
            self.fault_plane.before_deliver(self, src, dst, port)
        handler = dst.services.get(port)
        if handler is None:
            raise NoServiceError(f"{dst.name!r} has no service on port {port}")
        if dst.queue is not None:
            # The scheduled arrival applies to the event's first *queued*
            # hop — unqueued infrastructure hops (DNS, PAC) pass it
            # through untouched, and nested upstream hops made during a
            # handler admit at the serialized clock ("now").
            arrival = (
                self.event_time if self.event_time is not None else self.clock
            )
            self.event_time = None
            # May raise QueueOverflowError (counted as a failed message
            # by ``call``).  The clock advances to the end of service so
            # the handler runs "after processing"; nested upstream time
            # is an approximation not charged back to server occupancy.
            start = dst.queue.admit(arrival)
            finish = start + dst.queue.service_time
            if finish > self.clock:
                self.clock = finish
        link = self.subnets[subnet].link
        if link is not None and link.latency > 0:
            self.advance(link.latency)
        response = handler(dst, src_address, payload)
        if link is not None:
            cost = link.latency + link.transfer_seconds(response)
            if cost > 0:
                self.advance(cost)
        return response

    def multicast(
        self, src: Host, subnet: str, port: int, payload: Any
    ) -> list[tuple[str, Any]]:
        """Subnet-scoped query; returns ``(address, response)`` replies.

        Hosts without the service, offline hosts, and ``None`` responses
        are silently skipped — multicast queries are best-effort, like
        mDNS.
        """
        if not self.host_is_up(src):
            raise HostDownError(f"source host {src.name!r} is offline")
        if subnet not in src.addresses:
            raise NoRouteError(f"{src.name!r} is not attached to {subnet!r}")
        self.multicasts_sent += 1
        src_address = src.addresses[subnet]
        replies = []
        for address, host in sorted(self._subnet(subnet).hosts.items()):
            if host is src or not self.host_is_up(host):
                continue
            handler = host.services.get(port)
            if handler is None:
                continue
            response = handler(host, src_address, payload)
            if response is not None:
                replies.append((address, response))
        return replies

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _subnet(self, name: str) -> Subnet:
        try:
            return self.subnets[name]
        except KeyError:
            raise SimNetError(f"unknown subnet {name!r}") from None

    def _locate(self, address: str) -> tuple[Host, str]:
        for subnet_name, subnet in self.subnets.items():
            host = subnet.hosts.get(address)
            if host is not None:
                return host, subnet_name
        raise NoRouteError(f"no host owns address {address}")


class EventScheduler:
    """A seeded-friendly discrete-event loop over one :class:`SimNet`.

    Events are ``(time, seq, action)`` triples in a heap; ``seq`` is the
    insertion sequence number, so simultaneous events fire in the order
    they were scheduled — the tie-break that makes a schedule replay
    byte-identically.  ``run`` pops events in time order, advances the
    clock monotonically (``clock = max(clock, time)``), publishes the
    event's arrival in ``net.event_time`` for queue admission, and
    executes the action synchronously.

    Actions are plain zero-argument callables; anything they schedule
    via :meth:`at`/:meth:`after` joins the same heap.

    ``spans`` attaches an optional :class:`~repro.obs.spans.SpanTracker`:
    each :meth:`run` then emits a ``phase`` span (``drain-NNNN``)
    carrying per-event heap-depth observations plus whatever ``probes``
    sample — ``(name, callable)`` pairs read once per executed event
    (PIT occupancy, queue depth).  Every observed value is simulated
    state, never wall-clock, so traced schedules stay byte-identical
    across runs; with ``spans=None`` the loop executes exactly the
    untraced instruction stream (lint rule ``O502``).
    """

    def __init__(
        self,
        net: SimNet,
        spans: "SpanTracker | None" = None,
        probes: tuple[tuple[str, Callable[[], float]], ...] = (),
    ):
        self.net = net
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0
        self.events_run = 0
        self.spans = spans
        self.probes = tuple(probes)
        self._drains = 0

    @property
    def pending(self) -> int:
        """Events still waiting in the heap."""
        return len(self._heap)

    def at(self, time: float, action: Callable[[], Any]) -> None:
        """Schedule ``action`` at absolute virtual ``time``."""
        if time < 0:
            raise ValueError("event time must be >= 0")
        heapq.heappush(self._heap, (time, self._seq, action))
        self._seq += 1

    def after(self, delay: float, action: Callable[[], Any]) -> None:
        """Schedule ``action`` ``delay`` seconds after the current clock."""
        if delay < 0:
            raise ValueError("event delay must be >= 0")
        self.at(self.net.clock + delay, action)

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Drain the heap (optionally only events at ``time <= until``).

        Returns the number of events executed.  ``max_events`` bounds
        the loop so a self-rescheduling action cannot spin forever.
        """
        span = None
        if self.spans is not None:
            span = self.spans.open(f"drain-{self._drains:04d}", "phase")
            self._drains += 1
        ran = 0
        while self._heap and ran < max_events:
            if until is not None and self._heap[0][0] > until:
                break
            time, _seq, action = heapq.heappop(self._heap)
            if time > self.net.clock:
                self.net.clock = time
            self.net.event_time = time
            try:
                action()
            finally:
                self.net.event_time = None
            ran += 1
            if span is not None:
                span.observe("pending_events", float(len(self._heap)))
                for name, probe in self.probes:
                    span.observe(name, float(probe()))
        self.events_run += ran
        if span is not None:
            span.annotate(events=ran, clock=self.net.clock)
            self.spans.close(span)
        return ran


#: Well-known ports used by the idICN components.
HTTP_PORT = 80
DNS_PORT = 53
MDNS_PORT = 5353
ARP_PORT = 2054
RESOLVER_PORT = 8053
