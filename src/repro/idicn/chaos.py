"""Chaos smoke test: a flash crowd under failure, asserted end to end.

``python -m repro.idicn.chaos --out DIR`` runs a small flash-crowd
scenario with a 10% error-injection hazard around the burst, twice with
one seed, and checks the overload story holds:

* **determinism** — the two runs' metrics snapshots are byte-identical;
* **accounting** — every request is classified exactly once;
* **ladder ordering** — the degradation rungs engage in order:
  ``coalesced >= stale-served >= shed`` (each > 0), i.e. coalescing
  absorbs more than serve-stale, which absorbs more than shedding;
* **fault composition** — the hazard window actually injected faults.

On success it writes ``metrics.json`` (the registry snapshot — the CI
artifact) and ``summary.json`` (scenario knobs + outcome counts) into
``--out`` and exits 0; any violated invariant prints a diagnosis and
exits 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path

from ..obs.registry import MetricsRegistry
from .overload import AdmissionControl, OverloadPolicy
from .scenarios import FlashCrowdScenario, FlashCrowdResult, run_flash_crowd
from .simnet import LinkSpec

#: The smoke scenario: small enough for CI (~3k requests, a couple of
#: seconds), loaded enough that every ladder rung engages at the
#: default seed.
SMOKE_SCENARIO = FlashCrowdScenario(
    num_requests=3000,
    duration=30.0,
    intensity=15.0,
    error_rate=0.1,
    max_age=0.5,
    overload=OverloadPolicy(
        queue_capacity=512,
        service_time=0.005,
        admission=AdmissionControl(
            stale_depth=55, shed_depth=80, retry_after=5.0
        ),
        link=LinkSpec(latency=0.002, bandwidth=1_000_000),
        rp_cache_capacity=16,
    ),
)


def check_invariants(result: FlashCrowdResult) -> list[str]:
    """Violated chaos invariants for ``result`` (empty = all good)."""
    problems: list[str] = []
    if result.completed != result.num_requests:
        problems.append(
            f"accounting: {result.completed} classified "
            f"!= {result.num_requests} scheduled"
        )
    coalesced = result.coalesced + result.negative_coalesced
    stale = result.stale_overload + result.stale_failover
    if not coalesced >= stale >= result.shed:
        problems.append(
            f"ladder ordering: coalesced={coalesced} "
            f">= stale={stale} >= shed={result.shed} violated"
        )
    for rung, count in (
        ("coalesced", coalesced),
        ("stale", stale),
        ("shed", result.shed),
    ):
        if count <= 0:
            problems.append(f"ladder rung {rung!r} never engaged")
    if result.injected_faults <= 0:
        problems.append("fault hazard window injected nothing")
    if result.ok <= result.num_requests // 2:
        problems.append(
            f"under half the crowd was served fresh ({result.ok})"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="flash-crowd chaos smoke test (see module docstring)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("chaos-out"),
        help="directory for metrics.json / summary.json artifacts",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario seed (default: the scenario's own)",
    )
    args = parser.parse_args(argv)

    snapshots: list[str] = []
    results: list[FlashCrowdResult] = []
    for _ in range(2):
        registry = MetricsRegistry()
        results.append(
            run_flash_crowd(SMOKE_SCENARIO, seed=args.seed,
                            registry=registry)
        )
        snapshots.append(registry.to_json())

    problems = check_invariants(results[0])
    if snapshots[0] != snapshots[1]:
        problems.append("determinism: two same-seed runs diverged")
    if results[0].to_dict() != results[1].to_dict():
        problems.append("determinism: two same-seed results diverged")

    args.out.mkdir(parents=True, exist_ok=True)
    (args.out / "metrics.json").write_text(snapshots[0])
    summary = {
        "schema": "chaos_smoke/v1",
        "scenario": _scenario_dict(SMOKE_SCENARIO),
        "seed": (
            SMOKE_SCENARIO.seed if args.seed is None else args.seed
        ),
        "result": results[0].to_dict(),
        "problems": problems,
    }
    (args.out / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True)
    )

    r = results[0]
    print(
        f"chaos smoke: ok={r.ok} stale={r.stale} shed={r.shed} "
        f"failed={r.failed} coalesced={r.coalesced + r.negative_coalesced} "
        f"faults={r.injected_faults} p99={r.p99_latency:.3f}s"
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"all invariants held; artifacts in {args.out}/")
    return 0


def _scenario_dict(scenario: FlashCrowdScenario) -> dict:
    """The scenario as JSON-ready data."""
    data = asdict(scenario)
    data["overload"] = asdict(scenario.overload)
    if scenario.retry_policy is not None:
        data["retry_policy"] = {
            **asdict(scenario.retry_policy),
            "fatal_errors": [
                t.__name__ for t in scenario.retry_policy.fatal_errors
            ],
        }
    return data


if __name__ == "__main__":
    sys.exit(main())
