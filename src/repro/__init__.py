"""Reproduction of "Less Pain, Most of the Gain: Incrementally Deployable
ICN" (Fayazbakhsh et al., SIGCOMM 2013).

Top-level convenience re-exports; the subpackages are:

* :mod:`repro.topology` — PoP maps and access trees,
* :mod:`repro.cache` — replacement policies and provisioning,
* :mod:`repro.workload` — Zipf workloads, CDN logs, fitting,
* :mod:`repro.core` — the caching design-space simulator,
* :mod:`repro.treeopt` — the Section 2.2 tree-placement optimizer,
* :mod:`repro.idicn` — the incrementally deployable ICN design,
* :mod:`repro.analysis` — table/figure assembly helpers.
"""

from .core import (
    BASELINE_ARCHITECTURES,
    Architecture,
    ExperimentConfig,
    ExperimentResult,
    Improvements,
    SimulationResult,
    Simulator,
    run_experiment,
    simulate_no_cache,
)
from .topology import AccessTree, Network, PopTopology, topology
from .workload import Workload, ZipfDistribution, generate_workload

__version__ = "1.0.0"

__all__ = [
    "AccessTree",
    "Architecture",
    "BASELINE_ARCHITECTURES",
    "ExperimentConfig",
    "ExperimentResult",
    "Improvements",
    "Network",
    "PopTopology",
    "SimulationResult",
    "Simulator",
    "Workload",
    "ZipfDistribution",
    "__version__",
    "generate_workload",
    "run_experiment",
    "simulate_no_cache",
    "topology",
]
