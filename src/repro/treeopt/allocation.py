"""Optimal cache-budget allocation across tree levels.

Section 2.2's second analysis: "we also extended this optimization-
driven analysis with another degree of freedom, where we also vary the
sizes of the cache allocated to different locations.  The results showed
that the optimal solution under a Zipf workload involves assigning a
majority of the total caching budget to the leaves of the tree."

Given a total slot budget for the whole tree (a slot at level ``l`` of
an arity-``a`` tree with ``L`` levels costs ``a**(L-l)`` slots because
every node of the level must hold the copy), greedily assign one
per-node slot at a time to the level with the best marginal reduction in
expected hops per unit of budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.zipf import ZipfDistribution
from .model import TreeModel


@dataclass(frozen=True)
class LevelAllocation:
    """Per-level cache sizes chosen by the allocator."""

    sizes: tuple[int, ...]
    expected_hops: float
    budget_used: int


def _expected_hops_for_sizes(
    probs: np.ndarray, sizes: list[int], total_levels: int
) -> float:
    cumulative = np.concatenate([[0.0], np.cumsum(probs)])
    total = 0.0
    start = 0
    for level, size in enumerate(sizes, start=1):
        stop = min(start + size, len(probs))
        total += level * (cumulative[stop] - cumulative[start])
        start = stop
    total += total_levels * (cumulative[-1] - cumulative[start])
    return total


def optimize_level_allocation(
    model: TreeModel, total_budget: int
) -> LevelAllocation:
    """Greedy marginal allocation of a tree-wide slot budget to levels.

    Returns per-node sizes for levels 1..L-1 (leaf level first).  The
    greedy step adds one per-node slot to the level with the largest
    hop-reduction per budget unit; the budget cost of a per-node slot at
    level ``l`` is the node count of that level.
    """
    if total_budget < 0:
        raise ValueError("total_budget must be >= 0")
    zipf = ZipfDistribution(model.alpha, model.num_objects)
    probs = zipf.probabilities
    num_levels = model.cache_levels
    level_cost = [model.nodes_at_level(level) for level in range(1, num_levels + 1)]
    sizes = [0] * num_levels
    remaining = total_budget
    current = _expected_hops_for_sizes(probs, sizes, model.levels)
    while True:
        best_gain_rate = 0.0
        best_level = -1
        best_hops = current
        for level in range(num_levels):
            cost = level_cost[level]
            if cost > remaining:
                continue
            sizes[level] += 1
            hops = _expected_hops_for_sizes(probs, sizes, model.levels)
            sizes[level] -= 1
            gain_rate = (current - hops) / cost
            if gain_rate > best_gain_rate + 1e-15:
                best_gain_rate = gain_rate
                best_level = level
                best_hops = hops
        if best_level < 0:
            break
        sizes[best_level] += 1
        remaining -= level_cost[best_level]
        current = best_hops
    return LevelAllocation(
        sizes=tuple(sizes),
        expected_hops=current,
        budget_used=total_budget - remaining,
    )


def budget_share_per_level(
    model: TreeModel, allocation: LevelAllocation
) -> np.ndarray:
    """Fraction of the used budget spent at each level (leaves first)."""
    costs = np.array(
        [
            allocation.sizes[level - 1] * model.nodes_at_level(level)
            for level in range(1, model.cache_levels + 1)
        ],
        dtype=np.float64,
    )
    total = costs.sum()
    return costs / total if total > 0 else costs
