"""The Section 2.2 analytical model: optimal static placement on a tree.

A complete binary distribution tree with ``levels`` levels (Figure 2 uses
6: leaves are level 1, the origin is level 6).  Requests follow a Zipf
distribution and arrive at a uniformly random leaf; a request walks up
the tree until some cache holds the object; the root/origin holds
everything.  All caches have the same size.  The question: which objects
should each cache statically hold to minimize expected latency (hops,
where being served at level L costs L)?

Because a request for an object only ever visits the ancestors of its
arrival leaf, a copy placed at a level-L node serves exactly the
requests arriving in that node's subtree.  For identical cache sizes the
optimum is *symmetric* (every node of a level stores the same set) and
greedy: the most popular objects go as low as possible.  We prove the
symmetric claim in tests against the LP relaxation
(:mod:`repro.treeopt.lp`), which attains the same objective value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.zipf import ZipfDistribution


@dataclass(frozen=True)
class TreeModel:
    """A symmetric binary-tree caching instance.

    ``levels`` counts levels inclusive of the origin (Figure 2: 6);
    ``cache_size`` is the per-node capacity in objects at levels
    1..levels-1 (the origin stores everything); ``arity`` is the tree
    fan-out (2 in the paper).
    """

    levels: int
    cache_size: int
    num_objects: int
    alpha: float
    arity: int = 2

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError("need at least a leaf level and an origin level")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.num_objects < 1:
            raise ValueError("num_objects must be >= 1")
        if self.arity < 2:
            raise ValueError("arity must be >= 2")

    @property
    def cache_levels(self) -> int:
        """Number of caching levels (everything below the origin)."""
        return self.levels - 1

    def nodes_at_level(self, level: int) -> int:
        """Node count at a level (level 1 = leaves, ``levels`` = origin)."""
        if not 1 <= level <= self.levels:
            raise ValueError(f"level {level} out of range [1, {self.levels}]")
        return self.arity ** (self.levels - level)


def optimal_levels(model: TreeModel) -> np.ndarray:
    """Optimal symmetric placement: serving level for each object rank.

    Returns an array ``level[rank]`` in 1..levels: the most popular
    ``cache_size`` objects are served at the leaves (level 1), the next
    ``cache_size`` one level up, and so on; the remainder is served by
    the origin.  This greedy layering is optimal among symmetric
    placements because expected cost is ``sum_o p_o * level_o`` and any
    swap of a more popular object to a higher level increases it.
    """
    levels = np.full(model.num_objects, model.levels, dtype=np.int64)
    for level in range(1, model.levels):
        lo = (level - 1) * model.cache_size
        hi = min(level * model.cache_size, model.num_objects)
        if lo >= model.num_objects:
            break
        levels[lo:hi] = level
    return levels


def fraction_served_per_level(model: TreeModel) -> np.ndarray:
    """Figure 2's y-axis: fraction of requests served at each level.

    Index 0 is level 1 (the edge); the last index is the origin.
    """
    zipf = ZipfDistribution(model.alpha, model.num_objects)
    probs = zipf.probabilities
    levels = optimal_levels(model)
    fractions = np.zeros(model.levels, dtype=np.float64)
    for level in range(1, model.levels + 1):
        fractions[level - 1] = probs[levels == level].sum()
    return fractions


def expected_hops(model: TreeModel) -> float:
    """Expected serving level (the paper counts level L as L hops)."""
    fractions = fraction_served_per_level(model)
    levels = np.arange(1, model.levels + 1, dtype=np.float64)
    return float(np.dot(fractions, levels))


def expected_hops_edge_only(model: TreeModel) -> float:
    """Expected hops with intermediate caches removed (Section 2.2).

    "Let us look at an extreme scenario where we have no caches at the
    intermediate levels; i.e., all of the requests currently assigned to
    levels 2..L-1 will be served at the origin."
    """
    fractions = fraction_served_per_level(model)
    edge = fractions[0]
    return float(edge * 1 + (1.0 - edge) * model.levels)


def universal_caching_latency_gain(model: TreeModel) -> float:
    """The paper's "latency improvement attributed to universal caching".

    For alpha = 0.7 the paper computes 3 vs 4 expected hops, i.e. 25%.
    """
    with_all = expected_hops(model)
    edge_only = expected_hops_edge_only(model)
    if edge_only == 0:
        return 0.0
    return 100.0 * (edge_only - with_all) / edge_only
