"""LP cross-check for the tree-placement model.

The paper solves the placement/assignment problem "as an integer linear
program".  We verify our closed-form greedy optimum
(:func:`repro.treeopt.model.optimal_levels`) against the LP relaxation:

    maximize   sum_{o,l} p_o * (L - l) * y[o,l]        (hops saved)
    subject to sum_o  y[o,l] <= B      for each caching level l
               sum_l  y[o,l] <= 1      for each object o
               0 <= y <= 1

where ``y[o,l]`` is the fraction of object ``o``'s requests served at
level ``l``.  The relaxation bounds the integral optimum from above
(in savings), and the greedy layering attains it exactly, which the
tests assert.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from ..workload.zipf import ZipfDistribution
from .model import TreeModel


def lp_expected_hops(model: TreeModel) -> float:
    """Optimal expected hops according to the LP relaxation."""
    num_objects = model.num_objects
    num_levels = model.cache_levels
    zipf = ZipfDistribution(model.alpha, num_objects)
    probs = zipf.probabilities
    total_levels = model.levels

    # Variable y[o, l] flattened as o * num_levels + l.
    savings = np.empty(num_objects * num_levels)
    for level in range(num_levels):
        savings[level::num_levels] = probs * (total_levels - (level + 1))

    rows, cols, data = [], [], []
    # Per-level capacity rows.
    for level in range(num_levels):
        for obj in range(num_objects):
            rows.append(level)
            cols.append(obj * num_levels + level)
            data.append(1.0)
    # Per-object single-copy rows.
    for obj in range(num_objects):
        for level in range(num_levels):
            rows.append(num_levels + obj)
            cols.append(obj * num_levels + level)
            data.append(1.0)
    a_ub = sparse.coo_matrix(
        (data, (rows, cols)),
        shape=(num_levels + num_objects, num_objects * num_levels),
    )
    b_ub = np.concatenate(
        [np.full(num_levels, float(model.cache_size)), np.ones(num_objects)]
    )
    result = optimize.linprog(
        c=-savings,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solve failed: {result.message}")
    saved = -float(result.fun)
    return float(total_levels - saved)
