"""The Section 2.2 analytical tree model (Figure 2 and its extensions)."""

from .allocation import (
    LevelAllocation,
    budget_share_per_level,
    optimize_level_allocation,
)
from .lp import lp_expected_hops
from .model import (
    TreeModel,
    expected_hops,
    expected_hops_edge_only,
    fraction_served_per_level,
    optimal_levels,
    universal_caching_latency_gain,
)

__all__ = [
    "LevelAllocation",
    "TreeModel",
    "budget_share_per_level",
    "expected_hops",
    "expected_hops_edge_only",
    "fraction_served_per_level",
    "lp_expected_hops",
    "optimal_levels",
    "optimize_level_allocation",
    "universal_caching_latency_gain",
]
