"""Repo-specific static analysis for the reproduction's contracts.

The quantitative claims (Figures 6-10) rest on bit-identical seeded
simulation, and two engines now share that contract.  ``repro.lint``
enforces statically what the differential test matrix can only check
for knobs it already knows about:

* **determinism** (D1xx) — every random draw in the simulation packages
  flows through a seeded ``np.random.Generator``; no stdlib ``random``,
  wall clocks, or OS entropy;
* **engine parity** (P2xx) — every ``Simulator.__init__`` knob is
  consumed by the fast engine, every ``SimulationResult`` field is
  produced by the shared ``from_counters`` finalizer;
* **cache conformance** (C3xx) — every policy implements the full
  ``Cache`` interface and has a registered fast-struct twin;
* **order stability** (O4xx) — no unordered iteration or ``popitem`` in
  the engine hot modules.

Run as ``python -m repro.lint [paths]`` (text or ``--format json``),
or through :func:`lint_paths` from tests.  Findings are silenced with
inline ``# lint: disable=<rule>`` comments next to a justification.
See DESIGN.md, "Static analysis & determinism contract".
"""

from .cli import main
from .diagnostics import Diagnostic, Report, Rule, Severity
from .rules import ALL_RULES, DETERMINISM_PACKAGES, RULES_BY_ID
from .runner import lint_paths

__all__ = [
    "ALL_RULES",
    "DETERMINISM_PACKAGES",
    "Diagnostic",
    "Report",
    "Rule",
    "RULES_BY_ID",
    "Severity",
    "lint_paths",
    "main",
]
