"""Repo-specific static analysis for the reproduction's contracts.

The quantitative claims (Figures 6-10) rest on bit-identical seeded
simulation, and two engines now share that contract.  ``repro.lint``
enforces statically what the differential test matrix can only check
for knobs it already knows about:

* **determinism** (D1xx) — every random draw in the simulation packages
  flows through a seeded ``np.random.Generator``; no stdlib ``random``,
  wall clocks, or OS entropy;
* **engine parity** (P2xx) — every ``Simulator.__init__`` knob is
  consumed by the fast engine, every ``SimulationResult`` field is
  produced by the shared ``from_counters`` finalizer;
* **cache conformance** (C3xx) — every policy implements the full
  ``Cache`` interface and has a registered fast-struct twin;
* **order stability** (O4xx) — no unordered iteration or ``popitem`` in
  the engine hot modules;
* **observability gating** (O5xx) — sink touches in the hot loops stay
  behind their zero-overhead guards;
* **seed flow** (S7xx) — whole-program: every generator's seed traces
  to a SeedSequence/seeded-config lineage, never to ambient entropy or
  a literal smuggled into an already-seeded call chain;
* **worker safety** (W8xx) — whole-program: everything reachable from
  the sweep's worker dispatch is picklable, writes no module-level
  state, and captures no open handles or locks;
* **metrics contract** (M9xx) — whole-program: observed metric families
  are registered with help text, label sets stay consistent, wall-clock
  values stay on the allow-list, schema versions stay named constants.

The whole-program families run on a module/call graph and a shared
data-flow engine (``repro.lint.graph``, ``repro.lint.dataflow``) built
once per run over every collected ``repro.*`` module.

Run as ``python -m repro.lint [paths]`` (text, ``--format json``, or
``--format github`` for CI annotations), or through :func:`lint_paths`
from tests.  Findings are silenced with inline
``# lint: disable=<rule>`` comments next to a justification; the
comments themselves are linted (unknown ids are ``E998``, and
``--strict`` reports entries that matched nothing as ``E997``).
See DESIGN.md, "Static analysis & determinism contract".
"""

from .cli import main
from .diagnostics import Diagnostic, Report, Rule, Severity
from .rules import ALL_RULES, DETERMINISM_PACKAGES, RULES_BY_ID
from .runner import lint_paths

__all__ = [
    "ALL_RULES",
    "DETERMINISM_PACKAGES",
    "Diagnostic",
    "Report",
    "Rule",
    "RULES_BY_ID",
    "Severity",
    "lint_paths",
    "main",
]
