"""Cache-conformance rules (C3xx): policies and their fast twins agree.

The simulator instantiates reference policies through the ``POLICIES``
registry (``cache/__init__.py``) and the fast engine instantiates flat
structs through ``_FAST_POLICIES`` (``cache/fast.py``).  A policy that
exists in one registry but not the other, or that implements only part
of the shared interface, is exactly the kind of drift the differential
suite discovers late (or never, if the new policy is simply untested).

* ``C301`` — every class deriving from ``Cache`` must define the full
  abstract interface declared in ``cache/base.py`` (directly or via an
  intermediate ``Cache`` subclass in the same package);
* ``C302`` — ``POLICIES`` and ``_FAST_POLICIES`` must register exactly
  the same policy names;
* ``C303`` — every fast struct (the ``_FAST_POLICIES`` values plus
  ``FastInfinite``) must define the engine-facing quartet
  ``lookup``/``insert``/``__contains__``/``__len__``.
"""

from __future__ import annotations

import ast

from . import rules
from .astutil import class_methods, find_class, string_dict_keys
from .diagnostics import Diagnostic

#: Methods the fast engine calls on every flat struct.
FAST_STRUCT_METHODS = ("lookup", "insert", "__contains__", "__len__")


def check_cache_conformance(
    modules: dict[str, tuple[str, ast.Module]],
) -> list[Diagnostic]:
    """Run the C-family over the cache package.

    ``modules`` maps module basenames (``"base"``, ``"fast"``,
    ``"__init__"``, policy modules...) to ``(path, tree)`` pairs, as
    collected by the runner from ``repro/cache/``.
    """
    out: list[Diagnostic] = []
    base = modules.get("base")
    required = _abstract_interface(base[1]) if base else None
    init = modules.get("__init__")
    fast = modules.get("fast")

    # C301: every Cache subclass implements the abstract interface.
    if required:
        subclass_methods: dict[str, set[str]] = {}
        for name, (path, tree) in sorted(modules.items()):
            if name in ("base", "fast"):
                continue
            for stmt in tree.body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                bases = {_base_name(b) for b in stmt.bases}
                if "Cache" not in bases and not (
                    bases & set(subclass_methods)
                ):
                    continue
                inherited: set[str] = set()
                for parent in bases & set(subclass_methods):
                    inherited |= subclass_methods[parent]
                methods = class_methods(stmt) | inherited
                subclass_methods[stmt.name] = methods
                missing = [m for m in required if m not in methods]
                if missing:
                    out.append(
                        Diagnostic(
                            rule=rules.CACHE_INTERFACE,
                            path=path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"cache policy `{stmt.name}` is missing "
                                f"{', '.join(missing)} from the Cache base "
                                "interface"
                            ),
                        )
                    )

    # C302/C303: registry parity and fast-struct completeness.
    reference = (
        string_dict_keys(init[1], "POLICIES") if init is not None else None
    )
    fast_registry = (
        string_dict_keys(fast[1], "_FAST_POLICIES") if fast is not None else None
    )
    if reference is not None and fast_registry is not None:
        assert init is not None and fast is not None
        for policy in sorted(set(reference) - set(fast_registry)):
            out.append(
                Diagnostic(
                    rule=rules.FAST_REGISTRY_DRIFT,
                    path=init[0],
                    line=reference[policy].lineno,
                    col=reference[policy].col_offset,
                    message=(
                        f"policy `{policy}` is registered in POLICIES but "
                        "has no fast struct in cache/fast.py "
                        "(_FAST_POLICIES); the fast engine cannot run it"
                    ),
                )
            )
        for policy in sorted(set(fast_registry) - set(reference)):
            out.append(
                Diagnostic(
                    rule=rules.FAST_REGISTRY_DRIFT,
                    path=fast[0],
                    line=fast_registry[policy].lineno,
                    col=fast_registry[policy].col_offset,
                    message=(
                        f"fast policy `{policy}` has no reference twin in "
                        "POLICIES (cache/__init__.py); the differential "
                        "suite cannot pin it"
                    ),
                )
            )
    if fast is not None and fast_registry is not None:
        struct_names = sorted(
            {
                node.id
                for node in fast_registry.values()
                if isinstance(node, ast.Name)
            }
            | {"FastInfinite"}
        )
        for struct_name in struct_names:
            cls = find_class(fast[1], struct_name)
            if cls is None:
                out.append(
                    Diagnostic(
                        rule=rules.FAST_STRUCT_INTERFACE,
                        path=fast[0],
                        line=1,
                        col=0,
                        message=(
                            f"fast struct `{struct_name}` is registered but "
                            "not defined in cache/fast.py"
                        ),
                    )
                )
                continue
            methods = class_methods(cls)
            missing = [m for m in FAST_STRUCT_METHODS if m not in methods]
            if missing:
                out.append(
                    Diagnostic(
                        rule=rules.FAST_STRUCT_INTERFACE,
                        path=fast[0],
                        line=cls.lineno,
                        col=cls.col_offset,
                        message=(
                            f"fast struct `{struct_name}` is missing "
                            f"{', '.join(missing)} from the engine-facing "
                            "interface"
                        ),
                    )
                )
    return out


def _abstract_interface(base_tree: ast.Module) -> list[str]:
    """Names of ``Cache``'s abstractmethod-decorated methods."""
    cache_cls = find_class(base_tree, "Cache")
    if cache_cls is None:
        return []
    required: list[str] = []
    for stmt in cache_cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in stmt.decorator_list:
            name = (
                decorator.attr
                if isinstance(decorator, ast.Attribute)
                else decorator.id
                if isinstance(decorator, ast.Name)
                else None
            )
            if name == "abstractmethod":
                required.append(stmt.name)
                break
    return required


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
