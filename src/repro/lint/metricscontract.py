"""Metrics/schema contract rules (M9xx): the registry stays mergeable.

``MetricsRegistry.merge`` is first-registration-wins and label-set
driven; a worker shard that observes a family the parent never
registered, or observes it with a different label set, produces merged
output that drifts between runs.  These rules pin the contract
statically, across every module at once:

* ``M901`` — every metric family observed anywhere (``registry.inc``
  shortcut, or ``counter()/gauge()/histogram()`` access without
  ``help=``) must be registered with help text somewhere in the
  program.  Registration may be up-front (``_preregister_*``,
  component ``__init__``) or at the observing call itself — what
  matters is that the family's help/label schema exists.
* ``M902`` — a family's label *names* must be identical at every call
  site; sites passing dynamic ``**labels`` are skipped (statically
  unknowable), as are sites whose metric name is not a static string.
* ``M903`` — wall-clock semantics and schema versions: an observed
  value that traces to ``time.perf_counter``-style sources must belong
  to a family listed in ``repro.core.sweep.WALLCLOCK_METRICS`` (so
  deterministic snapshots strip it), and JSONL schema-version strings
  (``repro.obs/*/v*``) must be spelled via the ``repro.obs`` module
  constants, never as inline literals elsewhere.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from . import rules
from .dataflow import OriginResolver
from .diagnostics import Diagnostic
from .graph import CallGraph, FunctionInfo, ModuleGraph

#: Registry factory methods whose first argument names a family.
FAMILY_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Sample methods that record an observation on a family handle.
OBSERVE_METHODS = frozenset({"inc", "add", "set", "observe"})

#: Keywords on family calls that are not label names.
NON_LABEL_KEYWORDS = frozenset({"help", "buckets", "amount"})

#: Call origins that make an observed value wall-clock tainted.
WALLCLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.thread_time",
    }
)

#: Module holding the wall-clock family allow-list.
SWEEP_MODULE = "repro.core.sweep"
WALLCLOCK_CONSTANT = "WALLCLOCK_METRICS"

#: JSONL schema-version strings (``repro.obs/registry/v1`` etc.).
SCHEMA_LITERAL = re.compile(r"^repro\.obs/[a-z_]+/v\d+$")
#: Package whose module-level constants may define schema strings.
SCHEMA_HOME = "repro.obs"


@dataclass
class MetricSite:
    """One statically-resolvable metric call site."""

    name: str
    function: FunctionInfo
    call: ast.Call
    registers: bool  # has help= (defines the family schema)
    labels: frozenset[str]
    dynamic_labels: bool  # **labels present
    #: Value expression observed at this site, when the site observes.
    observed_value: ast.expr | None = None


def check_metrics(graph: ModuleGraph, callgraph: CallGraph) -> list[Diagnostic]:
    """Run M901-M903 over every ``repro.*`` module in the program graph."""
    sites: list[MetricSite] = []
    for module_name in sorted(graph.modules):
        if not module_name.startswith("repro"):
            continue
        info = graph.modules[module_name]
        for qualname in sorted(info.functions):
            sites.extend(_collect_sites(graph, info.functions[qualname]))
    out = _check_registration(sites)
    out.extend(_check_label_consistency(sites))
    out.extend(_check_wallclock(graph, callgraph, sites))
    out.extend(_check_schema_literals(graph))
    return out


# ----------------------------------------------------------------------
# Site collection
# ----------------------------------------------------------------------
def _family_call_name(
    graph: ModuleGraph, function: FunctionInfo, call: ast.Call
) -> str | None:
    """Static family name of a ``*.counter/gauge/histogram(...)`` call."""
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in FAMILY_METHODS
    ):
        return None
    name_expr: ast.expr | None = call.args[0] if call.args else None
    if name_expr is None:
        for keyword in call.keywords:
            if keyword.arg == "name":
                name_expr = keyword.value
    if name_expr is None:
        return None
    return graph.string_of(function.module, name_expr)


def _labels_of(call: ast.Call) -> tuple[frozenset[str], bool]:
    labels = frozenset(
        keyword.arg
        for keyword in call.keywords
        if keyword.arg is not None and keyword.arg not in NON_LABEL_KEYWORDS
    )
    dynamic = any(keyword.arg is None for keyword in call.keywords)
    return labels, dynamic


def _collect_sites(
    graph: ModuleGraph, function: FunctionInfo
) -> list[MetricSite]:
    sites: list[MetricSite] = []
    #: id(inner family Call) -> the observing outer call's value expr,
    #: for chained ``registry.gauge(...).set(value)`` sites.
    chained: dict[int, ast.expr | None] = {}
    #: local name -> family name, for two-step handle patterns.
    handles: dict[str, str] = {}
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in OBSERVE_METHODS
            and isinstance(node.func.value, ast.Call)
        ):
            value = node.args[0] if node.args else None
            if value is None:
                for keyword in node.keywords:
                    if keyword.arg == "amount":
                        value = keyword.value
            chained[id(node.func.value)] = value
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                family = _family_call_name(graph, function, node.value)
                if family is not None:
                    handles[target.id] = family
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        family = _family_call_name(graph, function, node)
        if family is not None:
            labels, dynamic = _labels_of(node)
            registers = any(kw.arg == "help" for kw in node.keywords)
            sites.append(
                MetricSite(
                    name=family,
                    function=function,
                    call=node,
                    registers=registers,
                    labels=labels,
                    dynamic_labels=dynamic,
                    observed_value=chained.get(id(node)),
                )
            )
            continue
        # registry.inc("name", amount, **labels) shortcut: observation.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "inc"
            and node.args
        ):
            name = graph.string_of(function.module, node.args[0])
            if name is not None:
                labels, dynamic = _labels_of(node)
                value = node.args[1] if len(node.args) > 1 else None
                if value is None:
                    for keyword in node.keywords:
                        if keyword.arg == "amount":
                            value = keyword.value
                sites.append(
                    MetricSite(
                        name=name,
                        function=function,
                        call=node,
                        registers=False,
                        labels=labels,
                        dynamic_labels=dynamic,
                        observed_value=value,
                    )
                )
                continue
        # handle.set(value) on a previously-bound family handle.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in OBSERVE_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in handles
        ):
            value = node.args[0] if node.args else None
            sites.append(
                MetricSite(
                    name=handles[node.func.value.id],
                    function=function,
                    call=node,
                    registers=False,
                    labels=frozenset(),
                    dynamic_labels=True,  # labels live on the handle site
                    observed_value=value,
                )
            )
    return sites


# ----------------------------------------------------------------------
# M901: observed-but-never-registered
# ----------------------------------------------------------------------
def _check_registration(sites: list[MetricSite]) -> list[Diagnostic]:
    registered = {site.name for site in sites if site.registers}
    out: list[Diagnostic] = []
    seen: set[str] = set()
    for site in sites:
        if site.registers or site.name in registered or site.name in seen:
            continue
        seen.add(site.name)
        out.append(
            Diagnostic(
                rule=rules.METRIC_UNREGISTERED,
                path=site.function.path,
                line=site.call.lineno,
                col=site.call.col_offset,
                message=(
                    f"metric family `{site.name}` is observed but never "
                    "registered with help text anywhere in the program; "
                    "merge output would depend on observation order"
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# M902: label-set consistency per family
# ----------------------------------------------------------------------
def _check_label_consistency(sites: list[MetricSite]) -> list[Diagnostic]:
    schema: dict[str, tuple[frozenset[str], MetricSite]] = {}
    for site in sites:
        if site.dynamic_labels:
            continue
        if site.name not in schema or (
            site.registers and not schema[site.name][1].registers
        ):
            schema[site.name] = (site.labels, site)
    out: list[Diagnostic] = []
    for site in sites:
        if site.dynamic_labels or site.name not in schema:
            continue
        expected, anchor = schema[site.name]
        if site is anchor or site.labels == expected:
            continue
        expected_text = "{" + ", ".join(sorted(expected)) + "}"
        got_text = "{" + ", ".join(sorted(site.labels)) + "}"
        out.append(
            Diagnostic(
                rule=rules.METRIC_LABEL_DRIFT,
                path=site.function.path,
                line=site.call.lineno,
                col=site.call.col_offset,
                message=(
                    f"metric family `{site.name}` observed with label set "
                    f"{got_text} but its schema (from "
                    f"{anchor.function.path}:{anchor.call.lineno}) is "
                    f"{expected_text}; label names must match at every site"
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# M903: wall-clock semantics + schema-version literals
# ----------------------------------------------------------------------
def _check_wallclock(
    graph: ModuleGraph, callgraph: CallGraph, sites: list[MetricSite]
) -> list[Diagnostic]:
    allowed = graph.constant_value(SWEEP_MODULE, WALLCLOCK_CONSTANT)
    if not isinstance(allowed, frozenset):
        return []
    resolver = OriginResolver(graph, callgraph)
    out: list[Diagnostic] = []
    for site in sites:
        if site.observed_value is None or site.name in allowed:
            continue
        origins = resolver.origins(site.function, site.observed_value)
        tainted = sorted(
            origin.detail
            for origin in origins
            if origin.kind == "call" and origin.detail in WALLCLOCK_SOURCES
        )
        if not tainted:
            continue
        out.append(
            Diagnostic(
                rule=rules.METRIC_SEMANTICS,
                path=site.function.path,
                line=site.call.lineno,
                col=site.call.col_offset,
                message=(
                    f"metric family `{site.name}` observes a wall-clock "
                    f"tainted value (via {', '.join(tainted)}) but is not "
                    f"listed in {SWEEP_MODULE}.{WALLCLOCK_CONSTANT}; "
                    "deterministic snapshots would fail byte-equality"
                ),
            )
        )
    return out


def _check_schema_literals(graph: ModuleGraph) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for module_name in sorted(graph.modules):
        if not module_name.startswith("repro"):
            continue
        info = graph.modules[module_name]
        defining = module_name == SCHEMA_HOME or module_name.startswith(
            SCHEMA_HOME + "."
        )
        exempt: set[int] = set()
        if defining:
            for name, value in info.constants.items():
                if isinstance(value, ast.Constant):
                    exempt.add(id(value))
        # Docstrings and other expression-statement strings are prose.
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
                exempt.add(id(node.value))
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and SCHEMA_LITERAL.match(node.value)
                and id(node) not in exempt
            ):
                out.append(
                    Diagnostic(
                        rule=rules.METRIC_SEMANTICS,
                        path=info.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"inline schema-version literal "
                            f"`{node.value}`; import the constant from "
                            "the repro.obs module that defines it"
                        ),
                    )
                )
    return out

