"""Diagnostic records, severities, and report rendering for repro.lint.

A lint run produces a :class:`Report`: the list of surviving
:class:`Diagnostic` records (suppressed findings are counted, not
listed) plus run statistics.  Reports render as human-readable text
(one ``path:line:col: ID message`` row per finding, the format editors
and CI log scrapers expect) or as a versioned JSON document for
machine consumption (see :data:`JSON_VERSION`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

#: Schema version of the JSON output document.  Bump on any breaking
#: change to the structure below (tests pin the schema).
JSON_VERSION = 1


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the run (exit code 1); ``WARNING`` findings
    are reported but only fail under ``--strict``.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, default severity, and documentation."""

    id: str
    name: str
    severity: Severity
    summary: str


@dataclass(frozen=True)
class Diagnostic:
    """One finding at one source location."""

    rule: Rule
    path: str
    line: int
    col: int
    message: str
    #: Effective severity (defaults to the rule's; kept separate so a
    #: future config layer can promote/demote individual rules).
    severity: Severity | None = None

    @property
    def effective_severity(self) -> Severity:
        """The severity this finding is reported at."""
        return self.severity if self.severity is not None else self.rule.severity

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping for one finding."""
        return {
            "rule": self.rule.id,
            "name": self.rule.name,
            "severity": self.effective_severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: ID message`` (the text-output row)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule.id} [{self.effective_severity.value}] {self.message}"
        )


@dataclass
class Report:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> int:
        """Number of error-severity findings."""
        return sum(
            1
            for d in self.diagnostics
            if d.effective_severity is Severity.ERROR
        )

    @property
    def warnings(self) -> int:
        """Number of warning-severity findings."""
        return sum(
            1
            for d in self.diagnostics
            if d.effective_severity is Severity.WARNING
        )

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean, 1 when findings fail the run."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Findings in (path, line, col, rule) order for stable output."""
        return sorted(
            self.diagnostics, key=lambda d: (d.path, d.line, d.col, d.rule.id)
        )

    def as_dict(self) -> dict[str, object]:
        """The versioned JSON document for one run."""
        return {
            "version": JSON_VERSION,
            "summary": {
                "files": self.files_checked,
                "errors": self.errors,
                "warnings": self.warnings,
                "suppressed": self.suppressed,
            },
            "diagnostics": [d.as_dict() for d in self.sorted_diagnostics()],
        }

    def render_json(self) -> str:
        """Pretty-printed JSON output."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=False)

    def render_text(self) -> str:
        """Human-readable output: one row per finding plus a summary."""
        lines = [d.render() for d in self.sorted_diagnostics()]
        lines.append(
            f"{self.files_checked} file(s) checked: "
            f"{self.errors} error(s), {self.warnings} warning(s), "
            f"{self.suppressed} suppressed"
        )
        return "\n".join(lines)

    def render_github(self) -> str:
        """GitHub Actions workflow commands: one annotation per finding.

        ``::error file=...,line=...,col=...,title=ID::message`` rows
        annotate the PR diff inline when emitted from a workflow step;
        columns are 1-based in the annotation UI.  A plain summary line
        follows (GitHub ignores lines without the ``::`` prefix).
        """
        lines = []
        for diagnostic in self.sorted_diagnostics():
            level = (
                "error"
                if diagnostic.effective_severity is Severity.ERROR
                else "warning"
            )
            message = diagnostic.message.replace("%", "%25").replace(
                "\n", "%0A"
            )
            lines.append(
                f"::{level} file={diagnostic.path},line={diagnostic.line},"
                f"col={diagnostic.col + 1},title={diagnostic.rule.id}"
                f"::{message}"
            )
        lines.append(
            f"{self.files_checked} file(s) checked: "
            f"{self.errors} error(s), {self.warnings} warning(s), "
            f"{self.suppressed} suppressed"
        )
        return "\n".join(lines)
