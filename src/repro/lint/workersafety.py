"""Worker-safety rules (W8xx): a static race detector for the sweep.

``run_sweep`` fans chunks out over a ``ProcessPoolExecutor``; anything
it submits is pickled into a worker process and runs concurrently with
its siblings.  Three properties keep that safe, and all three are
invisible to per-file rules because they span the whole call graph:

* ``W801`` — every callable handed to worker dispatch (``pool.submit``
  and the ``runner`` parameter default) must be a picklable module-level
  function: no lambdas, no nested closures, no bound methods.
* ``W802`` — no function reachable from worker dispatch may write
  module-level state: mutating a module dict/list, storing through a
  class attribute, or rebinding via ``global``.  In a fork each worker
  mutates its own copy (silent divergence); under spawn/threads it is a
  data race.
* ``W803`` — no reachable function may capture process-global file
  handles or synchronization primitives (module-level ``open(...)`` /
  ``Lock()`` values, or such calls as parameter defaults); they do not
  survive pickling and serialize workers against each other when they
  appear to work.

Reachability is the call-graph closure from the dispatch roots found in
``repro.core.sweep``; when that module is absent from the program graph
the family is skipped.
"""

from __future__ import annotations

import ast

from . import rules
from .astutil import dotted
from .diagnostics import Diagnostic
from .graph import CallGraph, FunctionInfo, ModuleGraph

#: The module whose worker dispatch anchors this family.
SWEEP_MODULE = "repro.core.sweep"

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "pop",
        "popitem",
        "setdefault",
        "clear",
        "remove",
        "discard",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
    }
)

#: Call suffixes that produce file handles or synchronization primitives.
HANDLE_SUFFIXES = (
    "open",
    "Lock",
    "RLock",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
    "Event",
    "Barrier",
    "socket",
)


def check_workersafety(
    graph: ModuleGraph, callgraph: CallGraph
) -> list[Diagnostic]:
    """Run W801-W803 from the sweep module's worker-dispatch roots."""
    sweep = graph.modules.get(SWEEP_MODULE)
    if sweep is None:
        return []
    out: list[Diagnostic] = []
    roots: list[FunctionInfo] = []
    for dispatched, path, node in _dispatch_sites(graph, sweep):
        if dispatched is None:
            out.append(
                Diagnostic(
                    rule=rules.WORKER_NOT_TOPLEVEL,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "worker dispatch submits a callable that is not a "
                        "module-level function (lambda, bound method, or "
                        "unresolvable); workers need picklable top-level "
                        "functions"
                    ),
                )
            )
            continue
        if not dispatched.is_toplevel:
            out.append(
                Diagnostic(
                    rule=rules.WORKER_NOT_TOPLEVEL,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"worker dispatch submits `{dispatched.qualname}`, "
                        "which is not a module-level function and cannot be "
                        "pickled into a worker process"
                    ),
                )
            )
        roots.append(dispatched)
    for function in callgraph.reachable_from(roots):
        out.extend(_check_global_writes(graph, function))
        out.extend(_check_captured_handles(graph, function))
    return out


def _dispatch_sites(
    graph: ModuleGraph, sweep
) -> list[tuple[FunctionInfo | None, str, ast.AST]]:
    """(resolved callable | None, path, site node) per dispatch point.

    Dispatch points are the first argument of every ``*.submit(...)``
    call in the sweep module and the declared default of a ``runner``
    parameter on any top-level sweep function.  Plain name references
    are resolved through the module graph; a lambda or bound method
    yields ``None`` (W801 fires at the site).
    """
    found: list[tuple[FunctionInfo | None, str, ast.AST]] = []
    for node in ast.walk(sweep.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            target = node.args[0]
            found.append((_resolve_callable(graph, sweep, target), sweep.path, target))
    for function in sweep.functions.values():
        if not function.is_toplevel:
            continue
        default = function.default_for("runner")
        if default is None:
            continue
        found.append(
            (_resolve_callable(graph, sweep, default), sweep.path, default)
        )
    return found


def _resolve_callable(
    graph: ModuleGraph, sweep, expr: ast.expr
) -> FunctionInfo | None:
    name = dotted(expr)
    if name is None:
        return None
    resolved = graph.resolve_name(sweep.name, name)
    if resolved is None:
        return None
    return graph.function_at(resolved)


def _binding_names(target: ast.expr) -> list[str]:
    """Names a target *rebinds* (subscript/attribute stores excluded).

    ``SEEN[c] = ...`` mutates the object ``SEEN`` refers to, it does not
    bind a local ``SEEN`` — treating it as a binding would hide exactly
    the indirect stores W802 exists to catch.
    """
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(_binding_names(element))
        return out
    return []


def _local_bindings(function: FunctionInfo) -> set[str]:
    """Names bound locally anywhere in the function (scope-approximate)."""
    bound = set(function.param_names())
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_binding_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_binding_names(node.target))
        elif isinstance(node, ast.For):
            bound.update(_binding_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bound.update(_binding_names(node.optional_vars))
        elif isinstance(node, ast.NamedExpr):
            bound.update(_binding_names(node.target))
        elif isinstance(node, ast.comprehension):
            bound.update(_binding_names(node.target))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not function.node:
                bound.add(node.name)
    return bound


def _module_bindings(graph: ModuleGraph, function: FunctionInfo) -> set[str]:
    info = graph.modules.get(function.module)
    if info is None:
        return set()
    top_level_functions = {
        qualname for qualname, f in info.functions.items() if f.is_toplevel
    }
    return (
        set(info.constants)
        | set(info.classes)
        | top_level_functions
        | set(info.imports)
    )


def _store_base(target: ast.expr) -> tuple[str, bool] | None:
    """(base name, is-indirect) for a store target, if name-rooted.

    Indirect means the store goes *through* the name — a subscript or
    attribute store that mutates the referenced object rather than
    rebinding the local.
    """
    indirect = False
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        indirect = True
        node = node.value
    if isinstance(node, ast.Name):
        return node.id, indirect
    return None


def _check_global_writes(
    graph: ModuleGraph, function: FunctionInfo
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    local = _local_bindings(function)
    module_level = _module_bindings(graph, function)
    shared = module_level - local

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            Diagnostic(
                rule=rules.WORKER_GLOBAL_WRITE,
                path=function.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"`{function.qualname}` is reachable from sweep worker "
                    f"dispatch but {what}; workers must not write state "
                    "shared across the fork"
                ),
            )
        )

    for node in ast.walk(function.node):
        if isinstance(node, ast.Global):
            flag(node, f"declares `global {', '.join(node.names)}`")
            continue
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            base = _store_base(target)
            if base is None:
                continue
            name, indirect = base
            if not indirect or name in ("self", "cls"):
                continue
            if name in shared:
                flag(target, f"writes module-level `{name}`")
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in shared
        ):
            flag(
                node,
                f"mutates module-level `{node.func.value.id}` via "
                f".{node.func.attr}()",
            )
    return out


def _handle_call(graph: ModuleGraph, module: str, expr: ast.expr) -> str | None:
    """The dotted name of a handle/lock-producing call, if this is one."""
    if not isinstance(expr, ast.Call):
        return None
    name = dotted(expr.func)
    if name is None:
        return None
    resolved = graph.resolve_name(module, name) or name
    last = resolved.rsplit(".", 1)[-1]
    if last in HANDLE_SUFFIXES:
        return resolved
    return None


def _check_captured_handles(
    graph: ModuleGraph, function: FunctionInfo
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    info = graph.modules.get(function.module)
    local = _local_bindings(function)

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            Diagnostic(
                rule=rules.WORKER_CAPTURED_HANDLE,
                path=function.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"`{function.qualname}` is reachable from sweep worker "
                    f"dispatch but {what}; open handles and locks do not "
                    "survive pickling into a worker"
                ),
            )
        )

    # Parameter defaults that are handle-producing calls.
    args = function.node.args
    defaults = list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]
    for default in defaults:
        handle = _handle_call(graph, function.module, default)
        if handle is not None:
            flag(default, f"defaults a parameter to `{handle}(...)`")
    # References to module-level names bound to handle-producing calls.
    if info is None:
        return out
    handle_constants = {
        name
        for name, value in info.constants.items()
        if _handle_call(graph, function.module, value) is not None
    }
    if not handle_constants:
        return out
    for node in ast.walk(function.node):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in handle_constants
            and node.id not in local
        ):
            flag(node, f"captures module-level handle `{node.id}`")
    return out
