"""The rule catalogue: every repro.lint rule, its id, and its severity.

Rule ids are grouped by family:

* ``D1xx`` — determinism: no stdlib ``random``, no wall-clock or OS
  entropy, no unseeded or global-state NumPy RNGs inside the simulation
  packages (``repro.core``, ``repro.cache``, ``repro.workload``,
  ``repro.topology``, ``repro.idicn``);
* ``P2xx`` — engine parity: every ``Simulator.__init__`` knob must be
  consumed by the fast engine, every ``SimulationResult`` field must be
  produced by ``from_counters`` (the drift the differential test matrix
  cannot see, because it only sweeps knobs it already knows about);
* ``C3xx`` — cache conformance: every policy implements the full
  ``Cache`` interface and has a registered fast-struct twin;
* ``O4xx`` — order stability: no iteration over unordered containers
  and no ``dict.popitem`` in the engine/fastpath hot modules, where
  iteration order feeds simulation results;
* ``O5xx`` — observability gating: instrumentation (observer, recorder,
  tracer) touched inside an engine hot loop must sit behind an ``if``
  on a sink-typed name, preserving the zero-overhead-when-disabled
  contract of ``repro.obs``;
* ``R6xx`` — robustness: every wait inside ``repro.idicn`` must be
  bounded — no queue-like container without a capacity bound, no
  ``while True`` loop nothing can exit (the overload ladder's
  guarantees collapse if any component can wait forever);
* ``S7xx`` — seed-flow: generator seeds must keep a
  ``SeedSequence``/``seeded_configs`` lineage interprocedurally — no
  ambient sources, no literal re-seeding inside chains that already
  carry an rng, no module-scope generators;
* ``W8xx`` — worker-safety: callables reachable from ``run_sweep``'s
  worker dispatch must be picklable top-level functions that neither
  write module-level state nor capture open handles/locks;
* ``M9xx`` — metrics/schema contract: every observed family is
  registered with help text, label sets match at every call site,
  wall-clock-valued families appear in ``WALLCLOCK_METRICS``, and
  schema-version strings come from the ``repro.obs`` constants.

``E999`` reports files the linter could not parse; ``E998`` reports
unknown rule ids inside ``# lint: disable`` comments; ``E997`` (under
``--strict``) reports suppressions that matched nothing.
"""

from __future__ import annotations

from .diagnostics import Rule, Severity

#: Packages whose modules are subject to the determinism (D1xx) family.
DETERMINISM_PACKAGES = (
    "repro.core",
    "repro.cache",
    "repro.workload",
    "repro.topology",
    "repro.idicn",
)

SYNTAX_ERROR = Rule(
    id="E999",
    name="syntax-error",
    severity=Severity.ERROR,
    summary="file could not be parsed as Python",
)

UNKNOWN_SUPPRESSION = Rule(
    id="E998",
    name="unknown-suppression-id",
    severity=Severity.ERROR,
    summary=(
        "`# lint: disable` comment names a rule id that does not exist; "
        "the suppression can never match anything"
    ),
)

UNUSED_SUPPRESSION = Rule(
    id="E997",
    name="unused-suppression",
    severity=Severity.WARNING,
    summary=(
        "`# lint: disable` comment suppressed nothing this run "
        "(reported under --strict); stale suppressions hide future "
        "regressions"
    ),
)

STDLIB_RANDOM = Rule(
    id="D101",
    name="stdlib-random-import",
    severity=Severity.ERROR,
    summary=(
        "stdlib `random`/`secrets` imported in a simulation package; "
        "use an injected seeded numpy Generator"
    ),
)

WALL_CLOCK = Rule(
    id="D102",
    name="wall-clock-call",
    severity=Severity.ERROR,
    summary=(
        "wall-clock or OS-entropy call (time.time, datetime.now, "
        "os.urandom, uuid.uuid4) in a simulation package"
    ),
)

NUMPY_GLOBAL_RNG = Rule(
    id="D103",
    name="numpy-global-rng",
    severity=Severity.ERROR,
    summary=(
        "unseeded np.random.default_rng() or legacy global-state "
        "numpy.random call in a simulation package"
    ),
)

SHADOWED_RNG = Rule(
    id="D104",
    name="shadowed-rng-param",
    severity=Severity.ERROR,
    summary=(
        "function accepts an rng/seed parameter but constructs its own "
        "generator, splitting the deterministic stream"
    ),
)

SCHEDULING_CLOCK = Rule(
    id="D105",
    name="wall-clock-scheduling",
    severity=Severity.WARNING,
    summary=(
        "time.monotonic/time.sleep in a simulation package; fine for "
        "orchestration deadlines, a bug if it feeds simulated results"
    ),
)

PARITY_KNOB = Rule(
    id="P201",
    name="engine-parity-knob",
    severity=Severity.ERROR,
    summary=(
        "Simulator.__init__ knob is never consumed by the fast engine "
        "(core/fastpath.py); the engines would silently diverge"
    ),
)

PARITY_RESULT_FIELD = Rule(
    id="P202",
    name="result-field-unwired",
    severity=Severity.ERROR,
    summary=(
        "SimulationResult field is not produced by from_counters, so "
        "one engine could populate it and the other not"
    ),
)

CACHE_INTERFACE = Rule(
    id="C301",
    name="cache-interface-incomplete",
    severity=Severity.ERROR,
    summary="cache policy does not implement the full Cache base interface",
)

FAST_REGISTRY_DRIFT = Rule(
    id="C302",
    name="fast-policy-registry-drift",
    severity=Severity.ERROR,
    summary=(
        "POLICIES (reference) and _FAST_POLICIES (cache/fast.py) "
        "register different policy names"
    ),
)

FAST_STRUCT_INTERFACE = Rule(
    id="C303",
    name="fast-struct-incomplete",
    severity=Severity.ERROR,
    summary=(
        "fast cache struct is missing part of the engine-facing "
        "interface (lookup/insert/__contains__/__len__)"
    ),
)

SET_ITERATION = Rule(
    id="O401",
    name="set-iteration-hot-path",
    severity=Severity.ERROR,
    summary=(
        "iteration over a set/frozenset in an engine hot module; "
        "iteration order is unspecified and can skew results"
    ),
)

POPITEM = Rule(
    id="O402",
    name="dict-popitem-hot-path",
    severity=Severity.ERROR,
    summary=(
        "dict.popitem in an engine hot module; LIFO order is an "
        "implementation detail the engines must not depend on"
    ),
)

OBS_UNGATED = Rule(
    id="O501",
    name="ungated-observability-hot-loop",
    severity=Severity.ERROR,
    summary=(
        "observability call/counter update inside an engine hot loop "
        "without an enclosing sink-guard if; breaks the "
        "zero-overhead-when-disabled contract"
    ),
)

SPAN_UNGATED = Rule(
    id="O502",
    name="ungated-span-progress-hot-loop",
    severity=Severity.ERROR,
    summary=(
        "span/progress/heartbeat sink touched in a sweep or scheduler "
        "hot loop without a sink-guard if; breaks the "
        "zero-overhead-when-disabled contract"
    ),
)

AMBIENT_SEED = Rule(
    id="S701",
    name="ambient-seed-source",
    severity=Severity.ERROR,
    summary=(
        "generator seed traces interprocedurally to an ambient source "
        "(wall clock, OS entropy, pid, environ); seeds must derive from "
        "a SeedSequence/seeded_configs lineage"
    ),
)

LITERAL_RESEED = Rule(
    id="S702",
    name="literal-reseed-in-seeded-chain",
    severity=Severity.ERROR,
    summary=(
        "generator constructed from a bare literal inside a call chain "
        "that already carries an rng/seed parameter; the deterministic "
        "stream is silently split (interprocedural extension of D104)"
    ),
)

MODULE_SCOPE_RNG = Rule(
    id="S703",
    name="module-scope-generator",
    severity=Severity.ERROR,
    summary=(
        "generator constructed at module scope (or as a class "
        "attribute); ambient shared state that breaks per-run seeding "
        "and worker-fork isolation"
    ),
)

WORKER_NOT_TOPLEVEL = Rule(
    id="W801",
    name="worker-callable-not-toplevel",
    severity=Severity.ERROR,
    summary=(
        "callable handed to sweep worker dispatch is not a picklable "
        "module-level function (lambda, closure, or bound method)"
    ),
)

WORKER_GLOBAL_WRITE = Rule(
    id="W802",
    name="worker-global-write",
    severity=Severity.ERROR,
    summary=(
        "function reachable from sweep worker dispatch writes "
        "module-level state (global rebind, module container mutation, "
        "or class-attribute store); a race across the worker fork"
    ),
)

WORKER_CAPTURED_HANDLE = Rule(
    id="W803",
    name="worker-captured-handle",
    severity=Severity.ERROR,
    summary=(
        "function reachable from sweep worker dispatch captures a "
        "module-level open file handle or synchronization primitive, "
        "which does not survive pickling into a worker"
    ),
)

METRIC_UNREGISTERED = Rule(
    id="M901",
    name="metric-observed-unregistered",
    severity=Severity.ERROR,
    summary=(
        "metric family is observed somewhere but never registered with "
        "help text; merged registry output depends on observation order"
    ),
)

METRIC_LABEL_DRIFT = Rule(
    id="M902",
    name="metric-label-drift",
    severity=Severity.ERROR,
    summary=(
        "metric family observed with different label names at different "
        "call sites; label sets must be consistent per family"
    ),
)

METRIC_SEMANTICS = Rule(
    id="M903",
    name="metric-semantics-contract",
    severity=Severity.ERROR,
    summary=(
        "semantic-constant contract violation: a wall-clock tainted "
        "value feeds a family missing from WALLCLOCK_METRICS, or a "
        "schema-version string is spelled as an inline literal instead "
        "of the repro.obs constant"
    ),
)

UNBOUNDED_WAIT = Rule(
    id="R601",
    name="unbounded-wait",
    severity=Severity.ERROR,
    summary=(
        "unbounded wait in repro.idicn: queue-like container without a "
        "capacity bound, or a `while True` loop with no "
        "break/return/raise"
    ),
)

#: Every rule, in catalogue order.
ALL_RULES: tuple[Rule, ...] = (
    SYNTAX_ERROR,
    UNKNOWN_SUPPRESSION,
    UNUSED_SUPPRESSION,
    STDLIB_RANDOM,
    WALL_CLOCK,
    NUMPY_GLOBAL_RNG,
    SHADOWED_RNG,
    SCHEDULING_CLOCK,
    PARITY_KNOB,
    PARITY_RESULT_FIELD,
    CACHE_INTERFACE,
    FAST_REGISTRY_DRIFT,
    FAST_STRUCT_INTERFACE,
    SET_ITERATION,
    POPITEM,
    OBS_UNGATED,
    SPAN_UNGATED,
    UNBOUNDED_WAIT,
    AMBIENT_SEED,
    LITERAL_RESEED,
    MODULE_SCOPE_RNG,
    WORKER_NOT_TOPLEVEL,
    WORKER_GLOBAL_WRITE,
    WORKER_CAPTURED_HANDLE,
    METRIC_UNREGISTERED,
    METRIC_LABEL_DRIFT,
    METRIC_SEMANTICS,
)

#: Rule lookup by id (e.g. ``RULES_BY_ID["D101"]``).
RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
