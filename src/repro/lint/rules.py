"""The rule catalogue: every repro.lint rule, its id, and its severity.

Rule ids are grouped by family:

* ``D1xx`` — determinism: no stdlib ``random``, no wall-clock or OS
  entropy, no unseeded or global-state NumPy RNGs inside the simulation
  packages (``repro.core``, ``repro.cache``, ``repro.workload``,
  ``repro.topology``, ``repro.idicn``);
* ``P2xx`` — engine parity: every ``Simulator.__init__`` knob must be
  consumed by the fast engine, every ``SimulationResult`` field must be
  produced by ``from_counters`` (the drift the differential test matrix
  cannot see, because it only sweeps knobs it already knows about);
* ``C3xx`` — cache conformance: every policy implements the full
  ``Cache`` interface and has a registered fast-struct twin;
* ``O4xx`` — order stability: no iteration over unordered containers
  and no ``dict.popitem`` in the engine/fastpath hot modules, where
  iteration order feeds simulation results;
* ``O5xx`` — observability gating: instrumentation (observer, recorder,
  tracer) touched inside an engine hot loop must sit behind an ``if``
  on a sink-typed name, preserving the zero-overhead-when-disabled
  contract of ``repro.obs``;
* ``R6xx`` — robustness: every wait inside ``repro.idicn`` must be
  bounded — no queue-like container without a capacity bound, no
  ``while True`` loop nothing can exit (the overload ladder's
  guarantees collapse if any component can wait forever).

``E999`` reports files the linter could not parse.
"""

from __future__ import annotations

from .diagnostics import Rule, Severity

#: Packages whose modules are subject to the determinism (D1xx) family.
DETERMINISM_PACKAGES = (
    "repro.core",
    "repro.cache",
    "repro.workload",
    "repro.topology",
    "repro.idicn",
)

SYNTAX_ERROR = Rule(
    id="E999",
    name="syntax-error",
    severity=Severity.ERROR,
    summary="file could not be parsed as Python",
)

STDLIB_RANDOM = Rule(
    id="D101",
    name="stdlib-random-import",
    severity=Severity.ERROR,
    summary=(
        "stdlib `random`/`secrets` imported in a simulation package; "
        "use an injected seeded numpy Generator"
    ),
)

WALL_CLOCK = Rule(
    id="D102",
    name="wall-clock-call",
    severity=Severity.ERROR,
    summary=(
        "wall-clock or OS-entropy call (time.time, datetime.now, "
        "os.urandom, uuid.uuid4) in a simulation package"
    ),
)

NUMPY_GLOBAL_RNG = Rule(
    id="D103",
    name="numpy-global-rng",
    severity=Severity.ERROR,
    summary=(
        "unseeded np.random.default_rng() or legacy global-state "
        "numpy.random call in a simulation package"
    ),
)

SHADOWED_RNG = Rule(
    id="D104",
    name="shadowed-rng-param",
    severity=Severity.ERROR,
    summary=(
        "function accepts an rng/seed parameter but constructs its own "
        "generator, splitting the deterministic stream"
    ),
)

SCHEDULING_CLOCK = Rule(
    id="D105",
    name="wall-clock-scheduling",
    severity=Severity.WARNING,
    summary=(
        "time.monotonic/time.sleep in a simulation package; fine for "
        "orchestration deadlines, a bug if it feeds simulated results"
    ),
)

PARITY_KNOB = Rule(
    id="P201",
    name="engine-parity-knob",
    severity=Severity.ERROR,
    summary=(
        "Simulator.__init__ knob is never consumed by the fast engine "
        "(core/fastpath.py); the engines would silently diverge"
    ),
)

PARITY_RESULT_FIELD = Rule(
    id="P202",
    name="result-field-unwired",
    severity=Severity.ERROR,
    summary=(
        "SimulationResult field is not produced by from_counters, so "
        "one engine could populate it and the other not"
    ),
)

CACHE_INTERFACE = Rule(
    id="C301",
    name="cache-interface-incomplete",
    severity=Severity.ERROR,
    summary="cache policy does not implement the full Cache base interface",
)

FAST_REGISTRY_DRIFT = Rule(
    id="C302",
    name="fast-policy-registry-drift",
    severity=Severity.ERROR,
    summary=(
        "POLICIES (reference) and _FAST_POLICIES (cache/fast.py) "
        "register different policy names"
    ),
)

FAST_STRUCT_INTERFACE = Rule(
    id="C303",
    name="fast-struct-incomplete",
    severity=Severity.ERROR,
    summary=(
        "fast cache struct is missing part of the engine-facing "
        "interface (lookup/insert/__contains__/__len__)"
    ),
)

SET_ITERATION = Rule(
    id="O401",
    name="set-iteration-hot-path",
    severity=Severity.ERROR,
    summary=(
        "iteration over a set/frozenset in an engine hot module; "
        "iteration order is unspecified and can skew results"
    ),
)

POPITEM = Rule(
    id="O402",
    name="dict-popitem-hot-path",
    severity=Severity.ERROR,
    summary=(
        "dict.popitem in an engine hot module; LIFO order is an "
        "implementation detail the engines must not depend on"
    ),
)

OBS_UNGATED = Rule(
    id="O501",
    name="ungated-observability-hot-loop",
    severity=Severity.ERROR,
    summary=(
        "observability call/counter update inside an engine hot loop "
        "without an enclosing sink-guard if; breaks the "
        "zero-overhead-when-disabled contract"
    ),
)

SPAN_UNGATED = Rule(
    id="O502",
    name="ungated-span-progress-hot-loop",
    severity=Severity.ERROR,
    summary=(
        "span/progress/heartbeat sink touched in a sweep or scheduler "
        "hot loop without a sink-guard if; breaks the "
        "zero-overhead-when-disabled contract"
    ),
)

UNBOUNDED_WAIT = Rule(
    id="R601",
    name="unbounded-wait",
    severity=Severity.ERROR,
    summary=(
        "unbounded wait in repro.idicn: queue-like container without a "
        "capacity bound, or a `while True` loop with no "
        "break/return/raise"
    ),
)

#: Every rule, in catalogue order.
ALL_RULES: tuple[Rule, ...] = (
    SYNTAX_ERROR,
    STDLIB_RANDOM,
    WALL_CLOCK,
    NUMPY_GLOBAL_RNG,
    SHADOWED_RNG,
    SCHEDULING_CLOCK,
    PARITY_KNOB,
    PARITY_RESULT_FIELD,
    CACHE_INTERFACE,
    FAST_REGISTRY_DRIFT,
    FAST_STRUCT_INTERFACE,
    SET_ITERATION,
    POPITEM,
    OBS_UNGATED,
    SPAN_UNGATED,
    UNBOUNDED_WAIT,
)

#: Rule lookup by id (e.g. ``RULES_BY_ID["D101"]``).
RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
