"""Order-stability rules (O4xx) for the engine hot modules.

Both engines accumulate floating-point counters in request order, so any
iteration whose order is unspecified — walking a ``set``/``frozenset``,
popping "the last" dict item — can legally differ between runs or
Python builds and skew supposedly bit-identical results.  These rules
cover ``core/engine.py`` and ``core/fastpath.py``:

* ``O401`` — a ``for`` loop (or comprehension) whose iterable is a
  set: a literal/comprehension/``set()``/``frozenset()`` expression, an
  attribute that either module assigns a set into (``self._failed =
  frozenset(...)``), or a local alias of one;
* ``O402`` — any ``.popitem()`` call (LIFO dict order is an
  implementation detail the engines must not depend on).

Order-independent uses (validation loops, bitmap fills) should iterate
``sorted(...)`` or carry an inline ``# lint: disable=O401`` with a
justification.
"""

from __future__ import annotations

import ast

from . import rules
from .diagnostics import Diagnostic

_SET_CONSTRUCTORS = {"set", "frozenset"}


def check_order(
    hot_modules: list[tuple[str, ast.Module]],
) -> list[Diagnostic]:
    """Run the O-family over the engine/fastpath module pair."""
    set_attrs = _set_typed_attributes(hot_modules)
    out: list[Diagnostic] = []
    for path, tree in hot_modules:
        out.extend(_check_module(path, tree, set_attrs))
    return out


def _set_typed_attributes(
    hot_modules: list[tuple[str, ast.Module]],
) -> frozenset[str]:
    """Attribute names assigned a set/frozenset in any hot module.

    Gathered across both modules because the fast engine reads the
    reference simulator's attributes (``sim._failed``,
    ``sim._cache_local_set``) without re-declaring their types.
    """
    attrs: set[str] = set()
    for _, tree in hot_modules:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_setish(node.value, frozenset(), frozenset()):
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    attrs.add(target.attr)
    return frozenset(attrs)


def _is_setish(
    expr: ast.expr,
    set_attrs: frozenset[str],
    local_sets: frozenset[str],
) -> bool:
    """Whether an expression is (statically) a set-typed value."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in _SET_CONSTRUCTORS
    if isinstance(expr, ast.Attribute):
        return expr.attr in set_attrs
    if isinstance(expr, ast.Name):
        return expr.id in local_sets
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # Set algebra (a | b, a - b) on set operands stays a set.
        return _is_setish(expr.left, set_attrs, local_sets) or _is_setish(
            expr.right, set_attrs, local_sets
        )
    return False


def _check_module(
    path: str, tree: ast.Module, set_attrs: frozenset[str]
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for func in functions:
        local_sets: set[str] = set()
        for node in ast.walk(func):
            # Track local aliases of set values (`failed = sim._failed`).
            if isinstance(node, ast.Assign) and _is_setish(
                node.value, set_attrs, frozenset(local_sets)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_sets.add(target.id)
        frozen_locals = frozenset(local_sets)
        for node in ast.walk(func):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(comp.iter for comp in node.generators)
            for iter_expr in iters:
                if _is_setish(iter_expr, set_attrs, frozen_locals):
                    out.append(
                        Diagnostic(
                            rule=rules.SET_ITERATION,
                            path=path,
                            line=iter_expr.lineno,
                            col=iter_expr.col_offset,
                            message=(
                                "iteration over a set/frozenset in an "
                                "engine hot module; iterate sorted(...) or "
                                "justify with an inline suppression"
                            ),
                        )
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "popitem"
            ):
                out.append(
                    Diagnostic(
                        rule=rules.POPITEM,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "popitem() in an engine hot module depends on "
                            "dict insertion/LIFO order; pop an explicit key"
                        ),
                    )
                )
    return out
