"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit codes: 0 — clean (warnings allowed unless ``--strict``);
1 — findings failed the run; 2 — usage error (unknown rule id, ...).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .diagnostics import Severity
from .rules import ALL_RULES
from .runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI surface."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Repo-specific static analysis: determinism, engine parity, "
            "cache conformance, and iteration-order stability."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format (default: text); `github` emits GitHub "
            "Actions ::error/::warning annotations"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "treat warnings as failures (exit 1) and report "
            "suppression comments that matched nothing (E997)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            marker = "!" if rule.severity is Severity.ERROR else "~"
            print(f"{rule.id} {marker} {rule.name}: {rule.summary}")
        return 0
    try:
        report = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            strict=args.strict,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    elif args.format == "github":
        print(report.render_github())
    else:
        print(report.render_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
