"""Whole-program model for repro.lint: modules, symbols, and calls.

The per-file rule families see one tree at a time; the cross-module
families (seed-flow S7xx, worker-safety W8xx, metrics-contract M9xx)
need to answer questions that span files: *who calls this function*,
*which module-level constant does this name resolve to*, *what type is
this local*.  This module builds that picture once per lint run:

* :class:`ModuleGraph` — every collected ``repro.*`` module with its
  import map (absolute *and* relative imports resolved to dotted
  targets), its module-level constants, classes, and functions;
* :class:`FunctionInfo` — one function or method, with its qualified
  name (``repro.core.sweep:_run_chunk``), parameters, defaults, and
  enclosing class/function;
* :class:`CallGraph` — resolved call edges between known functions,
  with the actual :class:`ast.Call` sites preserved so data-flow
  queries can map caller arguments onto callee parameters.  Resolution
  covers plain calls, ``module.attr`` calls, ``self.method()``,
  constructor calls (``Simulator(...)`` → ``Simulator.__init__``),
  one-level local type inference (``sim = Simulator(...); sim.run()``),
  and ``functools.partial`` bindings.

Everything here is a static over-approximation: unresolvable calls are
recorded by dotted name (when one exists) and otherwise dropped, which
is the safe direction for the reachability-style rules built on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .astutil import dotted


def _resolve_relative(module: str, level: int, target: str | None) -> str | None:
    """Absolute dotted module for a ``from ...x import y`` statement.

    ``module`` is the importing module's dotted name.  Level 1 means
    "the importing module's package", so ``from .retry import X`` inside
    ``repro.idicn.faults`` resolves against ``repro.idicn``.
    """
    parts = module.split(".")
    # Dropping `level` trailing components from the module name yields
    # the base package (the module's own last component counts as one).
    if level > len(parts):
        return None
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


@dataclass
class FunctionInfo:
    """One function or method in the analyzed program."""

    module: str
    qualname: str  # e.g. "run_sweep", "Simulator.__init__", "outer.<locals>.inner"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    #: Name of the class this is a method of, if any.
    owner_class: str | None = None
    #: Qualname of the enclosing function for nested defs, if any.
    parent_function: str | None = None

    @property
    def key(self) -> str:
        """Program-wide identity: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"

    @property
    def is_toplevel(self) -> bool:
        """Whether this is a plain module-level function (picklable)."""
        return self.owner_class is None and self.parent_function is None

    def params(self) -> list[ast.arg]:
        """Positional + keyword-only parameters, ``self``/``cls`` dropped."""
        args = self.node.args
        out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if self.owner_class is not None and out and out[0].arg in ("self", "cls"):
            out = out[1:]
        return out

    def param_names(self) -> set[str]:
        """Every parameter name, including ``self`` and star-args."""
        args = self.node.args
        names = {
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        }
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        return names

    def default_for(self, name: str) -> ast.expr | None:
        """The default-value expression for parameter ``name``, if any."""
        args = self.node.args
        positional = list(args.posonlyargs) + list(args.args)
        # Defaults right-align against the positional parameters.
        offset = len(positional) - len(args.defaults)
        for index, arg in enumerate(positional):
            if arg.arg == name and index >= offset:
                return args.defaults[index - offset]
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == name and default is not None:
                return default
        return None


@dataclass
class ModuleInfo:
    """Symbol table for one module."""

    name: str
    path: str
    tree: ast.Module
    #: Local alias -> absolute dotted target (relative imports resolved).
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level NAME = <expr> assignments (last assignment wins).
    constants: dict[str, ast.expr] = field(default_factory=dict)
    #: Top-level class name -> ClassDef.
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: qualname -> FunctionInfo for every def in the module (any depth).
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


class ModuleGraph:
    """Every analyzed module, with cross-module symbol resolution."""

    def __init__(self, modules: dict[str, tuple[str, ast.Module]]):
        """``modules`` maps dotted module name -> (display path, tree)."""
        names = set(modules)
        self.modules: dict[str, ModuleInfo] = {}
        for name, (path, tree) in modules.items():
            # A package __init__ keeps the package's own dotted name, so
            # its level-1 relative imports resolve against *itself*, not
            # its parent.  Detect packages by path or by known submodules.
            is_package = str(path).endswith("__init__.py") or any(
                other.startswith(name + ".") for other in names
            )
            self.modules[name] = self._index_module(
                name, path, tree, is_package
            )
        #: key -> FunctionInfo over the whole program.
        self.functions: dict[str, FunctionInfo] = {}
        for info in self.modules.values():
            for function in info.functions.values():
                self.functions[function.key] = function

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(
        self, name: str, path: str, tree: ast.Module, is_package: bool = False
    ) -> ModuleInfo:
        info = ModuleInfo(name=name, path=path, tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module
                else:
                    level = node.level - 1 if is_package else node.level
                    base = _resolve_relative(name, level, node.module)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}"
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.constants[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    info.constants[stmt.target.id] = stmt.value
            elif isinstance(stmt, ast.ClassDef):
                info.classes[stmt.name] = stmt
        self._index_functions(info, tree.body, prefix="", owner=None, parent=None)
        return info

    def _index_functions(
        self,
        info: ModuleInfo,
        body: list[ast.stmt],
        prefix: str,
        owner: str | None,
        parent: str | None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                function = FunctionInfo(
                    module=info.name,
                    qualname=qualname,
                    node=stmt,
                    path=info.path,
                    owner_class=owner,
                    parent_function=parent,
                )
                info.functions[qualname] = function
                self._index_functions(
                    info,
                    stmt.body,
                    prefix=f"{qualname}.<locals>.",
                    owner=None,
                    parent=qualname,
                )
            elif isinstance(stmt, ast.ClassDef):
                self._index_functions(
                    info,
                    stmt.body,
                    prefix=f"{prefix}{stmt.name}.",
                    owner=f"{prefix}{stmt.name}",
                    parent=parent,
                )
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                # defs behind guards (TYPE_CHECKING, platform ifs) count.
                inner: list[ast.stmt] = []
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        inner.append(child)
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        inner.extend(handler.body)
                self._index_functions(info, inner, prefix, owner, parent)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_name(self, module: str, name: str) -> str | None:
        """Absolute dotted target of ``name`` as seen from ``module``.

        ``a.b.c`` resolves its head through the module's imports; a head
        that is neither imported nor a module-level symbol resolves to
        itself (builtins, stdlib module names used bare).
        """
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = name.partition(".")
        target = info.imports.get(head)
        if target is None:
            if head in info.functions or head in info.classes or head in info.constants:
                target = f"{module}.{head}"
            else:
                target = head
        return f"{target}.{rest}" if rest else target

    def function_at(self, dotted_name: str) -> FunctionInfo | None:
        """The FunctionInfo a fully-resolved dotted name points at.

        Tries the longest module prefix: ``repro.core.sweep.run_sweep``
        splits into module ``repro.core.sweep`` + qualname ``run_sweep``;
        re-exports (``repro.cache.LRUCache``) chase the import chain of
        the package ``__init__``.  A prefix whose next component is a
        known *non-function* symbol (class, constant) settles the lookup
        as "not a function" — without that stop, a package re-exporting
        a symbol that shares its own name (``topology.topology``) makes
        the chased name grow forever.
        """
        seen: set[str] = set()
        for _ in range(32):  # hop cap backstop for pathological chains
            if dotted_name in seen:
                return None
            seen.add(dotted_name)
            parts = dotted_name.split(".")
            for split in range(len(parts) - 1, 0, -1):
                module = ".".join(parts[:split])
                info = self.modules.get(module)
                if info is None:
                    continue
                qualname = ".".join(parts[split:])
                if qualname in info.functions:
                    return info.functions[qualname]
                head = parts[split]
                # Re-export: the name is imported into this module from
                # elsewhere; chase one link and retry.
                if head in info.imports:
                    rest = parts[split + 1 :]
                    dotted_name = ".".join([info.imports[head]] + rest)
                    break
                if head in info.classes or head in info.constants:
                    return None
            else:
                return None
        return None

    def class_at(self, dotted_name: str) -> tuple[str, ast.ClassDef] | None:
        """(module, ClassDef) for a fully-resolved dotted class name."""
        seen: set[str] = set()
        while dotted_name not in seen:
            seen.add(dotted_name)
            module, _, cls = dotted_name.rpartition(".")
            info = self.modules.get(module)
            if info is None:
                return None
            if cls in info.classes:
                return module, info.classes[cls]
            if cls in info.imports:
                dotted_name = info.imports[cls]
                continue
            return None
        return None

    def constant_value(self, module: str, name: str) -> object | None:
        """Literal value of a module-level constant, through imports.

        Resolves string/number constants and frozensets/tuples/sets of
        constants; returns None when the name does not resolve to a
        module-level literal anywhere in the graph.
        """
        resolved = self.resolve_name(module, name)
        if resolved is None:
            return None
        seen: set[str] = set()
        while resolved not in seen:
            seen.add(resolved)
            owner, _, const = resolved.rpartition(".")
            info = self.modules.get(owner)
            if info is None:
                return None
            if const in info.constants:
                return _literal_value(info.constants[const])
            if const in info.imports:
                resolved = info.imports[const]
                continue
            return None
        return None

    def string_of(self, module: str, expr: ast.expr) -> str | None:
        """The static string value of an expression, if determinable."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        name = dotted(expr)
        if name is not None:
            value = self.constant_value(module, name)
            if isinstance(value, str):
                return value
        return None


def _literal_value(expr: ast.expr) -> object | None:
    """Evaluate a constant-only expression (strings, numbers, frozenset
    / set / tuple / list of constants, ``frozenset({...})`` calls)."""
    if isinstance(expr, ast.Constant):
        return expr.value
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        items = [_literal_value(e) for e in expr.elts]
        if any(item is None for item in items):
            return None
        return frozenset(items) if isinstance(expr, ast.Set) else tuple(items)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("frozenset", "set", "tuple")
        and len(expr.args) == 1
        and not expr.keywords
    ):
        inner = _literal_value(expr.args[0])
        if inner is None:
            return None
        return frozenset(inner) if expr.func.id in ("frozenset", "set") else tuple(inner)
    return None


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: who calls whom, and the Call node."""

    caller: FunctionInfo
    callee: FunctionInfo
    call: ast.Call
    #: Arguments bound ahead of the call's own, from functools.partial.
    bound_args: tuple[ast.expr, ...] = ()
    bound_keywords: tuple[ast.keyword, ...] = ()


class CallGraph:
    """Resolved call edges over a :class:`ModuleGraph`."""

    def __init__(self, graph: ModuleGraph):
        self.graph = graph
        #: callee key -> call sites targeting it.
        self.callers: dict[str, list[CallSite]] = {}
        #: caller key -> call sites it makes.
        self.callees: dict[str, list[CallSite]] = {}
        #: caller key -> dotted names of calls that did not resolve.
        self.external_calls: dict[str, list[tuple[str, ast.Call]]] = {}
        for function in graph.functions.values():
            self._index_function(function)

    def _index_function(self, function: FunctionInfo) -> None:
        local_types = self._infer_local_types(function)
        partials = self._collect_partials(function)
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call(function, node, local_types, partials)
            if resolved is None:
                name = dotted(node.func)
                if name is not None:
                    full = self.graph.resolve_name(function.module, name)
                    self.external_calls.setdefault(function.key, []).append(
                        (full or name, node)
                    )
                continue
            callee, bound_args, bound_keywords = resolved
            site = CallSite(
                caller=function,
                callee=callee,
                call=node,
                bound_args=tuple(bound_args),
                bound_keywords=tuple(bound_keywords),
            )
            self.callers.setdefault(callee.key, []).append(site)
            self.callees.setdefault(function.key, []).append(site)

    def _infer_local_types(
        self, function: FunctionInfo
    ) -> dict[str, tuple[str, ast.ClassDef]]:
        """Locals assigned from a known constructor call -> their class."""
        types: dict[str, tuple[str, ast.ClassDef]] = {}
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            name = dotted(node.value.func)
            if name is None:
                continue
            full = self.graph.resolve_name(function.module, name)
            if full is None:
                continue
            found = self.graph.class_at(full)
            if found is not None:
                types[target.id] = found
        return types

    def _collect_partials(
        self, function: FunctionInfo
    ) -> dict[str, tuple[FunctionInfo, list[ast.expr], list[ast.keyword]]]:
        """Locals bound via ``functools.partial(known_fn, ...)``."""
        partials: dict[
            str, tuple[FunctionInfo, list[ast.expr], list[ast.keyword]]
        ] = {}
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if not isinstance(value, ast.Call) or not value.args:
                continue
            func_name = dotted(value.func)
            if func_name is None:
                continue
            full = self.graph.resolve_name(function.module, func_name)
            if full not in ("functools.partial", "partial"):
                continue
            inner = dotted(value.args[0])
            if inner is None:
                continue
            inner_full = self.graph.resolve_name(function.module, inner)
            if inner_full is None:
                continue
            callee = self.graph.function_at(inner_full)
            if callee is not None:
                partials[target.id] = (
                    callee, list(value.args[1:]), list(value.keywords)
                )
        return partials

    def _resolve_call(
        self,
        function: FunctionInfo,
        node: ast.Call,
        local_types: dict[str, tuple[str, ast.ClassDef]],
        partials: dict[str, tuple[FunctionInfo, list[ast.expr], list[ast.keyword]]],
    ) -> tuple[FunctionInfo, list[ast.expr], list[ast.keyword]] | None:
        func = node.func
        # partial-bound local invoked: g(...) where g = partial(f, a).
        if isinstance(func, ast.Name) and func.id in partials:
            callee, bound, bound_kw = partials[func.id]
            return callee, bound, bound_kw
        # self.method() / cls.method().
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and function.owner_class is not None
        ):
            info = self.graph.modules.get(function.module)
            if info is not None:
                qualname = f"{function.owner_class}.{func.attr}"
                method = info.functions.get(qualname)
                if method is not None:
                    return method, [], []
            return None
        # local.method() with an inferred constructor type, and
        # ClassName(...).method() chained construction.
        if isinstance(func, ast.Attribute):
            base = func.value
            found: tuple[str, ast.ClassDef] | None = None
            if isinstance(base, ast.Name) and base.id in local_types:
                found = local_types[base.id]
            elif isinstance(base, ast.Call):
                base_name = dotted(base.func)
                if base_name is not None:
                    full = self.graph.resolve_name(function.module, base_name)
                    if full is not None:
                        found = self.graph.class_at(full)
            if found is not None:
                cls_module, cls_node = found
                info = self.graph.modules.get(cls_module)
                if info is not None:
                    method = info.functions.get(f"{cls_node.name}.{func.attr}")
                    if method is not None:
                        return method, [], []
                return None
        # Plain and dotted calls, through imports and re-exports.
        name = dotted(func)
        if name is None:
            return None
        # Nested function called from its enclosing scope.
        info = self.graph.modules.get(function.module)
        if info is not None and "." not in name:
            nested = info.functions.get(f"{function.qualname}.<locals>.{name}")
            if nested is not None:
                return nested, [], []
        full = self.graph.resolve_name(function.module, name)
        if full is None:
            return None
        callee = self.graph.function_at(full)
        if callee is not None:
            return callee, [], []
        # Constructor call: Simulator(...) -> Simulator.__init__.
        found_cls = self.graph.class_at(full)
        if found_cls is not None:
            cls_module, cls_node = found_cls
            info = self.graph.modules.get(cls_module)
            if info is not None:
                init = info.functions.get(f"{cls_node.name}.__init__")
                if init is not None:
                    return init, [], []
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_from(self, roots: list[FunctionInfo]) -> list[FunctionInfo]:
        """Call-graph closure from ``roots`` (roots included), stable order."""
        seen: dict[str, FunctionInfo] = {}
        frontier = list(roots)
        while frontier:
            function = frontier.pop()
            if function.key in seen:
                continue
            seen[function.key] = function
            for site in self.callees.get(function.key, ()):
                if site.callee.key not in seen:
                    frontier.append(site.callee)
        return [seen[key] for key in sorted(seen)]
