"""File collection and rule dispatch for repro.lint.

The runner turns path arguments into a set of parsed modules, maps each
file to its dotted module name (everything from the last ``repro`` path
component down, so fixture trees under ``tmp/src/repro/...`` lint the
same way the real package does), runs the per-file determinism family,
and then anchors the project-scope families:

* engine parity needs ``repro.core.engine`` / ``repro.core.fastpath`` /
  ``repro.core.metrics``;
* cache conformance needs the ``repro/cache/`` modules;
* order stability and observability gating need the engine/fastpath
  pair;
* the whole-program families (seed-flow ``S7xx``, worker-safety
  ``W8xx``, metrics-contract ``M9xx``) run over a
  :class:`~repro.lint.graph.ModuleGraph`/:class:`~repro.lint.graph.CallGraph`
  built from every collected ``repro.*`` module plus the resolved
  anchors.

Anchors are taken from the linted set first and fall back to the
package directory on disk (so ``python -m repro.lint src/repro/idicn``
still checks engine parity for the package it belongs to).  Inline
suppressions are applied last, against every family uniformly; the
suppression comments themselves are checked (unknown ids are ``E998``
errors, and ``strict`` runs report unused entries as ``E997``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from . import (
    bounds,
    conformance,
    determinism,
    metricscontract,
    obsgate,
    order,
    parity,
    rules,
    seedflow,
    workersafety,
)
from .diagnostics import Diagnostic, Report
from .graph import CallGraph, ModuleGraph
from .suppressions import Suppression, SuppressionIndex

#: Module names the project-scope families anchor on.
_ENGINE_MODULE = "repro.core.engine"
_FASTPATH_MODULE = "repro.core.fastpath"
_METRICS_MODULE = "repro.core.metrics"
_CACHE_PACKAGE = "repro.cache"
_SWEEP_MODULE = "repro.core.sweep"
_SIMNET_MODULE = "repro.idicn.simnet"


@dataclass(frozen=True)
class SourceFile:
    """One collected file: location, module identity, and parse results."""

    path: Path
    display: str
    module: str
    source: str
    tree: ast.Module | None
    error: str | None = None


def module_name(path: Path) -> str:
    """Dotted module name from the last ``repro`` path component down.

    Files outside any ``repro`` package keep their stem as the module
    name, which places them outside every package-scoped rule family.
    """
    parts = list(path.parts)
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor is None:
        return path.stem
    dotted = [p for p in parts[anchor:-1]] + [path.stem]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Python files under the given paths, sorted and deduplicated."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append(candidate)
    return out


def _display(path: Path) -> str:
    """Path as printed in diagnostics: relative to cwd when possible."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _load(path: Path) -> SourceFile:
    display = _display(path)
    module = module_name(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return SourceFile(path, display, module, "", None, str(exc))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return SourceFile(
            path, display, module, source, None,
            f"syntax error: {exc.msg} (line {exc.lineno})",
        )
    except ValueError as exc:
        # e.g. null bytes in the source: not a SyntaxError, but the
        # file is just as unparseable — report it, don't crash the run.
        return SourceFile(
            path, display, module, source, None, f"unparseable file: {exc}"
        )
    return SourceFile(path, display, module, source, tree)


def _resolve_anchor(
    files: dict[str, SourceFile],
    module: str,
    sources: dict[str, str],
) -> SourceFile | None:
    """Find an anchor module: from the linted set, else from disk.

    The disk fallback walks up from any linted ``repro`` module to the
    package root and loads the sibling file, so partial lint runs keep
    the cross-file guarantees of the whole package.  Loaded sources are
    recorded in ``sources`` so inline suppressions still apply.
    """
    found = files.get(module)
    if found is not None:
        return found
    relative = Path(*module.split(".")[1:]).with_suffix(".py")
    for source_file in files.values():
        if not source_file.module.startswith("repro"):
            continue
        parts = list(source_file.path.parts)
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                candidate = Path(*parts[: index + 1]) / relative
                if candidate.is_file():
                    loaded = _load(candidate)
                    sources[loaded.display] = loaded.source
                    return loaded
                break
    return None


def _resolve_cache_package(
    files: dict[str, SourceFile],
    sources: dict[str, str],
) -> dict[str, tuple[str, ast.Module]]:
    """The cache package's modules, by basename, for conformance rules."""
    modules: dict[str, tuple[str, ast.Module]] = {}
    cache_dir: Path | None = None
    for source_file in files.values():
        in_package = source_file.module == _CACHE_PACKAGE or (
            source_file.module.startswith(_CACHE_PACKAGE + ".")
        )
        if in_package and source_file.tree is not None:
            modules[source_file.path.stem] = (
                source_file.display,
                source_file.tree,
            )
            cache_dir = source_file.path.parent
    if cache_dir is None:
        anchor = _resolve_anchor(files, _CACHE_PACKAGE + ".base", sources)
        if anchor is None:
            return {}
        cache_dir = anchor.path.parent
    for path in sorted(cache_dir.glob("*.py")):
        if path.stem in modules:
            continue
        loaded = _load(path)
        if loaded.tree is not None:
            modules[path.stem] = (loaded.display, loaded.tree)
            sources[loaded.display] = loaded.source
    return modules


def _in_program(module: str) -> bool:
    """Whether a module belongs to the whole-program ``repro`` graph."""
    return module == "repro" or module.startswith("repro.")


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    strict: bool = False,
) -> Report:
    """Lint files under ``paths`` and return the full report.

    ``select`` restricts the run to the given rule ids; ``ignore``
    removes ids from whatever is selected.  Inline suppressions are
    applied on top of both.  ``strict`` additionally reports
    suppression comments that silenced nothing (``E997``).
    """
    selected = _selected_rules(select, ignore)
    collected = [_load(path) for path in collect_files(paths)]
    files = {f.module: f for f in collected}
    sources = {f.display: f.source for f in collected}
    report = Report(files_checked=len(collected))
    raw: list[Diagnostic] = []

    for source_file in collected:
        if source_file.error is not None:
            raw.append(
                Diagnostic(
                    rule=rules.SYNTAX_ERROR,
                    path=source_file.display,
                    line=1,
                    col=0,
                    message=source_file.error,
                )
            )
            continue
        assert source_file.tree is not None
        raw.extend(
            determinism.check_module(
                source_file.display, source_file.module, source_file.tree
            )
        )
        raw.extend(
            bounds.check_module(
                source_file.display, source_file.module, source_file.tree
            )
        )

    engine = _resolve_anchor(files, _ENGINE_MODULE, sources)
    fastpath = _resolve_anchor(files, _FASTPATH_MODULE, sources)
    metrics = _resolve_anchor(files, _METRICS_MODULE, sources)
    if (
        engine is not None
        and fastpath is not None
        and metrics is not None
        and engine.tree is not None
        and fastpath.tree is not None
        and metrics.tree is not None
    ):
        raw.extend(
            parity.check_parity(
                engine.display,
                engine.tree,
                fastpath.tree,
                metrics.display,
                metrics.tree,
            )
        )
    hot_modules = [
        (anchor.display, anchor.tree)
        for anchor in (engine, fastpath)
        if anchor is not None and anchor.tree is not None
    ]
    if hot_modules:
        raw.extend(order.check_order(hot_modules))
        raw.extend(obsgate.check_obsgate(hot_modules))

    sweep = _resolve_anchor(files, _SWEEP_MODULE, sources)
    simnet = _resolve_anchor(files, _SIMNET_MODULE, sources)
    span_modules = [
        (anchor.display, anchor.tree)
        for anchor in (sweep, simnet)
        if anchor is not None and anchor.tree is not None
    ]
    if span_modules:
        raw.extend(obsgate.check_spangate(span_modules))

    cache_modules = _resolve_cache_package(files, sources)
    if cache_modules:
        raw.extend(conformance.check_cache_conformance(cache_modules))

    # Whole-program families over every repro.* module plus anchors.
    program: dict[str, tuple[str, ast.Module]] = {}
    anchors = (engine, fastpath, metrics, sweep, simnet)
    for source_file in list(collected) + [a for a in anchors if a is not None]:
        if source_file.tree is None or not _in_program(source_file.module):
            continue
        program.setdefault(
            source_file.module, (source_file.display, source_file.tree)
        )
    if program:
        graph = ModuleGraph(program)
        callgraph = CallGraph(graph)
        raw.extend(seedflow.check_seedflow(graph, callgraph))
        raw.extend(workersafety.check_workersafety(graph, callgraph))
        raw.extend(metricscontract.check_metrics(graph, callgraph))

    # Suppression indexes are built eagerly for every file so the
    # comments themselves can be checked, not just applied.
    indexes = {
        display: SuppressionIndex.from_source(source)
        for display, source in sources.items()
    }
    for display in sorted(indexes):
        for entry in indexes[display].entries:
            unknown = sorted(
                rule_id
                for rule_id in entry.ids
                if rule_id != "ALL" and rule_id not in rules.RULES_BY_ID
            )
            if unknown:
                raw.append(
                    Diagnostic(
                        rule=rules.UNKNOWN_SUPPRESSION,
                        path=display,
                        line=entry.line,
                        col=0,
                        message=(
                            "suppression comment names unknown rule "
                            f"id(s) {', '.join(unknown)}; it can never "
                            "match a finding"
                        ),
                    )
                )

    # Apply rule selection, dedup, and inline suppressions.
    used: set[tuple[str, Suppression]] = set()
    seen: set[tuple[str, str, int, int]] = set()
    for diagnostic in raw:
        if diagnostic.rule.id not in selected:
            continue
        key = (
            diagnostic.rule.id,
            diagnostic.path,
            diagnostic.line,
            diagnostic.col,
        )
        if key in seen:
            continue
        seen.add(key)
        index = indexes.get(diagnostic.path)
        entry = (
            index.match(diagnostic.rule.id, diagnostic.line)
            if index is not None
            else None
        )
        if entry is not None:
            used.add((diagnostic.path, entry))
            report.suppressed += 1
            continue
        report.diagnostics.append(diagnostic)

    if strict and rules.UNUSED_SUPPRESSION.id in selected:
        full_selection = select is None
        for display in sorted(indexes):
            for entry in indexes[display].entries:
                if (display, entry) in used:
                    continue
                known = {
                    rule_id
                    for rule_id in entry.ids
                    if rule_id in rules.RULES_BY_ID
                }
                relevant = bool(known & selected) or (
                    "ALL" in entry.ids and full_selection
                )
                if not relevant:
                    continue
                ids = ", ".join(sorted(entry.ids))
                scope = "file-wide " if entry.file_wide else ""
                report.diagnostics.append(
                    Diagnostic(
                        rule=rules.UNUSED_SUPPRESSION,
                        path=display,
                        line=entry.line,
                        col=0,
                        message=(
                            f"{scope}suppression of {ids} matched no "
                            "finding this run; remove it or re-justify it"
                        ),
                    )
                )
    return report


def _selected_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> frozenset[str]:
    selected = (
        {r.upper() for r in select}
        if select is not None
        else set(rules.RULES_BY_ID)
    )
    unknown = selected - set(rules.RULES_BY_ID)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    if ignore is not None:
        ignored = {r.upper() for r in ignore}
        unknown = ignored - set(rules.RULES_BY_ID)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        selected -= ignored
    return frozenset(selected)
