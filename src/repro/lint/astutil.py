"""Small AST helpers shared by the repro.lint rule families."""

from __future__ import annotations

import ast


def dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_map(tree: ast.Module) -> dict[str, str]:
    """Local alias -> canonical dotted name, from a module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    time`` maps ``time -> time.time``; ``from numpy.random import
    default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    Only top-level and nested Import/ImportFrom statements are scanned
    (relative imports resolve within the package and never shadow the
    stdlib/numpy names the determinism rules look for).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                full = alias.name if alias.asname else alias.name.split(".", 1)[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of an expression, through import aliases.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when ``np`` aliases ``numpy``; a bare ``default_rng`` resolves
    through a ``from numpy.random import default_rng`` alias.
    """
    name = dotted(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    full_head = aliases.get(head, head)
    return f"{full_head}.{rest}" if rest else full_head


def class_methods(cls: ast.ClassDef) -> set[str]:
    """Names of functions defined directly in a class body."""
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    """The top-level class definition called ``name``, if any."""
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def find_method(
    cls: ast.ClassDef, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The method called ``name`` defined directly on ``cls``, if any."""
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == name:
                return stmt
    return None


def string_dict_keys(tree: ast.Module, name: str) -> dict[str, ast.expr] | None:
    """Keys/values of a module-level ``NAME = {"k": v, ...}`` literal.

    Returns None when no such assignment exists; non-string keys are
    skipped (the registries this serves key policies by name).
    """
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, ast.Dict):
                    return {
                        key.value: val
                        for key, val in zip(value.keys, value.values)
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    }
    return None
